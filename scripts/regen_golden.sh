#!/usr/bin/env bash
# Regenerate the golden MAP-grid fixture (tests/golden/map_grid.txt).
#
# The golden_grid integration test renders the eval runner's MAP grid
# over the hand-built `golden-6d` testbed and compares it byte-for-byte
# against the committed file. After an *intentional* behavior change
# (report formatting, ranking semantics, AP math), rerun this script,
# review the diff like any other code change, and commit the new bytes.
#
# Usage: scripts/regen_golden.sh [extra cargo test args...]

set -euo pipefail

cd "$(dirname "$0")/.."

GOLDEN_BLESS=1 cargo test --test golden_grid map_grid_matches_golden_file "$@"

git --no-pager diff -- tests/golden/map_grid.txt || true
echo "blessed tests/golden/map_grid.txt — review the diff above before committing"
