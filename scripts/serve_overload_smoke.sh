#!/usr/bin/env bash
# Overload smoke test for the anomex_serve SLO load shedder: induce real
# queue pressure and assert the service answers with the *typed*
# `overloaded` error instead of queueing without bound.
#
# How the pressure is induced: the batcher is configured with a long
# coalescing delay (--delay-ms 50), so every admitted request observes a
# queue wait of up to 50ms — far past the 1ms budget set by --slo-ms 1.
# A python driver drips ~600 score requests a few ms apart for ~2s; the
# drip (rather than one burst) matters because the shedder re-evaluates
# its window at most every 100ms, so the flood must still be arriving
# when the first violating window is judged. Once the shed engages,
# requests are rejected up front, the queue-wait window drains, and the
# shedder releases to probe — the engage/release cycle typically sheds a
# few hundred of the 600.
#
# Asserts: every response line is well-formed JSON; at least one request
# was shed with `"code":"overloaded"` carrying a positive
# `retry_after_ms` hint; at least one score succeeded (the shed never
# turned into a full outage).
#
# Usage: scripts/serve_overload_smoke.sh [--release]
set -euo pipefail
cd "$(dirname "$0")/.."

profile=()
target_dir="target/debug"
if [[ "${1:-}" == "--release" ]]; then
    profile=(--release)
    target_dir="target/release"
fi

cargo build "${profile[@]}" -p anomex-serve --bin anomex_serve

out="$(python3 - <<'PY' | "$target_dir/anomex_serve" --stdin \
        --slo-ms 1 --slo-quantile 0.5 --delay-ms 50 --batch 256 --workers 1
import json, random, sys, time

rng = random.Random(7)
rows = [[rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)] for _ in range(40)]
rows.append([5.0, 5.0])
emit = lambda req: (sys.stdout.write(json.dumps(req) + "\n"), sys.stdout.flush())

emit({"id": 1, "op": "load", "dataset": "flood", "rows": rows})
for i in range(600):
    emit({
        "id": 2 + i, "op": "score", "dataset": "flood",
        "detector": "lof:k=5", "subspace": [0, 1], "point": 40,
    })
    time.sleep(0.002)
PY
)"

printf '%s\n' "$out" | python3 -c '
import json, sys

ok = shed = 0
lines = [l for l in sys.stdin.read().splitlines() if l.strip()]
for line in lines:
    resp = json.loads(line)  # malformed output fails the smoke
    if resp.get("ok"):
        ok += 1
    elif resp.get("code") == "overloaded":
        shed += 1
        hint = resp.get("retry_after_ms")
        assert isinstance(hint, int) and hint >= 1, \
            f"FAIL: shed response without a usable retry hint: {resp}"
    else:
        raise SystemExit(f"FAIL: unexpected failure (not a shed): {resp}")

print(f"{len(lines)} responses: {ok} ok, {shed} typed overloaded with retry hints")
assert len(lines) == 601, f"expected 601 response lines, got {len(lines)}"
assert shed > 0, "queue pressure never produced a typed overloaded shed"
assert ok > 0, "shedding must not reject every request"
'

echo "OK: load shedding engaged with the typed overloaded error"
