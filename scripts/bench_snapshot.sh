#!/usr/bin/env bash
# Distill the detector-kernel benchmarks into BENCH_detectors.json and
# the spec-layer benchmarks into BENCH_spec.json, plus an observability
# counter snapshot into BENCH_obs_counters.json, the kNN-backend
# crossover grid into BENCH_knn_backends.json, and the serve
# throughput/latency snapshot into BENCH_serve.json.
#
# Runs the `detector_kernels` criterion bench, then extracts the mean
# estimate of each naive/blocked/incremental kNN build from criterion's
# saved estimates and writes a compact JSON snapshot at the repo root.
# Commit the snapshot alongside kernel changes so reviewers can compare
# miss-path costs across machines without rerunning five minutes of
# benches.
#
# The obs snapshot comes from one instrumented fast fig9 grid run: its
# counters (scorer evaluations, cache hits, kernel builds) describe
# *how much work* the hot path did, complementing criterion's *how
# fast* — a perf win that quietly changes the work count shows up here.
#
# Perf gate: after regenerating, each new timing is diffed against the
# committed snapshot (git HEAD). Any case more than 10 % slower fails
# the script — CI runs this to catch perf regressions. Intentional
# rebaselines (new machine, accepted slowdown) re-run with
# ANOMEX_BENCH_REBASE=1, which skips the gate and keeps the new
# snapshots for committing.
#
# Usage: [ANOMEX_BENCH_REBASE=1] scripts/bench_snapshot.sh [extra cargo bench args...]

set -euo pipefail

cd "$(dirname "$0")/.."

cargo bench -p anomex-bench --bench detector_kernels "$@"

out=BENCH_detectors.json
crit=target/criterion

python3 - "$crit" "$out" <<'PY'
import json, os, sys, datetime

crit, out = sys.argv[1], sys.argv[2]
group = os.path.join(crit, "knn_builders")
entries = []
for builder in sorted(os.listdir(group)):
    bdir = os.path.join(group, builder)
    if not os.path.isdir(bdir):
        continue
    for case in sorted(os.listdir(bdir)):
        est = os.path.join(bdir, case, "new", "estimates.json")
        if not os.path.isfile(est):
            continue
        with open(est) as f:
            mean_ns = json.load(f)["mean"]["point_estimate"]
        n, d = case.split("-")
        entries.append({
            "builder": builder,
            "n_rows": int(n[1:]),
            "dim": int(d[1:]),
            "ms": round(mean_ns / 1e6, 4),
        })

by_case = {}
for e in entries:
    by_case.setdefault((e["n_rows"], e["dim"]), {})[e["builder"]] = e["ms"]
speedups = [
    {
        "n_rows": n, "dim": d,
        "blocked_vs_naive": round(t["naive"] / t["blocked"], 2),
        "incremental_vs_naive": round(t["naive"] / t["incremental"], 2),
        **({"blocked_f32_vs_naive": round(t["naive"] / t["blocked_f32"], 2)}
           if "blocked_f32" in t else {}),
    }
    for (n, d), t in sorted(by_case.items())
    if {"naive", "blocked", "incremental"} <= t.keys()
]

# Kernel-only block sweeps (no k-selection): scalar f64 reference vs
# the unrolled f64 kernel vs f32 storage.
kgroup = os.path.join(crit, "distance_kernels")
kernels = []
if os.path.isdir(kgroup):
    for kernel in sorted(os.listdir(kgroup)):
        kdir = os.path.join(kgroup, kernel)
        if not os.path.isdir(kdir):
            continue
        for case in sorted(os.listdir(kdir)):
            est = os.path.join(kdir, case, "new", "estimates.json")
            if not os.path.isfile(est):
                continue
            with open(est) as f:
                mean_ns = json.load(f)["mean"]["point_estimate"]
            n, d = case.split("-")
            kernels.append({
                "kernel": kernel,
                "n_rows": int(n[1:]),
                "dim": int(d[1:]),
                "ms": round(mean_ns / 1e6, 4),
            })

kernel_by_case = {}
for e in kernels:
    kernel_by_case.setdefault((e["n_rows"], e["dim"]), {})[e["kernel"]] = e["ms"]
kernel_speedups = [
    {
        "n_rows": n, "dim": d,
        "simd_vs_scalar": round(t["scalar"] / t["simd"], 2),
        "f32_vs_scalar": round(t["scalar"] / t["f32"], 2),
    }
    for (n, d), t in sorted(kernel_by_case.items())
    if {"scalar", "simd", "f32"} <= t.keys()
]

snapshot = {
    "bench": "detector_kernels/knn_builders",
    "k": 15,
    "recorded": datetime.date.today().isoformat(),
    "source": "criterion mean point estimates (target/criterion)",
    "estimator": "criterion mean",
    "timings_ms": entries,
    "speedups": speedups,
    "kernel_timings_ms": kernels,
    "kernel_speedups": kernel_speedups,
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(entries)} timings, {len(speedups)} cases)")
PY

cargo bench -p anomex-bench --bench spec_parse "$@"

python3 - "$crit" BENCH_spec.json <<'PY'
import json, os, sys, datetime

crit, out = sys.argv[1], sys.argv[2]
entries = []
for group in ("spec_parse", "spec_encode"):
    gdir = os.path.join(crit, group)
    if not os.path.isdir(gdir):
        continue
    for dirpath, dirnames, filenames in os.walk(gdir):
        if os.path.basename(dirpath) != "new" or "estimates.json" not in filenames:
            continue
        with open(os.path.join(dirpath, "estimates.json")) as f:
            mean_ns = json.load(f)["mean"]["point_estimate"]
        rel = os.path.relpath(os.path.dirname(dirpath), crit)
        entries.append({
            "bench": rel.replace(os.sep, "/"),
            "ns": round(mean_ns, 1),
        })
entries.sort(key=lambda e: e["bench"])

snapshot = {
    "bench": "spec_parse (pipeline parsing, canonical encoding, fingerprint)",
    "recorded": datetime.date.today().isoformat(),
    "source": "criterion mean point estimates (target/criterion)",
    "estimator": "criterion mean",
    "timings_ns": entries,
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(entries)} timings)")
PY

cargo bench -p anomex-bench --bench knn_backends "$@"

python3 - "$crit" BENCH_knn_backends.json <<'PY'
import json, os, sys, datetime

crit, out = sys.argv[1], sys.argv[2]
group = os.path.join(crit, "knn_backends")
entries = []
for backend in sorted(os.listdir(group)):
    bdir = os.path.join(group, backend)
    if not os.path.isdir(bdir):
        continue
    for case in sorted(os.listdir(bdir)):
        est = os.path.join(bdir, case, "new", "estimates.json")
        if not os.path.isfile(est):
            continue
        with open(est) as f:
            mean_ns = json.load(f)["mean"]["point_estimate"]
        n, d = case.split("-")
        entries.append({
            "backend": backend,
            "n_rows": int(n[1:]),
            "dim": int(d[1:]),
            "ms": round(mean_ns / 1e6, 4),
        })
entries.sort(key=lambda e: (e["dim"], e["n_rows"], e["backend"]))

by_case = {}
for e in entries:
    by_case.setdefault((e["n_rows"], e["dim"]), {})[e["backend"]] = e["ms"]
speedups = [
    {
        "n_rows": n, "dim": d,
        **({"kdtree_vs_exact": round(t["exact"] / t["kdtree"], 2)}
           if {"exact", "kdtree"} <= t.keys() else {}),
        **({"approx_vs_exact": round(t["exact"] / t["approx"], 2)}
           if {"exact", "approx"} <= t.keys() else {}),
    }
    for (n, d), t in sorted(by_case.items())
]

snapshot = {
    "bench": "knn_backends (knn_table_with: exact vs kdtree vs approx)",
    "k": 15,
    "recorded": datetime.date.today().isoformat(),
    "source": "criterion mean point estimates (target/criterion)",
    "estimator": "criterion mean",
    "omitted": [
        "exact at n_rows=100000 (O(N^2 d) scan, minutes per sample)",
        "kdtree at n_rows=100000 dim=16 (pruning collapses; Auto routes to approx)",
    ],
    "timings_ms": entries,
    "speedups": speedups,
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(entries)} timings, {len(speedups)} cases)")
PY

cargo run --release -p anomex-eval --bin anomex_eval -- fig9 --fast \
    --out target/bench-eval --metrics BENCH_obs_counters.json >/dev/null
echo "wrote BENCH_obs_counters.json"

# Serve throughput/latency snapshot: reactor vs thread-per-connection
# edge over the real stack, p50/p99 from the obs log2 histograms, plus
# the SLO overload run (typed overloaded shed) and the registry
# sharding microbench. The example prints the snapshot JSON; the date
# is stamped here so reruns on the same code produce identical output.
cargo run --release -p anomex-serve --example serve_throughput \
    > target/serve_throughput.json

python3 - target/serve_throughput.json BENCH_serve.json <<'PY'
import json, sys, datetime

src, out = sys.argv[1], sys.argv[2]
with open(src) as f:
    snapshot = json.load(f)
stamped = {}
for k, v in snapshot.items():
    stamped[k] = v
    if k == "bench":
        stamped["recorded"] = datetime.date.today().isoformat()
with open(out, "w") as f:
    json.dump(stamped, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(snapshot.get('timings_ms', []))} timings)")
PY

# ---- perf gate + per-PR delta ---------------------------------------
# Diff every regenerated timing against the committed snapshot; write
# the full per-case delta to target/bench-delta.json (CI uploads it as
# a reviewable artifact) and fail on >10 % regression unless
# ANOMEX_BENCH_REBASE=1 explicitly rebaselines.
if [ "${ANOMEX_BENCH_REBASE:-0}" = "1" ]; then
    echo "ANOMEX_BENCH_REBASE=1: skipping perf gate, keeping new snapshots"
    exit 0
fi

python3 - <<'PY'
import json, subprocess, sys

THRESHOLD = 1.10  # fail when a case runs >10% slower than committed
DELTA_OUT = "target/bench-delta.json"

def committed(path):
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:{path}"],
            capture_output=True, text=True, check=True,
        ).stdout
    except subprocess.CalledProcessError:
        return None  # not committed yet: nothing to gate against
    return json.loads(blob)

def keyed(snapshot):
    """timing entries keyed by their identity fields, value = time."""
    out = {}
    for field, unit in (
        ("timings_ms", "ms"),
        ("timings_ns", "ns"),
        ("kernel_timings_ms", "ms"),
    ):
        for e in snapshot.get(field, []):
            key = tuple(sorted((k, v) for k, v in e.items() if k != unit))
            out[key] = (e[unit], unit)
    return out

failures = []
delta = []
for path in (
    "BENCH_detectors.json",
    "BENCH_spec.json",
    "BENCH_knn_backends.json",
    "BENCH_serve.json",
):
    base = committed(path)
    if base is None:
        print(f"perf gate: {path} has no committed baseline, skipping")
        continue
    with open(path) as f:
        new = json.load(f)
    base_k, new_k = keyed(base), keyed(new)
    for key, (old_t, unit) in sorted(base_k.items()):
        if key not in new_k:
            continue  # grid shrank: reviewed like any diff of the JSON
        new_t, _ = new_k[key]
        ratio = new_t / old_t if old_t > 0 else 1.0
        delta.append({
            "snapshot": path,
            "case": {k: v for k, v in key},
            "unit": unit,
            "committed": old_t,
            "regenerated": new_t,
            "ratio": round(ratio, 3),
            "regressed": bool(old_t > 0 and ratio > THRESHOLD),
        })
        if old_t > 0 and ratio > THRESHOLD:
            case = ", ".join(f"{k}={v}" for k, v in key)
            failures.append(
                f"{path}: {case}: {old_t}{unit} -> {new_t}{unit} "
                f"({ratio:.2f}x)"
            )

with open(DELTA_OUT, "w") as f:
    json.dump({
        "threshold": THRESHOLD,
        "compared": len(delta),
        "regressions": sum(1 for d in delta if d["regressed"]),
        "deltas": delta,
    }, f, indent=2)
    f.write("\n")
print(f"wrote {DELTA_OUT} ({len(delta)} cases compared)")

if failures:
    print("perf gate FAILED (>10% regression vs committed snapshot):")
    for f_ in failures:
        print(f"  {f_}")
    print("rerun with ANOMEX_BENCH_REBASE=1 to accept and rebaseline")
    sys.exit(1)
print("perf gate passed: no case >10% slower than committed snapshot")
PY
