#!/usr/bin/env bash
# Distill the detector-kernel benchmarks into BENCH_detectors.json and
# the spec-layer benchmarks into BENCH_spec.json, plus an observability
# counter snapshot into BENCH_obs_counters.json.
#
# Runs the `detector_kernels` criterion bench, then extracts the mean
# estimate of each naive/blocked/incremental kNN build from criterion's
# saved estimates and writes a compact JSON snapshot at the repo root.
# Commit the snapshot alongside kernel changes so reviewers can compare
# miss-path costs across machines without rerunning five minutes of
# benches.
#
# The obs snapshot comes from one instrumented fast fig9 grid run: its
# counters (scorer evaluations, cache hits, kernel builds) describe
# *how much work* the hot path did, complementing criterion's *how
# fast* — a perf win that quietly changes the work count shows up here.
#
# Usage: scripts/bench_snapshot.sh [extra cargo bench args...]

set -euo pipefail

cd "$(dirname "$0")/.."

cargo bench -p anomex-bench --bench detector_kernels "$@"

out=BENCH_detectors.json
crit=target/criterion

python3 - "$crit" "$out" <<'PY'
import json, os, sys, datetime

crit, out = sys.argv[1], sys.argv[2]
group = os.path.join(crit, "knn_builders")
entries = []
for builder in sorted(os.listdir(group)):
    bdir = os.path.join(group, builder)
    if not os.path.isdir(bdir):
        continue
    for case in sorted(os.listdir(bdir)):
        est = os.path.join(bdir, case, "new", "estimates.json")
        if not os.path.isfile(est):
            continue
        with open(est) as f:
            mean_ns = json.load(f)["mean"]["point_estimate"]
        n, d = case.split("-")
        entries.append({
            "builder": builder,
            "n_rows": int(n[1:]),
            "dim": int(d[1:]),
            "ms": round(mean_ns / 1e6, 4),
        })

by_case = {}
for e in entries:
    by_case.setdefault((e["n_rows"], e["dim"]), {})[e["builder"]] = e["ms"]
speedups = [
    {
        "n_rows": n, "dim": d,
        "blocked_vs_naive": round(t["naive"] / t["blocked"], 2),
        "incremental_vs_naive": round(t["naive"] / t["incremental"], 2),
    }
    for (n, d), t in sorted(by_case.items())
    if {"naive", "blocked", "incremental"} <= t.keys()
]

snapshot = {
    "bench": "detector_kernels/knn_builders",
    "k": 15,
    "recorded": datetime.date.today().isoformat(),
    "source": "criterion mean point estimates (target/criterion)",
    "estimator": "criterion mean",
    "timings_ms": entries,
    "speedups": speedups,
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(entries)} timings, {len(speedups)} cases)")
PY

cargo bench -p anomex-bench --bench spec_parse "$@"

python3 - "$crit" BENCH_spec.json <<'PY'
import json, os, sys, datetime

crit, out = sys.argv[1], sys.argv[2]
entries = []
for group in ("spec_parse", "spec_encode"):
    gdir = os.path.join(crit, group)
    if not os.path.isdir(gdir):
        continue
    for dirpath, dirnames, filenames in os.walk(gdir):
        if os.path.basename(dirpath) != "new" or "estimates.json" not in filenames:
            continue
        with open(os.path.join(dirpath, "estimates.json")) as f:
            mean_ns = json.load(f)["mean"]["point_estimate"]
        rel = os.path.relpath(os.path.dirname(dirpath), crit)
        entries.append({
            "bench": rel.replace(os.sep, "/"),
            "ns": round(mean_ns, 1),
        })
entries.sort(key=lambda e: e["bench"])

snapshot = {
    "bench": "spec_parse (pipeline parsing, canonical encoding, fingerprint)",
    "recorded": datetime.date.today().isoformat(),
    "source": "criterion mean point estimates (target/criterion)",
    "estimator": "criterion mean",
    "timings_ns": entries,
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(entries)} timings)")
PY

cargo run --release -p anomex-eval --bin anomex_eval -- fig9 --fast \
    --out target/bench-eval --metrics BENCH_obs_counters.json >/dev/null
echo "wrote BENCH_obs_counters.json"
