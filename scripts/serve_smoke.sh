#!/usr/bin/env bash
# Smoke test for the anomex_serve JSON-lines front end: pipe requests
# (load, then score and explain in both storage precisions) through
# `anomex_serve --stdin` and assert every response line is well-formed
# JSON with `"ok":true`.
#
# Usage: scripts/serve_smoke.sh [--release]
set -euo pipefail
cd "$(dirname "$0")/.."

profile=()
target_dir="target/debug"
if [[ "${1:-}" == "--release" ]]; then
    profile=(--release)
    target_dir="target/release"
fi

cargo build "${profile[@]}" -p anomex-serve --bin anomex_serve

requests='{"id":1,"op":"load","dataset":"smoke","rows":[[0.0,0.0],[0.1,0.0],[0.0,0.1],[0.1,0.1],[0.2,0.0],[0.0,0.2],[0.2,0.2],[0.1,0.2],[0.2,0.1],[5.0,5.0]]}
{"id":2,"op":"score","dataset":"smoke","detector":"lof:k=3","subspace":[0,1],"point":9}
{"id":3,"op":"explain","dataset":"smoke","detector":"lof:k=3","explainer":"beam","point":9,"dim":1}
{"id":4,"op":"score","dataset":"smoke","detector":"lof:k=3,precision=f32","subspace":[0,1],"point":9}
{"id":5,"op":"explain","dataset":"smoke","detector":"knndist:k=3,precision=f32","explainer":"beam","point":9,"dim":1}'

out="$(printf '%s\n' "$requests" | "$target_dir/anomex_serve" --stdin)"
printf '%s\n' "$out"

lines="$(printf '%s\n' "$out" | grep -c .)"
if [[ "$lines" -ne 5 ]]; then
    echo "FAIL: expected 5 response lines, got $lines" >&2
    exit 1
fi

i=0
while IFS= read -r line; do
    i=$((i + 1))
    # Well-formed JSON: python's parser is the arbiter (jq may be absent).
    printf '%s' "$line" | python3 -c '
import json, sys
resp = json.load(sys.stdin)
assert resp.get("ok") is True, f"response not ok: {resp}"
assert isinstance(resp.get("id"), int), f"missing id: {resp}"
' || {
        echo "FAIL: response $i is malformed or not ok: $line" >&2
        exit 1
    }
done < <(printf '%s\n' "$out")

echo "OK: $lines well-formed ok:true responses"
