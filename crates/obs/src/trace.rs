//! Trace sinks: a JSON-lines exporter for files/streams and an
//! in-memory recorder for tests.

use crate::registry::json_string;
use crate::subscriber::{FieldValue, Subscriber};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn write_fields(out: &mut String, fields: &[(&'static str, FieldValue)]) {
    for (key, value) in fields {
        let _ = match value {
            FieldValue::U64(v) => write!(out, ",{}:{v}", json_string(key)),
            FieldValue::F64(v) if v.is_finite() => write!(out, ",{}:{v}", json_string(key)),
            // JSON has no NaN/Inf literal; ship them as strings.
            FieldValue::F64(v) => {
                write!(out, ",{}:{}", json_string(key), json_string(&v.to_string()))
            }
            FieldValue::Str(v) => write!(out, ",{}:{}", json_string(key), json_string(v)),
        };
    }
}

/// A [`Subscriber`] writing one JSON object per record:
///
/// ```text
/// {"seq":12,"kind":"span_start","name":"core.engine.dim_pass","dim":3}
/// {"seq":40,"kind":"span_end","name":"core.engine.dim_pass","start_seq":12}
/// ```
///
/// `span_end` records add `"elapsed_micros"` when the span was opened
/// with [`crate::span_timed`]. Records are ordered by the emitting
/// threads' arrival at the writer lock; the `seq` field is the logical
/// order and is the thing to sort on. Only single-threaded (sequential)
/// runs produce byte-stable files.
pub struct JsonLinesSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSubscriber {
    /// Wraps any writer.
    #[must_use]
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        JsonLinesSubscriber {
            out: Mutex::new(Box::new(writer)),
        }
    }

    /// Creates (truncates) `path` and buffers writes to it.
    ///
    /// # Errors
    /// Propagates the file-creation error.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }

    /// Flushes the underlying writer. Call before reading the trace file
    /// of a still-installed subscriber; dropping flushes too.
    pub fn flush(&self) {
        // anomex: allow(swallowed-error) best-effort trace sink; a full disk must not fail the traced computation
        let _ = lock(&self.out).flush();
    }

    fn write_line(&self, line: &str) {
        let mut out = lock(&self.out);
        // anomex: allow(swallowed-error) best-effort trace sink; a full disk must not fail the traced computation
        let _ = writeln!(out, "{line}");
    }
}

impl Drop for JsonLinesSubscriber {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Subscriber for JsonLinesSubscriber {
    fn span_start(&self, seq: u64, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        let mut line = format!(
            "{{\"seq\":{seq},\"kind\":\"span_start\",\"name\":{}",
            json_string(name)
        );
        write_fields(&mut line, fields);
        line.push('}');
        self.write_line(&line);
    }

    fn span_end(&self, seq: u64, start_seq: u64, name: &'static str, elapsed_micros: Option<u64>) {
        let mut line = format!(
            "{{\"seq\":{seq},\"kind\":\"span_end\",\"name\":{},\"start_seq\":{start_seq}",
            json_string(name)
        );
        if let Some(micros) = elapsed_micros {
            let _ = write!(line, ",\"elapsed_micros\":{micros}");
        }
        line.push('}');
        self.write_line(&line);
    }

    fn on_event(&self, seq: u64, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        let mut line = format!(
            "{{\"seq\":{seq},\"kind\":\"event\",\"name\":{}",
            json_string(name)
        );
        write_fields(&mut line, fields);
        line.push('}');
        self.write_line(&line);
    }
}

/// One record captured by [`RecordingSubscriber`].
#[derive(Debug, Clone, PartialEq)]
pub struct Recorded {
    /// `"span_start"`, `"span_end"` or `"event"`.
    pub kind: &'static str,
    /// Logical sequence number.
    pub seq: u64,
    /// Record name.
    pub name: &'static str,
    /// Fields (empty for `span_end`).
    pub fields: Vec<(&'static str, FieldValue)>,
    /// For `span_end`: the matching start's sequence number.
    pub start_seq: Option<u64>,
    /// For `span_end` of timed spans: elapsed wall time.
    pub elapsed_micros: Option<u64>,
}

/// An in-memory [`Subscriber`] for tests: captures every record for
/// later assertion.
#[derive(Debug, Default)]
pub struct RecordingSubscriber {
    records: Mutex<Vec<Recorded>>,
}

impl RecordingSubscriber {
    /// Drains and returns everything recorded so far.
    #[must_use]
    pub fn take(&self) -> Vec<Recorded> {
        std::mem::take(&mut lock(&self.records))
    }

    /// Records captured so far (without draining).
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.records).len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records with the given name (all kinds).
    #[must_use]
    pub fn count_named(&self, name: &str) -> usize {
        lock(&self.records)
            .iter()
            .filter(|r| r.name == name)
            .count()
    }

    fn push(&self, r: Recorded) {
        lock(&self.records).push(r);
    }
}

impl Subscriber for RecordingSubscriber {
    fn span_start(&self, seq: u64, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        self.push(Recorded {
            kind: "span_start",
            seq,
            name,
            fields: fields.to_vec(),
            start_seq: None,
            elapsed_micros: None,
        });
    }

    fn span_end(&self, seq: u64, start_seq: u64, name: &'static str, elapsed_micros: Option<u64>) {
        self.push(Recorded {
            kind: "span_end",
            seq,
            name,
            fields: Vec::new(),
            start_seq: Some(start_seq),
            elapsed_micros,
        });
    }

    fn on_event(&self, seq: u64, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        self.push(Recorded {
            kind: "event",
            seq,
            name,
            fields: fields.to_vec(),
            start_seq: None,
            elapsed_micros: None,
        });
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn json_lines_shape() {
        let buf = SharedBuf::default();
        let sub = JsonLinesSubscriber::new(buf.clone());
        sub.span_start(0, "t.span", &[("n", FieldValue::U64(2))]);
        sub.on_event(1, "t.event", &[("tag", FieldValue::Str("x"))]);
        sub.span_end(2, 0, "t.span", Some(15));
        sub.flush();
        let text = String::from_utf8(lock(&buf.0).clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "{\"seq\":0,\"kind\":\"span_start\",\"name\":\"t.span\",\"n\":2}",
                "{\"seq\":1,\"kind\":\"event\",\"name\":\"t.event\",\"tag\":\"x\"}",
                "{\"seq\":2,\"kind\":\"span_end\",\"name\":\"t.span\",\"start_seq\":0,\"elapsed_micros\":15}",
            ]
        );
    }

    #[test]
    fn nonfinite_floats_become_strings() {
        let buf = SharedBuf::default();
        let sub = JsonLinesSubscriber::new(buf.clone());
        sub.on_event(
            0,
            "t.nan",
            &[
                ("a", FieldValue::F64(f64::NAN)),
                ("b", FieldValue::F64(0.5)),
            ],
        );
        sub.flush();
        let text = String::from_utf8(lock(&buf.0).clone()).expect("utf8");
        assert_eq!(
            text.trim_end(),
            "{\"seq\":0,\"kind\":\"event\",\"name\":\"t.nan\",\"a\":\"NaN\",\"b\":0.5}"
        );
    }

    #[test]
    fn file_export_round_trip() {
        let path =
            std::env::temp_dir().join(format!("anomex-obs-trace-{}.jsonl", std::process::id()));
        {
            let sub = JsonLinesSubscriber::to_file(&path).expect("create trace file");
            sub.span_start(3, "t.file", &[]);
            sub.span_end(4, 3, "t.file", None);
        } // drop flushes
        let text = std::fs::read_to_string(&path).expect("read trace file");
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"start_seq\":3"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recorder_captures_and_drains() {
        let rec = RecordingSubscriber::default();
        assert!(rec.is_empty());
        rec.span_start(0, "t.r", &[]);
        rec.span_end(1, 0, "t.r", None);
        rec.on_event(2, "t.e", &[("v", FieldValue::F64(1.5))]);
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.count_named("t.r"), 2);
        let records = rec.take();
        assert!(rec.is_empty());
        assert_eq!(records[1].start_seq, Some(0));
        assert_eq!(records[2].fields, vec![("v", FieldValue::F64(1.5))]);
    }
}
