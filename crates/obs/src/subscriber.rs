//! The span/event subscriber layer: a process-global [`Subscriber`]
//! slot, guard-based spans ordered by a logical sequence counter, and an
//! enabled-flag fast path that makes the uninstalled state cost one
//! relaxed atomic load per call site.
//!
//! Two span flavours enforce the workspace's determinism rules:
//!
//! * [`span`] — logical-sequence-only; safe in pure-compute crates
//!   (`anomex-core`, `anomex-detectors`), where wall clocks are banned
//!   by the `nondeterminism` analysis rule.
//! * [`span_timed`] — additionally reports wall-clock elapsed
//!   microseconds on drop; reserved for edge crates (`anomex-serve`,
//!   binaries) where latency is the point.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

/// One span/event field value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, sizes, ids).
    U64(u64),
    /// A float (rates, scores).
    F64(f64),
    /// A static label.
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

/// A sink for span and event records. Implementations must be cheap and
/// non-blocking-ish: they run inline on the instrumented thread.
pub trait Subscriber: Send + Sync {
    /// A span opened: `seq` is its logical birth order.
    fn span_start(&self, seq: u64, name: &'static str, fields: &[(&'static str, FieldValue)]);

    /// A span closed: `seq` is the close order, `start_seq` links back to
    /// the matching start, `elapsed_micros` is present only for spans
    /// opened with [`span_timed`].
    fn span_end(&self, seq: u64, start_seq: u64, name: &'static str, elapsed_micros: Option<u64>);

    /// A point event.
    fn on_event(&self, seq: u64, name: &'static str, fields: &[(&'static str, FieldValue)]);
}

/// The do-nothing subscriber: the semantics of the uninstalled state,
/// available as a value for tests that want to prove instrumentation
/// inertness explicitly.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn span_start(&self, _: u64, _: &'static str, _: &[(&'static str, FieldValue)]) {}
    fn span_end(&self, _: u64, _: u64, _: &'static str, _: Option<u64>) {}
    fn on_event(&self, _: u64, _: &'static str, _: &[(&'static str, FieldValue)]) {}
}

/// Fast-path gate: call sites check this single relaxed load before
/// doing any work.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed subscriber. An `RwLock` (not a `Mutex`): emitting is a
/// read, so concurrent instrumented threads never serialize on the slot.
static GLOBAL: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

/// Process-global logical clock for span/event ordering.
static SEQ: AtomicU64 = AtomicU64::new(0);

fn next_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Installs `sub` as the process-global subscriber, replacing any
/// previous one. Spans already open keep their guard state and emit
/// their end record to the *new* subscriber — harmless for the
/// append-only sinks this crate ships.
pub fn install(sub: Arc<dyn Subscriber>) {
    *GLOBAL.write().unwrap_or_else(PoisonError::into_inner) = Some(sub);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes the global subscriber; spans and events become no-ops again.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    *GLOBAL.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether a subscriber is currently installed.
#[must_use]
pub fn installed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn dispatch(f: impl FnOnce(&dyn Subscriber)) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let guard = GLOBAL.read().unwrap_or_else(PoisonError::into_inner);
    if let Some(sub) = guard.as_ref() {
        f(sub.as_ref());
    }
}

/// An open span; emits the end record on drop. Inactive (fully free)
/// when no subscriber was installed at open time.
#[must_use = "a span guard dropped immediately closes the span immediately"]
pub struct SpanGuard {
    name: &'static str,
    start_seq: u64,
    started: Option<Instant>,
    active: bool,
}

impl SpanGuard {
    /// The logical sequence number the span was opened at.
    #[must_use]
    pub fn start_seq(&self) -> u64 {
        self.start_seq
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let elapsed = self
            .started
            .map(|t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
        let seq = next_seq();
        dispatch(|s| s.span_end(seq, self.start_seq, self.name, elapsed));
    }
}

fn open_span(name: &'static str, fields: &[(&'static str, FieldValue)], timed: bool) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            name,
            start_seq: 0,
            started: None,
            active: false,
        };
    }
    let start_seq = next_seq();
    dispatch(|s| s.span_start(start_seq, name, fields));
    SpanGuard {
        name,
        start_seq,
        started: timed.then(Instant::now),
        active: true,
    }
}

/// Opens a logical-sequence-only span (no wall clock) — the form pure
/// compute crates use. Prefer the [`crate::span!`] macro for fields.
pub fn span(name: &'static str, fields: &[(&'static str, FieldValue)]) -> SpanGuard {
    open_span(name, fields, false)
}

/// Opens a wall-clock span: the end record carries elapsed microseconds.
/// Edge crates (serving, binaries) only — pure compute crates must stay
/// on [`span`] to honour the workspace's `nondeterminism` rule.
pub fn span_timed(name: &'static str, fields: &[(&'static str, FieldValue)]) -> SpanGuard {
    open_span(name, fields, true)
}

/// Emits a point event to the installed subscriber (no-op when none).
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let seq = next_seq();
    dispatch(|s| s.on_event(seq, name, fields));
}

/// Test-only serialization of the global subscriber slot: tests that
/// install/uninstall must hold this lock so their windows never overlap
/// (Rust runs tests on parallel threads by default).
#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static SERIAL: Mutex<()> = Mutex::new(());

    pub(crate) fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod unit_tests {
    use super::test_support::serial;
    use super::*;
    use crate::trace::RecordingSubscriber;

    #[test]
    fn disabled_spans_are_inert() {
        let _s = serial();
        uninstall();
        let g = span("t.noop", &[]);
        assert!(!g.active);
        drop(g);
        event("t.noop", &[]);
        assert!(!installed());
    }

    #[test]
    fn spans_and_events_reach_the_subscriber_in_seq_order() {
        let _s = serial();
        let rec = Arc::new(RecordingSubscriber::default());
        install(rec.clone());
        {
            let _outer = span("t.outer", &[("k", FieldValue::U64(1))]);
            event("t.mid", &[]);
            let _inner = span("t.inner", &[]);
        }
        uninstall();
        let records = rec.take();
        assert_eq!(records.len(), 5, "{records:?}");
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "records must arrive in logical order");
        // LIFO close order: inner ends before outer.
        assert_eq!(records[3].name, "t.inner");
        assert_eq!(records[4].name, "t.outer");
    }

    #[test]
    fn untimed_spans_report_no_elapsed() {
        let _s = serial();
        let rec = Arc::new(RecordingSubscriber::default());
        install(rec.clone());
        drop(span("t.plain", &[]));
        drop(span_timed("t.timed", &[]));
        uninstall();
        let records = rec.take();
        let plain = records
            .iter()
            .find(|r| r.name == "t.plain" && r.kind == "span_end")
            .expect("plain end");
        let timed = records
            .iter()
            .find(|r| r.name == "t.timed" && r.kind == "span_end")
            .expect("timed end");
        assert_eq!(plain.elapsed_micros, None);
        assert!(timed.elapsed_micros.is_some());
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3u64), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(0.5f64), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x"));
    }
}
