//! Zero-dependency observability for the anomex workspace: a
//! process-wide [`MetricsRegistry`] of named counters, gauges and
//! log2-bucketed histograms, a [`Subscriber`] span/event API, and a
//! JSON-lines trace
//! exporter — all `std`-only so pure-compute crates can depend on it
//! without dragging wall clocks or hashers into their determinism
//! envelope.
//!
//! ## Design rules
//!
//! * **Metrics are always on and never observable in results.** Counters
//!   and histograms are plain relaxed atomics; incrementing them cannot
//!   change a score, a ranking or an iteration order. Snapshots iterate
//!   `BTreeMap`s, so two snapshots of the same state serialize
//!   byte-identically.
//! * **Tracing is opt-in and inert by default.** With no subscriber
//!   installed (the implicit [`NoopSubscriber`] state), [`span`] and
//!   [`event`] reduce to one relaxed `AtomicBool` load and allocate
//!   nothing.
//! * **Logical time in pure compute, wall time at the edge.** Span
//!   records are ordered by a process-global logical sequence number;
//!   only [`span_timed`] — meant for the serving layer — attaches
//!   wall-clock durations. Core/detector call sites use [`span`] and
//!   stay clean under `anomex-analyze`'s `nondeterminism` rule.
//!
//! ```
//! let requests = anomex_obs::counter("doc.requests");
//! requests.incr();
//! let _guard = anomex_obs::span!("doc.phase", items = 3usize);
//! anomex_obs::histogram("doc.batch_size").observe(3);
//! assert!(anomex_obs::snapshot().counter("doc.requests") >= 1);
//! ```

pub mod registry;
pub mod subscriber;
pub mod trace;

pub use registry::{
    counter, gauge, histogram, snapshot, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot,
};
pub use subscriber::{
    event, install, installed, span, span_timed, uninstall, FieldValue, NoopSubscriber, SpanGuard,
    Subscriber,
};
pub use trace::{JsonLinesSubscriber, Recorded, RecordingSubscriber};

/// Opens an instrumentation span: `span!("name")` or
/// `span!("name", key = value, ...)`. Field values convert through
/// [`FieldValue::from`] (`usize`/`u64`/`f64`/`&'static str`). The guard
/// emits the span-end record when dropped; bind it to a named variable
/// (`let _span = ...`) so it lives to the end of the scope.
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::span($name, &[])
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span(
            $name,
            &[$((stringify!($key), $crate::FieldValue::from($value))),+],
        )
    };
}

/// Emits a point event: `event!("name")` or `event!("name", key = value)`.
#[macro_export]
macro_rules! event {
    ($name:expr $(,)?) => {
        $crate::event($name, &[])
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::event(
            $name,
            &[$((stringify!($key), $crate::FieldValue::from($value))),+],
        )
    };
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn macro_forms_compile_and_run() {
        let _serial = subscriber::test_support::serial();
        let rec = Arc::new(RecordingSubscriber::default());
        install(rec.clone());
        {
            let _plain = span!("lib.plain");
            let _fields = span!("lib.fields", n = 3usize, ratio = 0.5);
            event!("lib.event", hits = 7u64, tag = "warm");
        }
        uninstall();
        let records = rec.take();
        // Two starts, one event, two ends.
        assert_eq!(records.len(), 5);
        assert!(records.iter().any(|r| r.name == "lib.event"));
    }

    #[test]
    fn counters_survive_subscriber_churn() {
        let _serial = subscriber::test_support::serial();
        let c = counter("lib.churn");
        let before = c.get();
        install(Arc::new(NoopSubscriber));
        c.incr();
        uninstall();
        c.incr();
        assert_eq!(c.get(), before + 2);
    }
}
