//! The process-wide metrics registry: named counters, gauges and
//! log2-bucketed histograms over relaxed atomics, with deterministic
//! (`BTreeMap`-ordered) snapshots.
//!
//! Handles are `&'static`: a metric, once registered, lives for the
//! process (the backing storage is leaked — bounded by the number of
//! distinct metric names, which is a compile-time property of the
//! instrumented code). Hot paths are expected to cache the handle in a
//! `OnceLock` so steady-state cost is a single relaxed `fetch_add`.
//!
//! The registry's interior mutex is a **leaf lock**: no other lock in
//! the workspace is ever acquired while it is held (registration
//! inserts into a map and returns; snapshots copy atomics into owned
//! structures). `crates/analyze/lock_order.txt` declares it as the
//! finest class (`obs-registry`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks a mutex, recovering from poisoning: the guarded sections only
/// insert into maps and read atomics, so a poisoned lock can only come
/// from a panicking thread elsewhere and the data stays consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonically increasing named counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named last-value-wins gauge: a level, not a rate. Where a
/// [`Counter`] answers "how many ever", a gauge answers "what is it
/// right now" — a shed flag, the latest SLO quantile estimate, a queue
/// depth. Set and read are single relaxed atomics.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Replaces the gauge's value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63`.
const N_BUCKETS: usize = 65;

/// A log2-bucketed histogram: bucket 0 holds exact zeros, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b)`. Coarse by design — it answers
/// "what order of magnitude" questions (queue waits, batch sizes)
/// without requiring a quantile sketch.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
        }
    }

    /// The bucket index of `value`: 0 for 0, otherwise
    /// `1 + floor(log2(value))`.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        // `bucket_of(u64::MAX) == 64 == N_BUCKETS - 1`, so the index is
        // always in range; `.get()` keeps the hot path panic-free.
        if let Some(bucket) = self.buckets.get(Self::bucket_of(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// A point-in-time copy of one histogram: total count, total sum, and
/// the non-empty `(log2 bucket, count)` pairs in ascending bucket order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (saturating at `u64::MAX` in theory;
    /// callers observe micros and sizes, far from overflow in practice).
    pub sum: u64,
    /// Non-empty buckets, ascending: `(bucket index, observations)`.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The inclusive upper bound of the bucket holding the `q`-quantile
    /// observation (0 when empty; `q` clamped to `[0, 1]`).
    ///
    /// Log2 buckets make this a *conservative* quantile: the true value
    /// lies somewhere in the winning bucket, and this returns the
    /// bucket's top edge (`2^b − 1`; bucket 0 → 0), i.e. at most 2× the
    /// true quantile. That one-sided error is exactly what an SLO check
    /// wants — "p99 is at most X" never under-reports a violation.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q·count), at least 1: the rank of the quantile observation.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(b, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(b);
            }
        }
        // Unreachable when counts are consistent; be safe under racy
        // snapshots (count read before a concurrent bucket increment).
        self.buckets
            .last()
            .map_or(0, |&(b, _)| bucket_upper_bound(b))
    }

    /// Bucket-wise difference `self − earlier` (saturating), for judging
    /// a *window* of observations against cumulative process totals —
    /// e.g. "queue waits since the last SLO evaluation".
    #[must_use]
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        for &(b, n) in &self.buckets {
            let was = earlier
                .buckets
                .iter()
                .find(|&&(eb, _)| eb == b)
                .map_or(0, |&(_, en)| en);
            let d = n.saturating_sub(was);
            if d > 0 {
                buckets.push((b, d));
            }
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }
}

/// The largest value bucket `b` can hold: 0 for the zero bucket,
/// `2^b − 1` otherwise (`u64::MAX` for the top bucket).
fn bucket_upper_bound(b: u32) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// The registry of named metrics — see the [module docs](self).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry (tests; production code uses
    /// [`MetricsRegistry::global`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    #[must_use]
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// The counter named `name`, registering it on first use.
    #[must_use]
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = lock(&self.counters);
        map.entry(name)
            .or_insert_with(|| &*Box::leak(Box::new(Counter::new())))
    }

    /// The gauge named `name`, registering it on first use.
    #[must_use]
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = lock(&self.gauges);
        map.entry(name)
            .or_insert_with(|| &*Box::leak(Box::new(Gauge::new())))
    }

    /// The histogram named `name`, registering it on first use.
    #[must_use]
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = lock(&self.histograms);
        map.entry(name)
            .or_insert_with(|| &*Box::leak(Box::new(Histogram::new())))
    }

    /// A deterministic point-in-time copy of every metric: counters and
    /// histograms in ascending name order. (Each value is read
    /// atomically; the set is not one atomic transaction — quiesce
    /// writers first when exact cross-metric consistency matters.)
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Scoped so the counter-map guard is provably released before
        // the histogram map is locked (obs-registry is a leaf class in
        // crates/analyze/lock_order.txt: it never nests, even with
        // itself).
        let counters = {
            let map = lock(&self.counters);
            map.iter()
                .map(|(&name, c)| (name.to_string(), c.get()))
                .collect()
        };
        let gauges = {
            let map = lock(&self.gauges);
            map.iter()
                .map(|(&name, g)| (name.to_string(), g.get()))
                .collect()
        };
        let histograms = {
            let map = lock(&self.histograms);
            map.iter()
                .map(|(&name, h)| (name.to_string(), h.snapshot()))
                .collect()
        };
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A deterministic copy of the registry's state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name, ascending.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name, ascending.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name, ascending.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of one counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of one gauge (0 when absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Counter-wise difference `self - earlier` (saturating at 0), for
    /// metering one region of work against the cumulative process
    /// totals. Histograms are dropped — bucket deltas are rarely what a
    /// caller wants; diff [`MetricsSnapshot::counters`] directly instead.
    #[must_use]
    pub fn counters_since(&self, earlier: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(name, &v)| {
                let was = earlier.counter(name);
                (name.clone(), v.saturating_sub(was))
            })
            .filter(|(_, d)| *d > 0)
            .collect()
    }

    /// Serializes the snapshot as a stable, hand-rolled JSON object
    /// (names ascending — two snapshots of equal state are
    /// byte-identical). No external serializer: this crate stays
    /// zero-dependency.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_string(name),
                h.count,
                h.sum
            );
            for (j, (b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{b},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Renders `s` as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The global registry's counter named `name`.
#[must_use]
pub fn counter(name: &'static str) -> &'static Counter {
    MetricsRegistry::global().counter(name)
}

/// The global registry's gauge named `name`.
#[must_use]
pub fn gauge(name: &'static str) -> &'static Gauge {
    MetricsRegistry::global().gauge(name)
}

/// The global registry's histogram named `name`.
#[must_use]
pub fn histogram(name: &'static str) -> &'static Histogram {
    MetricsRegistry::global().histogram(name)
}

/// A deterministic snapshot of the global registry.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    MetricsRegistry::global().snapshot()
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let r = MetricsRegistry::new();
        let a = r.counter("t.a");
        let b = r.counter("t.a");
        assert!(std::ptr::eq(a, b), "same name must yield one counter");
        a.incr();
        b.add(4);
        assert_eq!(r.snapshot().counter("t.a"), 5);
        assert_eq!(r.snapshot().counter("t.missing"), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_snapshot_reports_nonempty_buckets_in_order() {
        let h = Histogram::new();
        for v in [0, 1, 1, 3, 1000, u64::MAX] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(
            s.buckets,
            vec![(0, 1), (1, 2), (2, 1), (10, 1), (64, 1)],
            "{s:?}"
        );
        let ordered: Vec<u32> = s.buckets.iter().map(|&(b, _)| b).collect();
        let mut sorted = ordered.clone();
        sorted.sort_unstable();
        assert_eq!(ordered, sorted);
    }

    #[test]
    fn histogram_mean() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().mean(), 0.0);
        h.observe(2);
        h.observe(4);
        assert!((h.snapshot().mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn snapshots_are_deterministic_and_ordered() {
        let r = MetricsRegistry::new();
        // Register in non-sorted order.
        r.counter("t.z").incr();
        r.counter("t.a").incr();
        r.histogram("t.h").observe(7);
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.to_json(), s2.to_json());
        let names: Vec<&String> = s1.counters.keys().collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "counter names must serialize ascending");
    }

    #[test]
    fn counters_since_reports_only_changes() {
        let r = MetricsRegistry::new();
        r.counter("t.stay").add(3);
        let before = r.snapshot();
        r.counter("t.move").add(2);
        let delta = r.snapshot().counters_since(&before);
        assert_eq!(delta.get("t.move"), Some(&2));
        assert_eq!(delta.get("t.stay"), None);
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn snapshot_json_shape() {
        let r = MetricsRegistry::new();
        r.counter("t.c").add(2);
        r.gauge("t.g").set(9);
        r.histogram("t.h").observe(5);
        let json = r.snapshot().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"t.c\":2},\"gauges\":{\"t.g\":9},\"histograms\":{\"t.h\":{\"count\":1,\"sum\":5,\"buckets\":[[3,1]]}}}"
        );
    }

    #[test]
    fn gauges_are_last_value_wins() {
        let r = MetricsRegistry::new();
        let g = r.gauge("t.level");
        let same = r.gauge("t.level");
        assert!(std::ptr::eq(g, same), "same name must yield one gauge");
        g.set(7);
        same.set(3);
        assert_eq!(r.snapshot().gauge("t.level"), 3);
        assert_eq!(r.snapshot().gauge("t.missing"), 0);
    }

    #[test]
    fn quantile_upper_bound_is_the_bucket_top_edge() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile_upper_bound(0.99), 0, "empty → 0");
        // 90 fast observations (value 3 → bucket 2) and 10 slow
        // (value 1000 → bucket 10): p50 lands in the fast bucket,
        // p99 in the slow one.
        for _ in 0..90 {
            h.observe(3);
        }
        for _ in 0..10 {
            h.observe(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_upper_bound(0.50), 3, "2^2 − 1");
        assert_eq!(s.quantile_upper_bound(0.90), 3, "rank 90 is still fast");
        assert_eq!(
            s.quantile_upper_bound(0.91),
            1023,
            "rank 91 is slow: 2^10 − 1"
        );
        assert_eq!(s.quantile_upper_bound(0.99), 1023);
        assert_eq!(s.quantile_upper_bound(1.0), 1023);
        assert_eq!(s.quantile_upper_bound(0.0), 3, "clamped to rank 1");

        let zeros = Histogram::new();
        zeros.observe(0);
        assert_eq!(zeros.snapshot().quantile_upper_bound(0.99), 0);
        let top = Histogram::new();
        top.observe(u64::MAX);
        assert_eq!(top.snapshot().quantile_upper_bound(0.5), u64::MAX);
    }

    #[test]
    fn histogram_since_isolates_the_window() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe(2); // bucket 2
        }
        let before = h.snapshot();
        for _ in 0..5 {
            h.observe(4000); // bucket 12
        }
        let window = h.snapshot().since(&before);
        assert_eq!(window.count, 5);
        assert_eq!(window.sum, 20_000);
        assert_eq!(window.buckets, vec![(12, 5)]);
        // Cumulative p99 is still dominated by the old fast bucket; the
        // window's p99 sees only the new slow observations.
        assert_eq!(h.snapshot().quantile_upper_bound(0.5), 3);
        assert_eq!(window.quantile_upper_bound(0.5), 4095, "2^12 − 1");
        // since(self) is empty.
        let now = h.snapshot();
        let empty = now.since(&now);
        assert_eq!(empty.count, 0);
        assert!(empty.buckets.is_empty());
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let r = MetricsRegistry::new();
        let c = r.counter("t.par");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
