//! Property-based tests for the statistical substrate.

use anomex_stats::descriptive::{self, OnlineMoments};
use anomex_stats::dist::{Normal, StudentT};
use anomex_stats::rank;
use anomex_stats::special::beta_inc_reg;
use anomex_stats::tests::ks::ks_two_sample;
use anomex_stats::tests::welch::welch_t_test;
use proptest::prelude::*;

/// Strategy: a sample of finite, moderately sized floats.
fn sample(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, min_len..64)
}

proptest! {
    #[test]
    fn welford_mean_within_bounds(xs in sample(1)) {
        let mut m = OnlineMoments::new();
        m.extend(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m.mean() >= lo - 1e-6 && m.mean() <= hi + 1e-6);
        prop_assert!(m.sample_variance() >= -1e-9);
    }

    #[test]
    fn welford_merge_associative(xs in sample(3), split in 0usize..64) {
        let split = split % xs.len();
        let mut whole = OnlineMoments::new();
        whole.extend(&xs);
        let mut a = OnlineMoments::new();
        a.extend(&xs[..split]);
        let mut b = OnlineMoments::new();
        b.extend(&xs[split..]);
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        let scale = whole.mean().abs().max(1.0);
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-8 * scale);
    }

    #[test]
    fn standardize_is_zero_mean(mut xs in sample(2)) {
        descriptive::standardize(&mut xs);
        let mut m = OnlineMoments::new();
        m.extend(&xs);
        prop_assert!(m.mean().abs() < 1e-7);
        // Either all-zero (constant input) or unit variance.
        let v = m.population_variance();
        prop_assert!(v.abs() < 1e-7 || (v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zscore_monotone_in_x(mean in -100.0f64..100.0, std in 0.01f64..100.0,
                            a in -1e3f64..1e3, delta in 0.0f64..1e3) {
        let za = descriptive::zscore(a, mean, std);
        let zb = descriptive::zscore(a + delta, mean, std);
        prop_assert!(zb >= za);
    }

    #[test]
    fn beta_inc_in_unit_interval(a in 0.05f64..50.0, b in 0.05f64..50.0, x in 0.0f64..=1.0) {
        let v = beta_inc_reg(a, b, x);
        prop_assert!((0.0..=1.0).contains(&v), "betainc({a},{b},{x}) = {v}");
    }

    #[test]
    fn beta_inc_symmetry(a in 0.1f64..20.0, b in 0.1f64..20.0, x in 0.001f64..0.999) {
        let lhs = beta_inc_reg(a, b, x);
        let rhs = 1.0 - beta_inc_reg(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_monotone(mu in -10.0f64..10.0, sd in 0.1f64..10.0,
                           x in -50.0f64..50.0, d in 0.0f64..10.0) {
        let n = Normal::new(mu, sd).unwrap();
        prop_assert!(n.cdf(x + d) >= n.cdf(x) - 1e-12);
        let c = n.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn student_t_cdf_valid(df in 0.5f64..200.0, t in -50.0f64..50.0) {
        let d = StudentT::new(df).unwrap();
        let c = d.cdf(t);
        prop_assert!((0.0..=1.0).contains(&c));
        let p = d.two_sided_p(t);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn welch_p_in_unit_interval(a in sample(2), b in sample(2)) {
        if let Ok(r) = welch_t_test(&a, &b) {
            prop_assert!((0.0..=1.0).contains(&r.p_value));
            prop_assert!(r.df > 0.0);
        }
    }

    #[test]
    fn welch_shift_invariance(a in sample(2), b in sample(2), shift in -1e3f64..1e3) {
        let ra = welch_t_test(&a, &b);
        let sa: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let sb: Vec<f64> = b.iter().map(|x| x + shift).collect();
        let rb = welch_t_test(&sa, &sb);
        if let (Ok(x), Ok(y)) = (ra, rb) {
            // Shifting both samples by the same constant leaves the statistic
            // nearly unchanged (floating-point cancellation aside).
            prop_assert!((x.statistic - y.statistic).abs() < 1e-3 * x.statistic.abs().max(1.0));
        }
    }

    #[test]
    fn ks_statistic_bounded(a in sample(1), b in sample(1)) {
        let r = ks_two_sample(&a, &b).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.statistic));
        prop_assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn ks_identical_is_zero(a in sample(1)) {
        let r = ks_two_sample(&a, &a).unwrap();
        prop_assert_eq!(r.statistic, 0.0);
    }

    #[test]
    fn argsort_is_permutation_and_sorted(xs in sample(1)) {
        let idx = rank::argsort(&xs);
        let mut seen = vec![false; xs.len()];
        for &i in &idx {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        for w in idx.windows(2) {
            prop_assert!(xs[w[0]] <= xs[w[1]]);
        }
    }

    #[test]
    fn bottom_k_agrees_with_sort(xs in sample(1), k in 0usize..80) {
        let fast = rank::bottom_k_asc(&xs, k);
        let slow: Vec<usize> = rank::argsort(&xs).into_iter().take(k).collect();
        // Values must agree (indices may differ under exact ties).
        let fv: Vec<f64> = fast.iter().map(|&i| xs[i]).collect();
        let sv: Vec<f64> = slow.iter().map(|&i| xs[i]).collect();
        prop_assert_eq!(fv, sv);
    }

    #[test]
    fn quantile_within_range(xs in sample(1), q in 0.0f64..=1.0) {
        let v = descriptive::quantile(&xs, q).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }
}
