//! # anomex-stats
//!
//! Self-contained statistical substrate for the `anomex` workspace: the
//! numerical building blocks required by the outlier detectors and the
//! subspace-explanation algorithms of Myrtakis et al., *"A Comparative
//! Evaluation of Anomaly Explanation Algorithms"* (EDBT 2021).
//!
//! The crate deliberately has **no external dependencies**. Everything —
//! special functions, distributions and the two-sample hypothesis tests —
//! is implemented from first principles and validated against reference
//! values in the unit tests.
//!
//! ## Contents
//!
//! * [`descriptive`] — streaming and batch moments, quantiles, z-scores.
//! * [`special`] — `ln Γ`, regularized incomplete beta, `erf`/`erfc`.
//! * [`dist`] — standard normal and Student-t distributions.
//! * [`tests`] — Welch's two-sample t-test (used by RefOut and HiCS) and
//!   the two-sample Kolmogorov–Smirnov test (HiCS's alternative contrast
//!   test).
//! * [`rank`] — argsort / ranking / top-k selection helpers shared by the
//!   detectors and the evaluation metrics.
//!
//! ## Example
//!
//! ```
//! use anomex_stats::tests::welch::welch_t_test;
//!
//! let a = [1.0, 2.0, 3.0, 4.0, 5.0];
//! let b = [6.0, 7.0, 8.0, 9.0, 10.0];
//! let r = welch_t_test(&a, &b).unwrap();
//! assert!(r.p_value < 0.01); // clearly different means
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod descriptive;
pub mod dist;
pub mod linalg;
pub mod rank;
pub mod special;
pub mod tests;

pub use descriptive::{OnlineMoments, Summary};
pub use tests::ks::{ks_two_sample, KsResult};
pub use tests::welch::{welch_t_test, WelchResult};

/// Error type for statistical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// A sample was empty or too small for the requested statistic.
    InsufficientData {
        /// Name of the routine that failed.
        what: &'static str,
        /// Minimum required number of observations.
        needed: usize,
        /// Number of observations actually provided.
        got: usize,
    },
    /// An input contained NaN or infinite values where finite values are required.
    NonFinite {
        /// Name of the routine that failed.
        what: &'static str,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the routine that failed.
        what: &'static str,
        /// Human-readable description of the violated constraint.
        detail: &'static str,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::InsufficientData { what, needed, got } => {
                write!(f, "{what}: needs at least {needed} observations, got {got}")
            }
            StatsError::NonFinite { what } => write!(f, "{what}: non-finite input"),
            StatsError::InvalidParameter { what, detail } => write!(f, "{what}: {detail}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
