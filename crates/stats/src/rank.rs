//! Ranking and selection helpers: argsort, top-k, dense ranks.
//!
//! These are shared by the detectors (k-nearest-neighbour selection), the
//! explainers (beam-width truncation, top-k subspace lists) and the
//! evaluation metrics (ranked relevance).

/// Indices that would sort `xs` ascending (`NaN`s ordered last via
/// `total_cmp`). Stable, so equal values keep their original order.
///
/// ```
/// use anomex_stats::rank::argsort;
/// assert_eq!(argsort(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
/// ```
#[must_use]
pub fn argsort(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    idx
}

/// Indices that would sort `xs` descending; stable.
#[must_use]
pub fn argsort_desc(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[b].total_cmp(&xs[a]));
    idx
}

/// The `k` indices with the largest values, ordered descending by value.
/// Returns all indices when `k ≥ len`.
#[must_use]
pub fn top_k_desc(xs: &[f64], k: usize) -> Vec<usize> {
    let mut idx = argsort_desc(xs);
    idx.truncate(k);
    idx
}

/// The `k` indices with the smallest values, ordered ascending by value.
/// Returns all indices when `k ≥ len`. Used for k-nearest-neighbour
/// selection; uses a partial select to stay `O(n + k log k)`.
#[must_use]
pub fn bottom_k_asc(xs: &[f64], k: usize) -> Vec<usize> {
    let n = xs.len();
    if k == 0 {
        return Vec::new();
    }
    if k >= n {
        return argsort(xs);
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.select_nth_unstable_by(k - 1, |&a, &b| xs[a].total_cmp(&xs[b]));
    idx.truncate(k);
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    idx
}

/// The `k` indices with the smallest values among all indices except
/// `exclude`, ordered ascending by value with ties broken by index.
///
/// This is the self-excluding selection of the kNN kernels: the distance
/// buffer of row `i` contains a `d(i, i) = 0` entry, and excluding it
/// *by index* keeps the buffer shareable (no `f64::INFINITY` sentinel
/// writes that would prevent reuse across rows or kernels). The explicit
/// index tie-break makes neighbour identities deterministic under exact
/// distance ties (duplicate rows), independent of selection internals.
///
/// Returns all non-excluded indices when `k ≥ len − 1`, and an empty
/// vector when `k == 0` or `xs` is empty — callers asking for zero
/// neighbours get zero neighbours, never a panic from the `k - 1`
/// partial-select pivot.
///
/// ```
/// use anomex_stats::rank::bottom_k_asc_excluding;
/// let d = [0.0, 4.0, 1.0, 4.0];
/// assert_eq!(bottom_k_asc_excluding(&d, 2, 0), vec![2, 1]);
/// ```
#[must_use]
pub fn bottom_k_asc_excluding(xs: &[f64], k: usize, exclude: usize) -> Vec<usize> {
    let n = xs.len();
    if k == 0 || n == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..n).filter(|&i| i != exclude).collect();
    let cmp = |a: &usize, b: &usize| xs[*a].total_cmp(&xs[*b]).then_with(|| a.cmp(b));
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_by(cmp);
    idx
}

/// Zero-based rank of each element when sorted descending
/// (rank 0 = largest). Ties broken by original index (stable).
#[must_use]
pub fn ranks_desc(xs: &[f64]) -> Vec<usize> {
    let order = argsort_desc(xs);
    let mut ranks = vec![0usize; xs.len()];
    for (rank, &i) in order.iter().enumerate() {
        ranks[i] = rank;
    }
    ranks
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn argsort_sorts() {
        let xs = [5.0, -1.0, 3.5, 0.0];
        assert_eq!(argsort(&xs), vec![1, 3, 2, 0]);
        assert_eq!(argsort_desc(&xs), vec![0, 2, 3, 1]);
    }

    #[test]
    fn argsort_is_stable_for_ties() {
        let xs = [1.0, 2.0, 1.0, 2.0];
        assert_eq!(argsort(&xs), vec![0, 2, 1, 3]);
        assert_eq!(argsort_desc(&xs), vec![1, 3, 0, 2]);
    }

    #[test]
    fn top_k_desc_basic() {
        let xs = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_desc(&xs, 2), vec![1, 3]);
        assert_eq!(top_k_desc(&xs, 10), vec![1, 3, 2, 0]);
        assert!(top_k_desc(&xs, 0).is_empty());
    }

    #[test]
    fn bottom_k_matches_full_sort_prefix() {
        let xs: Vec<f64> = (0..57).map(|i| ((i * 37) % 57) as f64).collect();
        for k in [1, 5, 20, 56, 57, 60] {
            let fast = bottom_k_asc(&xs, k);
            let slow: Vec<usize> = argsort(&xs).into_iter().take(k).collect();
            assert_eq!(fast, slow, "k = {k}");
        }
    }

    #[test]
    fn bottom_k_zero_is_empty() {
        assert!(bottom_k_asc(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn bottom_k_excluding_skips_the_index() {
        let xs = [0.0, 3.0, 1.0, 2.0];
        for k in 1..=4 {
            let got = bottom_k_asc_excluding(&xs, k, 0);
            assert!(!got.contains(&0), "k = {k}");
            let want: Vec<usize> = vec![2, 3, 1].into_iter().take(k).collect();
            assert_eq!(got, want, "k = {k}");
        }
    }

    #[test]
    fn bottom_k_excluding_zero_k_and_empty_input_are_empty() {
        // k = 0 must return empty (and not hit the `k - 1` pivot).
        assert!(bottom_k_asc_excluding(&[1.0, 2.0, 3.0], 0, 1).is_empty());
        // Empty input, with and without k.
        assert!(bottom_k_asc_excluding(&[], 0, 0).is_empty());
        assert!(bottom_k_asc_excluding(&[], 3, 0).is_empty());
        // Degenerate single element that is also excluded.
        assert!(bottom_k_asc_excluding(&[5.0], 2, 0).is_empty());
    }

    #[test]
    fn bottom_k_excluding_breaks_ties_by_index() {
        let xs = [0.0, 0.0, 0.0, 0.0];
        assert_eq!(bottom_k_asc_excluding(&xs, 2, 1), vec![0, 2]);
        assert_eq!(bottom_k_asc_excluding(&xs, 10, 1), vec![0, 2, 3]);
    }

    #[test]
    fn ranks_desc_basic() {
        let xs = [0.2, 0.9, 0.4];
        assert_eq!(ranks_desc(&xs), vec![2, 0, 1]);
    }

    #[test]
    fn nan_sorts_deterministically() {
        let xs = [1.0, f64::NAN, 0.0];
        // total_cmp places NaN above all numbers for positive NaN bit pattern.
        let order = argsort(&xs);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], 2);
        assert_eq!(order[1], 0);
    }
}
