//! Two-sample Kolmogorov–Smirnov test.
//!
//! HiCS (paper §2.3, footnote 2) can use either Welch's t-test or the KS
//! test to measure the contrast between the marginal and the conditioned
//! distribution of a feature inside a subspace slice. The KS statistic is
//! the supremum distance between the two empirical CDFs; the p-value uses
//! the asymptotic Kolmogorov distribution with the Stephens small-sample
//! correction (Numerical Recipes `kstwo`).

use crate::{Result, StatsError};

/// Outcome of a two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// Supremum distance `D = sup_x |F_a(x) − F_b(x)| ∈ [0, 1]`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value.
    pub p_value: f64,
}

/// Runs the two-sample KS test under the null hypothesis that both samples
/// originate from the same underlying distribution.
///
/// ```
/// use anomex_stats::tests::ks::ks_two_sample;
/// let a = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
/// let b = [1.1, 1.2, 1.3, 1.4, 1.5, 1.6];
/// let r = ks_two_sample(&a, &b).unwrap();
/// assert_eq!(r.statistic, 1.0); // completely separated samples
/// assert!(r.p_value < 0.01);
/// ```
///
/// # Errors
/// * [`StatsError::InsufficientData`] when either sample is empty.
/// * [`StatsError::NonFinite`] when any observation is NaN/∞.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<KsResult> {
    for s in [a, b] {
        if s.is_empty() {
            return Err(StatsError::InsufficientData {
                what: "ks_two_sample",
                needed: 1,
                got: 0,
            });
        }
        if s.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::NonFinite {
                what: "ks_two_sample",
            });
        }
    }

    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);

    let (na, nb) = (sa.len(), sb.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    // Merge-walk both sorted samples, tracking the ECDF gap at each step.
    while ia < na && ib < nb {
        let xa = sa[ia];
        let xb = sb[ib];
        let x = xa.min(xb);
        while ia < na && sa[ia] <= x {
            ia += 1;
        }
        while ib < nb && sb[ib] <= x {
            ib += 1;
        }
        let fa = ia as f64 / na as f64;
        let fb = ib as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }

    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Ok(KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    })
}

/// Kolmogorov survival function
/// `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²)`, clamped into `[0, 1]`.
#[must_use]
pub fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    let mut prev_term = f64::INFINITY;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        // Converged: alternating series with rapidly decaying terms.
        if term <= 1e-12 * sum.abs() || term >= prev_term {
            break;
        }
        prev_term = term;
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = ks_two_sample(&a, &a).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn disjoint_samples_have_full_distance() {
        let a = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
        let b = [10.0, 10.1, 10.2, 10.3, 10.4, 10.5, 10.6, 10.7];
        let r = ks_two_sample(&a, &b).unwrap();
        assert_eq!(r.statistic, 1.0);
        assert!(r.p_value < 1e-3);
    }

    #[test]
    fn statistic_symmetric_in_order() {
        let a = [0.3, 1.0, 2.2, 0.9, 1.4];
        let b = [0.5, 1.9, 2.5, 3.3];
        let ab = ks_two_sample(&a, &b).unwrap();
        let ba = ks_two_sample(&b, &a).unwrap();
        assert_eq!(ab.statistic, ba.statistic);
        assert_eq!(ab.p_value, ba.p_value);
    }

    #[test]
    fn known_statistic_interleaved() {
        // ECDF gap of these interleaved samples is exactly 0.5:
        // after 1,2 (a) the gap is 2/4 - 0/4.
        let a = [1.0, 2.0, 5.0, 6.0];
        let b = [3.0, 4.0, 7.0, 8.0];
        let r = ks_two_sample(&a, &b).unwrap();
        assert!((r.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ties_are_handled() {
        let a = [1.0, 1.0, 1.0, 2.0];
        let b = [1.0, 2.0, 2.0, 2.0];
        let r = ks_two_sample(&a, &b).unwrap();
        // F_a(1) = 0.75, F_b(1) = 0.25 → D = 0.5
        assert!((r.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_rejected() {
        assert!(ks_two_sample(&[], &[1.0]).is_err());
        assert!(ks_two_sample(&[1.0], &[]).is_err());
    }

    #[test]
    fn nan_rejected() {
        assert!(ks_two_sample(&[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn kolmogorov_q_properties() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(10.0) < 1e-12);
        // Known value: Q(1.0) ≈ 0.26999967 (Kolmogorov distribution).
        assert!((kolmogorov_q(1.0) - 0.269_999_67).abs() < 1e-6);
        // Monotone decreasing.
        let mut prev = 1.0;
        for i in 1..60 {
            let q = kolmogorov_q(i as f64 * 0.05);
            // Allow tiny numerical wiggle from the truncated theta series
            // near the λ → 0 clamp.
            assert!(q <= prev + 1e-9);
            prev = q;
        }
    }

    #[test]
    fn p_value_shrinks_with_separation() {
        let base: Vec<f64> = (0..40).map(|i| i as f64 * 0.1).collect();
        let mut last_p = 1.1;
        for shift in [0.5_f64, 1.5, 3.0] {
            let shifted: Vec<f64> = base.iter().map(|x| x + shift).collect();
            let r = ks_two_sample(&base, &shifted).unwrap();
            assert!(r.p_value <= last_p);
            last_p = r.p_value;
        }
    }
}
