//! Welch's two-sample t-test for unequal variances and sample sizes
//! (B. L. Welch, *Biometrika* 1938 — reference [46] of the paper).
//!
//! RefOut uses this test to quantify the discrepancy between the
//! outlyingness-score populations of random subspaces that do / do not
//! contain a candidate feature set, and HiCS uses it (by default) as the
//! slice-contrast measure.

use crate::descriptive::OnlineMoments;
use crate::dist::StudentT;
use crate::{Result, StatsError};

/// Outcome of a Welch t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchResult {
    /// The t statistic (signed: positive when `mean(a) > mean(b)`).
    pub statistic: f64,
    /// Welch–Satterthwaite effective degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of the first sample.
    pub mean_a: f64,
    /// Mean of the second sample.
    pub mean_b: f64,
}

/// Runs Welch's two-sample t-test on samples `a` and `b` under the null
/// hypothesis that both population means are equal.
///
/// ```
/// use anomex_stats::tests::welch::welch_t_test;
/// // scipy.stats.ttest_ind(a, b, equal_var=False)
/// let a = [27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4];
/// let b = [27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 19.8, 20.5, 17.3, 22.6, 29.9, 25.3];
/// let r = welch_t_test(&a, &b).unwrap();
/// assert!((r.statistic - (-2.4042)).abs() < 1e-3);
/// assert!((r.p_value - 0.0221).abs() < 1e-3);
/// ```
///
/// # Errors
/// * [`StatsError::InsufficientData`] if either sample has fewer than two
///   observations.
/// * [`StatsError::NonFinite`] if any observation is NaN/∞.
/// * [`StatsError::InvalidParameter`] if both samples have zero variance
///   *and* different means (the statistic is infinite); callers that want
///   a neutral fallback should use [`crate::tests::TwoSampleTest::run`].
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<WelchResult> {
    for (name, s) in [("first", a), ("second", b)] {
        if s.len() < 2 {
            let _ = name;
            return Err(StatsError::InsufficientData {
                what: "welch_t_test",
                needed: 2,
                got: s.len(),
            });
        }
        if s.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::NonFinite {
                what: "welch_t_test",
            });
        }
    }

    let mut ma = OnlineMoments::new();
    ma.extend(a);
    let mut mb = OnlineMoments::new();
    mb.extend(b);

    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (va, vb) = (ma.sample_variance(), mb.sample_variance());
    let sa2 = va / na; // squared standard error contributions
    let sb2 = vb / nb;
    let se2 = sa2 + sb2;

    if se2 == 0.0 {
        // Both samples constant.
        if ma.mean() == mb.mean() {
            return Ok(WelchResult {
                statistic: 0.0,
                df: na + nb - 2.0,
                p_value: 1.0,
                mean_a: ma.mean(),
                mean_b: mb.mean(),
            });
        }
        return Err(StatsError::InvalidParameter {
            what: "welch_t_test",
            detail: "both samples constant with different means: infinite statistic",
        });
    }

    let t = (ma.mean() - mb.mean()) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / (sa2 * sa2 / (na - 1.0) + sb2 * sb2 / (nb - 1.0));
    let dist = StudentT::new(df)?;
    Ok(WelchResult {
        statistic: t,
        df,
        p_value: dist.two_sided_p(t),
        mean_a: ma.mean(),
        mean_b: mb.mean(),
    })
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    /// Reference case: scipy.stats.ttest_ind(equal_var=False).
    #[test]
    fn scipy_reference_case() {
        let a = [3.0, 4.0, 1.0, 2.1, 3.3];
        let b = [4.9, 5.4, 6.1, 5.8, 7.0, 5.5];
        let r = welch_t_test(&a, &b).unwrap();
        // scipy: statistic = -5.203554, pvalue = 0.0016140, df ≈ 6.44362
        assert!(
            (r.statistic + 5.203_554).abs() < 1e-5,
            "t = {}",
            r.statistic
        );
        assert!((r.p_value - 0.001_614_0).abs() < 1e-6, "p = {}", r.p_value);
        assert!((r.df - 6.443_62).abs() < 1e-4, "df = {}", r.df);
    }

    #[test]
    fn identical_samples_yield_zero_statistic() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = welch_t_test(&a, &a).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn antisymmetric_in_sample_order() {
        let a = [1.0, 2.5, 0.7, 1.9];
        let b = [5.0, 4.2, 6.1];
        let ab = welch_t_test(&a, &b).unwrap();
        let ba = welch_t_test(&b, &a).unwrap();
        assert!((ab.statistic + ba.statistic).abs() < 1e-12);
        assert!((ab.p_value - ba.p_value).abs() < 1e-12);
        assert!((ab.df - ba.df).abs() < 1e-12);
    }

    #[test]
    fn constant_samples() {
        // Equal constants: neutral result.
        let r = welch_t_test(&[5.0, 5.0, 5.0], &[5.0, 5.0]).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.p_value, 1.0);
        // Different constants: infinite evidence → error.
        assert!(welch_t_test(&[5.0, 5.0], &[6.0, 6.0]).is_err());
    }

    #[test]
    fn small_samples_rejected() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(welch_t_test(&[], &[]).is_err());
    }

    #[test]
    fn nan_rejected() {
        assert!(welch_t_test(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn larger_separation_means_smaller_p() {
        let base = [0.0, 0.1, -0.1, 0.05, -0.05, 0.2];
        let mut last_p = 1.1;
        for shift in [0.5, 1.0, 2.0, 4.0] {
            let shifted: Vec<f64> = base.iter().map(|x| x + shift).collect();
            let r = welch_t_test(&base, &shifted).unwrap();
            assert!(r.p_value < last_p, "p should shrink as separation grows");
            last_p = r.p_value;
        }
    }
}
