//! Two-sample hypothesis tests.
//!
//! The explanation algorithms use these tests as *discrepancy measures*
//! over populations of outlyingness scores (RefOut, paper §2.2) or over
//! raw feature values in subspace slices (HiCS, paper §2.3, footnote 2):
//!
//! * [`welch`] — Welch's unequal-variance t-test;
//! * [`ks`] — the two-sample Kolmogorov–Smirnov test.

pub mod ks;
pub mod welch;

/// Which two-sample test a consumer (e.g. HiCS) should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TwoSampleTest {
    /// Welch's unequal-variance t-test (the paper's default).
    #[default]
    Welch,
    /// Two-sample Kolmogorov–Smirnov test.
    KolmogorovSmirnov,
}

impl TwoSampleTest {
    /// Runs the chosen test and returns `(statistic, p_value)`.
    ///
    /// Degenerate inputs (samples too small or with zero variance where
    /// the test is undefined) yield `(0.0, 1.0)` — "no evidence of
    /// discrepancy" — which is the robust behaviour the Monte-Carlo loops
    /// of HiCS and the feature scans of RefOut need.
    #[must_use]
    pub fn run(self, a: &[f64], b: &[f64]) -> (f64, f64) {
        match self {
            TwoSampleTest::Welch => match welch::welch_t_test(a, b) {
                Ok(r) => (r.statistic.abs(), r.p_value),
                Err(_) => (0.0, 1.0),
            },
            TwoSampleTest::KolmogorovSmirnov => match ks::ks_two_sample(a, b) {
                Ok(r) => (r.statistic, r.p_value),
                Err(_) => (0.0, 1.0),
            },
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn dispatch_matches_direct_calls() {
        let a = [0.1, 0.4, 0.35, 0.8, 0.2, 0.6];
        let b = [1.1, 1.4, 1.35, 1.8, 1.2, 1.6];
        let (tw, pw) = TwoSampleTest::Welch.run(&a, &b);
        let direct = welch::welch_t_test(&a, &b).unwrap();
        assert!((tw - direct.statistic.abs()).abs() < 1e-14);
        assert!((pw - direct.p_value).abs() < 1e-14);

        let (tk, pk) = TwoSampleTest::KolmogorovSmirnov.run(&a, &b);
        let direct = ks::ks_two_sample(&a, &b).unwrap();
        assert!((tk - direct.statistic).abs() < 1e-14);
        assert!((pk - direct.p_value).abs() < 1e-14);
    }

    #[test]
    fn degenerate_inputs_are_neutral() {
        assert_eq!(TwoSampleTest::Welch.run(&[], &[1.0]), (0.0, 1.0));
        assert_eq!(
            TwoSampleTest::KolmogorovSmirnov.run(&[1.0], &[]),
            (0.0, 1.0)
        );
        // zero variance in both samples with equal means → neutral
        let (t, p) = TwoSampleTest::Welch.run(&[2.0, 2.0], &[2.0, 2.0]);
        assert_eq!((t, p), (0.0, 1.0));
    }
}
