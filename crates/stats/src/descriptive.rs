//! Descriptive statistics: batch and streaming moments, quantiles and
//! z-score standardization.
//!
//! The explanation algorithms standardize per-subspace outlyingness scores
//! with a z-score (paper §2.2) to remove dimensionality bias, and RefOut
//! compares score populations by their first two moments; this module is
//! the single implementation both rely on.

use crate::{Result, StatsError};

/// Numerically stable streaming estimator of mean and variance
/// (Welford's algorithm).
///
/// Merging two accumulators with [`OnlineMoments::merge`] uses the
/// parallel variant of the update, so the estimator can be used with
/// chunked/parallel scans.
///
/// ```
/// use anomex_stats::descriptive::OnlineMoments;
/// let mut m = OnlineMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineMoments {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Adds every observation in `xs`.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merges another accumulator into this one (Chan et al. parallel update).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
    }

    /// Number of observations seen so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.n as usize
    }

    /// Arithmetic mean; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by `n`); `0.0` when fewer than one observation.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divide by `n - 1`); `0.0` when fewer than two observations.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }
}

/// Immutable five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample variance (n − 1 denominator).
    pub variance: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a non-empty, finite sample.
    ///
    /// # Errors
    /// Returns [`StatsError::InsufficientData`] for an empty slice and
    /// [`StatsError::NonFinite`] if any value is NaN/∞.
    pub fn of(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::InsufficientData {
                what: "Summary::of",
                needed: 1,
                got: 0,
            });
        }
        let mut m = OnlineMoments::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            if !x.is_finite() {
                return Err(StatsError::NonFinite {
                    what: "Summary::of",
                });
            }
            m.push(x);
            min = min.min(x);
            max = max.max(x);
        }
        Ok(Summary {
            n: xs.len(),
            mean: m.mean(),
            variance: m.sample_variance(),
            min,
            max,
        })
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Arithmetic mean of a slice; `0.0` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (n − 1 denominator); `0.0` for fewer than two values.
#[must_use]
pub fn sample_variance(xs: &[f64]) -> f64 {
    let mut m = OnlineMoments::new();
    m.extend(xs);
    m.sample_variance()
}

/// Population variance (n denominator); `0.0` for an empty slice.
#[must_use]
pub fn population_variance(xs: &[f64]) -> f64 {
    let mut m = OnlineMoments::new();
    m.extend(xs);
    m.population_variance()
}

/// Median of a sample (average of the two central order statistics for
/// even-length input).
///
/// # Errors
/// Returns [`StatsError::InsufficientData`] for an empty slice.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Linear-interpolated quantile `q ∈ [0, 1]` (type-7, the numpy default).
///
/// # Errors
/// Returns [`StatsError::InsufficientData`] for an empty slice and
/// [`StatsError::InvalidParameter`] when `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData {
            what: "quantile",
            needed: 1,
            got: 0,
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            what: "quantile",
            detail: "q must lie in [0, 1]",
        });
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let h = q * (v.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Ok(v[lo] + (v[hi] - v[lo]) * frac)
}

/// Z-score of a single value against a population described by its mean
/// and standard deviation.
///
/// When `std` is zero (degenerate population) the z-score is defined as
/// `0.0`: every value is "at the mean" of a constant population. This is
/// the convention the explanation algorithms rely on so that constant
/// score vectors never dominate a ranking.
#[must_use]
pub fn zscore(x: f64, mean: f64, std: f64) -> f64 {
    if std > 0.0 && std.is_finite() {
        (x - mean) / std
    } else {
        0.0
    }
}

/// Standardizes a whole sample in place: `x ← (x − mean) / std`
/// (population std). A constant sample becomes all zeros.
pub fn standardize(xs: &mut [f64]) {
    let mut m = OnlineMoments::new();
    m.extend(xs);
    let mu = m.mean();
    let sd = m.population_std();
    for x in xs.iter_mut() {
        *x = zscore(*x, mu, sd);
    }
}

/// Min-max scales a sample into `[0, 1]` in place. A constant sample
/// becomes all `0.5`.
pub fn min_max_scale(xs: &mut [f64]) {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs.iter() {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let range = hi - lo;
    for x in xs.iter_mut() {
        *x = if range > 0.0 { (*x - lo) / range } else { 0.5 };
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.5, -2.0, 3.25, 0.0, 8.5, -1.25, 4.0];
        let mu = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        let mut m = OnlineMoments::new();
        m.extend(&xs);
        assert!((m.mean() - mu).abs() < 1e-12);
        assert!((m.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineMoments::new();
        whole.extend(&xs);
        let mut a = OnlineMoments::new();
        let mut b = OnlineMoments::new();
        a.extend(&xs[..37]);
        b.extend(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineMoments::new();
        a.extend(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&OnlineMoments::new());
        assert_eq!(a, before);
        let mut empty = OnlineMoments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(matches!(
            Summary::of(&[]),
            Err(StatsError::InsufficientData { .. })
        ));
        assert!(matches!(
            Summary::of(&[1.0, f64::NAN]),
            Err(StatsError::NonFinite { .. })
        ));
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(s.n, 3);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
        assert!(median(&[]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 1.0 / 3.0).unwrap() - 2.0).abs() < 1e-12);
        assert!(quantile(&xs, 1.5).is_err());
    }

    #[test]
    fn zscore_degenerate_population_is_zero() {
        assert_eq!(zscore(5.0, 5.0, 0.0), 0.0);
        assert_eq!(zscore(100.0, 5.0, 0.0), 0.0);
        assert_eq!(zscore(7.0, 5.0, 2.0), 1.0);
    }

    #[test]
    fn standardize_gives_zero_mean_unit_var() {
        let mut xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.7 - 3.0).collect();
        standardize(&mut xs);
        let mut m = OnlineMoments::new();
        m.extend(&xs);
        assert!(m.mean().abs() < 1e-12);
        assert!((m.population_variance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_scale_bounds() {
        let mut xs = vec![-3.0, 0.0, 9.0];
        min_max_scale(&mut xs);
        assert_eq!(xs[0], 0.0);
        assert_eq!(xs[2], 1.0);
        let mut flat = vec![4.0; 5];
        min_max_scale(&mut flat);
        assert!(flat.iter().all(|&x| x == 0.5));
    }
}
