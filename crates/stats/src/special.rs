//! Special functions: `ln Γ`, the regularized incomplete beta function and
//! the error function.
//!
//! These are the numerical kernels behind the Student-t CDF (Welch's
//! t-test) and the normal CDF, implemented from the classic Lanczos and
//! Lentz continued-fraction recipes (Numerical Recipes §6) and validated
//! against high-precision reference values in the unit tests.

/// Natural log of the gamma function for `x > 0` (Lanczos approximation,
/// g = 7, n = 9 coefficients; relative error below 1e-13 over the domain
/// used by the tests in this crate).
///
/// ```
/// use anomex_stats::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-12);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11); // Γ(5) = 24
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`, evaluated with the Lentz continued fraction.
///
/// This is the workhorse behind the Student-t CDF: for t-distributed `T`
/// with `ν` degrees of freedom, `P(T ≤ t) = 1 − I_{ν/(ν+t²)}(ν/2, 1/2)/2`
/// for `t ≥ 0`.
#[must_use]
pub fn beta_inc_reg(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0, "beta_inc_reg requires a, b > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1−x)^b / (a B(a, b)).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // The continued fraction converges quickly for x < (a+1)/(a+b+2);
    // use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) otherwise.
    if x <= (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - beta_inc_reg(b, a, 1.0 - x)
    }
}

/// Modified Lentz evaluation of the continued fraction for the incomplete
/// beta function (Numerical Recipes `betacf`).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3.0e-16;
    const FPMIN: f64 = 1.0e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function `erf(x)` with absolute error below `1.5e-7`
/// (Abramowitz & Stegun 7.1.26 rational approximation, made odd by
/// reflection).
#[must_use]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Uses the Chebyshev-fitted expansion from Numerical Recipes (`erfcc`)
/// with relative error everywhere below `1.2e-7`, which is ample for the
/// p-value comparisons performed by the explanation algorithms.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    /// Reference values computed with mpmath (50 digits).
    #[test]
    fn ln_gamma_reference_values() {
        let cases = [
            (0.5, 0.572_364_942_924_700_1), // ln √π
            (1.0, 0.0),
            (1.5, -0.120_782_237_635_245_22),
            (2.0, 0.0),
            (3.0, std::f64::consts::LN_2),  // Γ(3) = 2
            (10.0, 12.801_827_480_081_469), // ln 362880
            (100.0, 359.134_205_369_575_4),
            (0.1, 2.252_712_651_734_206),
        ];
        for (x, want) in cases {
            let got = ln_gamma(x);
            assert!(
                (got - want).abs() < 1e-10 * want.abs().max(1.0),
                "ln_gamma({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn beta_inc_reference_values() {
        // Reference values from scipy.special.betainc.
        let cases = [
            (2.0, 3.0, 0.5, 0.6875),
            (0.5, 0.5, 0.25, 1.0 / 3.0), // I_{1/4}(1/2,1/2) = 1/3 (arcsine law)
            (5.0, 5.0, 0.5, 0.5),
            (1.0, 1.0, 0.42, 0.42), // uniform CDF
            (10.0, 2.0, 0.9, 0.697_356_880_199_999_2),
        ];
        for (a, b, x, want) in cases {
            let got = beta_inc_reg(a, b, x);
            assert!(
                (got - want).abs() < 1e-9,
                "betainc({a},{b},{x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn beta_inc_bounds_and_monotonicity() {
        assert_eq!(beta_inc_reg(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc_reg(2.0, 3.0, 1.0), 1.0);
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            let v = beta_inc_reg(3.5, 1.25, x);
            assert!(v >= prev, "betainc must be non-decreasing in x");
            assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn beta_symmetry() {
        // I_x(a, b) = 1 − I_{1−x}(b, a)
        for &(a, b, x) in &[(2.0, 7.0, 0.3), (0.7, 0.9, 0.6), (4.0, 4.0, 0.2)] {
            let lhs = beta_inc_reg(a, b, x);
            let rhs = 1.0 - beta_inc_reg(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_reference_values() {
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
            (-1.0, -0.842_700_792_949_714_9),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
        }
    }

    #[test]
    fn erfc_is_complement() {
        for i in -30..=30 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }
}
