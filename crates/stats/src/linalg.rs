//! Small dense linear algebra: Cholesky solves and ordinary least
//! squares — the numerical kernel of the surrogate (predictive)
//! explainer.

use crate::{Result, StatsError};

/// A dense symmetric positive-definite solve `A x = b` via Cholesky
/// decomposition (`A` row-major, `n × n`).
///
/// # Errors
/// [`StatsError::InvalidParameter`] when `A` is not SPD (within
/// tolerance) or shapes mismatch.
pub fn cholesky_solve(a: &[f64], n: usize, b: &[f64]) -> Result<Vec<f64>> {
    if a.len() != n * n || b.len() != n {
        return Err(StatsError::InvalidParameter {
            what: "cholesky_solve",
            detail: "shape mismatch",
        });
    }
    // Decompose A = L Lᵀ.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(StatsError::InvalidParameter {
                        what: "cholesky_solve",
                        detail: "matrix is not positive definite",
                    });
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution L y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution Lᵀ x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

/// Ordinary least squares with intercept: fits `y ≈ β₀ + Σ βⱼ xⱼ` over
/// the selected columns. Returns the coefficient vector
/// `[β₀, β₁, …]` and the in-sample R².
///
/// A tiny ridge term (`1e-9` on the diagonal) keeps collinear feature
/// sets solvable — exactly the situation the explainer's greedy
/// selection creates when it probes correlated features.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFit {
    /// `[intercept, coef_1, …, coef_k]` aligned with the input columns.
    pub coefficients: Vec<f64>,
    /// In-sample coefficient of determination ∈ (−∞, 1].
    pub r_squared: f64,
}

/// Fits OLS of `y` on `columns` (each a slice of length `y.len()`).
///
/// # Errors
/// [`StatsError::InsufficientData`] with fewer than `k + 2` rows, or a
/// Cholesky failure on a degenerate design.
pub fn least_squares(columns: &[&[f64]], y: &[f64]) -> Result<LinearFit> {
    let n = y.len();
    let k = columns.len();
    if n < k + 2 {
        return Err(StatsError::InsufficientData {
            what: "least_squares",
            needed: k + 2,
            got: n,
        });
    }
    for c in columns {
        if c.len() != n {
            return Err(StatsError::InvalidParameter {
                what: "least_squares",
                detail: "column length mismatch",
            });
        }
    }
    let p = k + 1; // + intercept
                   // Normal equations XᵀX β = Xᵀy with X = [1 | columns].
    let mut xtx = vec![0.0f64; p * p];
    let mut xty = vec![0.0f64; p];
    let col = |j: usize, i: usize| -> f64 {
        if j == 0 {
            1.0
        } else {
            columns[j - 1][i]
        }
    };
    for a in 0..p {
        for b in a..p {
            let mut s = 0.0;
            for i in 0..n {
                s += col(a, i) * col(b, i);
            }
            xtx[a * p + b] = s;
            xtx[b * p + a] = s;
        }
        let mut s = 0.0;
        for (i, &yi) in y.iter().enumerate() {
            s += col(a, i) * yi;
        }
        xty[a] = s;
    }
    // Tiny ridge for numerical robustness under collinearity.
    for a in 0..p {
        xtx[a * p + a] += 1e-9 * (1.0 + xtx[a * p + a].abs());
    }
    let beta = cholesky_solve(&xtx, p, &xty)?;

    // R².
    let mean_y = y.iter().sum::<f64>() / n as f64;
    let mut ss_tot = 0.0;
    let mut ss_res = 0.0;
    for (i, &yi) in y.iter().enumerate() {
        let mut pred = beta[0];
        for (j, &bj) in beta.iter().enumerate().skip(1) {
            pred += bj * col(j, i);
        }
        ss_res += (yi - pred).powi(2);
        ss_tot += (yi - mean_y).powi(2);
    }
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        0.0
    };
    Ok(LinearFit {
        coefficients: beta,
        r_squared,
    })
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2]
        let a = [4.0, 2.0, 2.0, 3.0];
        let x = cholesky_solve(&a, 2, &[10.0, 9.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = [1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        assert!(cholesky_solve(&a, 2, &[1.0, 1.0]).is_err());
        assert!(cholesky_solve(&a, 3, &[1.0, 1.0]).is_err()); // shape
    }

    #[test]
    fn ols_recovers_exact_linear_relation() {
        let x1: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let x2: Vec<f64> = (0..50).map(|i| ((i * 7) % 13) as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| 2.0 + 3.0 * x1[i] - 0.5 * x2[i]).collect();
        let fit = least_squares(&[&x1, &x2], &y).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-6);
        assert!((fit.coefficients[1] - 3.0).abs() < 1e-6);
        assert!((fit.coefficients[2] + 0.5).abs() < 1e-6);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn ols_r_squared_zero_for_irrelevant_feature() {
        // y independent of x: R² near 0 (tiny positive from fitting noise).
        let x: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let y: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = least_squares(&[&x], &y).unwrap();
        assert!(fit.r_squared.abs() < 0.05, "r2 = {}", fit.r_squared);
    }

    #[test]
    fn ols_handles_collinear_columns() {
        let x1: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let x2 = x1.clone(); // perfectly collinear
        let y: Vec<f64> = x1.iter().map(|v| 2.0 * v + 1.0).collect();
        let fit = least_squares(&[&x1, &x2], &y).unwrap();
        // Prediction quality is what matters, not coefficient identity.
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn ols_needs_enough_rows() {
        let x = [1.0, 2.0];
        let y = [1.0, 2.0];
        assert!(least_squares(&[&x], &y).is_err());
    }
}
