//! Probability distributions needed by the hypothesis tests: the standard
//! normal and Student-t distributions.

pub mod normal;
pub mod student_t;

pub use normal::Normal;
pub use student_t::StudentT;
