//! Student's t-distribution, required by Welch's two-sample test.

use crate::special::beta_inc_reg;
use crate::{Result, StatsError};

/// Student's t-distribution with `ν` (possibly fractional) degrees of
/// freedom.
///
/// Fractional degrees of freedom matter here because Welch's test uses the
/// Welch–Satterthwaite approximation, which produces non-integer `ν`.
///
/// ```
/// use anomex_stats::dist::StudentT;
/// let t = StudentT::new(10.0).unwrap();
/// assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Creates the distribution.
    ///
    /// # Errors
    /// [`StatsError::InvalidParameter`] unless `df` is finite and `> 0`.
    pub fn new(df: f64) -> Result<Self> {
        if !(df > 0.0 && df.is_finite()) {
            return Err(StatsError::InvalidParameter {
                what: "StudentT::new",
                detail: "degrees of freedom must be finite and > 0",
            });
        }
        Ok(StudentT { df })
    }

    /// Degrees of freedom.
    #[must_use]
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Cumulative distribution function `P(T ≤ t)` via the regularized
    /// incomplete beta function:
    ///
    /// `P(T ≤ t) = 1 − I_x(ν/2, 1/2) / 2` with `x = ν / (ν + t²)` for
    /// `t ≥ 0`, and by symmetry for `t < 0`.
    #[must_use]
    pub fn cdf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.df / (self.df + t * t);
        let tail = 0.5 * beta_inc_reg(0.5 * self.df, 0.5, x);
        if t > 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Two-sided p-value for an observed statistic `t`:
    /// `P(|T| ≥ |t|) = I_x(ν/2, 1/2)` with `x = ν/(ν + t²)`.
    #[must_use]
    pub fn two_sided_p(&self, t: f64) -> f64 {
        if !t.is_finite() {
            return 0.0; // infinitely extreme statistic
        }
        let x = self.df / (self.df + t * t);
        beta_inc_reg(0.5 * self.df, 0.5, x).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    /// Reference values from scipy.stats.t.cdf.
    #[test]
    fn cdf_reference_values() {
        let cases = [
            // (df, t, cdf)
            (1.0, 1.0, 0.75), // Cauchy: arctan form
            (1.0, 0.0, 0.5),
            (2.0, 1.0, 0.788_675_134_594_812_6),
            (5.0, 2.0, 0.949_030_260_585_070_8),
            (10.0, -1.5, 0.082_253_663_222_720_1),
            (30.0, 2.042, 0.974_985_664_671_901_2),
            (4.5, 1.2, 0.855_261_472_579_017_4), // fractional df (Welch)
        ];
        for (df, t, want) in cases {
            let d = StudentT::new(df).unwrap();
            let got = d.cdf(t);
            assert!(
                (got - want).abs() < 1e-8,
                "t.cdf(df={df}, t={t}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn symmetry() {
        let d = StudentT::new(7.3).unwrap();
        for i in 0..50 {
            let t = i as f64 * 0.2;
            assert!((d.cdf(t) + d.cdf(-t) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn two_sided_p_matches_cdf_tails() {
        let d = StudentT::new(12.0).unwrap();
        for &t in &[0.5, 1.0, 2.2, 4.0] {
            let want = 2.0 * (1.0 - d.cdf(t));
            assert!((d.two_sided_p(t) - want).abs() < 1e-10);
            // symmetric in the sign of t
            assert!((d.two_sided_p(-t) - d.two_sided_p(t)).abs() < 1e-14);
        }
        assert!((d.two_sided_p(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn converges_to_normal_for_large_df() {
        let d = StudentT::new(1e6).unwrap();
        let n = crate::dist::Normal::standard();
        for &t in &[-2.0, -0.5, 0.7, 1.96] {
            assert!((d.cdf(t) - n.cdf(t)).abs() < 1e-4);
        }
    }

    #[test]
    fn rejects_bad_df() {
        assert!(StudentT::new(0.0).is_err());
        assert!(StudentT::new(-3.0).is_err());
        assert!(StudentT::new(f64::INFINITY).is_err());
    }

    #[test]
    fn infinite_statistic_has_zero_p() {
        let d = StudentT::new(3.0).unwrap();
        assert_eq!(d.two_sided_p(f64::INFINITY), 0.0);
    }
}
