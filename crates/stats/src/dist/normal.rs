//! The normal (Gaussian) distribution.

use crate::special::{erf, erfc};
use crate::{Result, StatsError};

/// A normal distribution `N(mean, std²)`.
///
/// ```
/// use anomex_stats::dist::Normal;
/// let n = Normal::standard();
/// assert!((n.cdf(0.0) - 0.5).abs() < 1e-7);
/// assert!((n.cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// The standard normal `N(0, 1)`.
    #[must_use]
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// A normal with the given mean and standard deviation.
    ///
    /// # Errors
    /// [`StatsError::InvalidParameter`] when `std` is not strictly positive
    /// and finite.
    pub fn new(mean: f64, std: f64) -> Result<Self> {
        if !(std > 0.0 && std.is_finite() && mean.is_finite()) {
            return Err(StatsError::InvalidParameter {
                what: "Normal::new",
                detail: "std must be finite and > 0, mean finite",
            });
        }
        Ok(Normal { mean, std })
    }

    /// The mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    #[must_use]
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Probability density function.
    #[must_use]
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std * std::f64::consts::SQRT_2);
        0.5 * erfc(-z)
    }

    /// Survival function `P(X > x) = 1 − CDF(x)`, computed without the
    /// cancellation of `1 − cdf` in the upper tail.
    #[must_use]
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Quantile (inverse CDF) via bisection on the CDF; accurate to ~1e-10
    /// which is sufficient for threshold selection in the generators.
    ///
    /// # Errors
    /// [`StatsError::InvalidParameter`] when `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0 < p && p < 1.0) {
            return Err(StatsError::InvalidParameter {
                what: "Normal::quantile",
                detail: "p must lie strictly inside (0, 1)",
            });
        }
        // Bracket ±10σ covers p down to ~1e-23.
        let (mut lo, mut hi) = (self.mean - 10.0 * self.std, self.mean + 10.0 * self.std);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * self.std {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

/// Standard-normal CDF convenience wrapper.
#[must_use]
pub fn std_normal_cdf(x: f64) -> f64 {
    Normal::standard().cdf(x)
}

/// Two-sided standard-normal p-value for an observed |z|.
#[must_use]
pub fn two_sided_p_from_z(z: f64) -> f64 {
    let _ = erf; // erf re-exported path used by docs; keep referenced.
    (2.0 * Normal::standard().sf(z.abs())).min(1.0)
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        let n = Normal::standard();
        let cases = [
            (0.0, 0.5),
            (1.0, 0.841_344_746_068_542_9),
            (-1.0, 0.158_655_253_931_457_05),
            (2.0, 0.977_249_868_051_820_8),
            (3.0, 0.998_650_101_968_369_9),
        ];
        for (x, want) in cases {
            assert!((n.cdf(x) - want).abs() < 1e-7, "cdf({x})");
        }
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        let n = Normal::standard();
        assert!((n.pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-12);
        assert!((n.pdf(1.3) - n.pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(2.0, 3.0).unwrap();
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.8, 0.975, 0.999] {
            let x = n.quantile(p).unwrap();
            assert!((n.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
        assert!(n.quantile(0.0).is_err());
        assert!(n.quantile(1.0).is_err());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn sf_complements_cdf() {
        let n = Normal::standard();
        for i in -40..=40 {
            let x = i as f64 * 0.2;
            // Exact complement away from zero (shared |z| evaluation);
            // bounded by the erfc approximation error at z = 0.
            assert!((n.cdf(x) + n.sf(x) - 1.0).abs() < 2e-7);
        }
    }

    #[test]
    fn two_sided_p() {
        assert!((two_sided_p_from_z(0.0) - 1.0).abs() < 1e-12);
        assert!((two_sided_p_from_z(1.959_963_984_540_054) - 0.05).abs() < 1e-6);
        assert!(two_sided_p_from_z(10.0) < 1e-20);
    }
}
