//! The declared lock-ordering manifest behind the `nested-lock` rule.
//!
//! The workspace's sync primitives are classified by (file path
//! substring, receiver field name) into named **lock classes**, and a
//! set of `order` chains declares the only permitted acquisition
//! nesting: a lock may be taken while another is held only when the
//! held lock's class comes strictly earlier in some declared chain
//! (transitively). Everything else — reversed order, unordered pairs,
//! re-acquiring the same class, locks the manifest does not know —
//! is a finding.
//!
//! Manifest syntax (`lock_order.txt`), one directive per line:
//!
//! ```text
//! # comment
//! class <name> <path-substring> <ident>[,<ident>...]
//! order <name> <name> [<name>...]
//! reactorsafe <name> [<name>...]
//! ```
//!
//! `reactorsafe` marks classes whose critical sections are bounded
//! (no I/O, no waiting on other work) and therefore acceptable to
//! acquire on the single-threaded reactor loop; the `reactor-blocking`
//! interprocedural rule flags every other lock acquisition reachable
//! from the event loop.

use std::collections::{BTreeMap, BTreeSet};

/// One lock class declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ClassDecl {
    name: String,
    path_substr: String,
    idents: Vec<String>,
}

/// The parsed manifest: classifications plus the permitted partial order.
#[derive(Debug, Clone, Default)]
pub struct LockOrder {
    classes: Vec<ClassDecl>,
    /// `before` holds every (a, b) pair with a strictly before b,
    /// transitively closed over the declared chains.
    before: BTreeSet<(String, String)>,
    /// Classes declared safe to acquire on the reactor thread.
    reactor_safe: BTreeSet<String>,
}

/// A manifest parse error with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line of the offending directive.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lock-order manifest line {}: {}",
            self.line, self.message
        )
    }
}

impl LockOrder {
    /// Parses a manifest.
    ///
    /// # Errors
    /// On malformed directives, unknown class names in `order` lines, or
    /// contradictory chains (a before b and b before a).
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        let mut classes: Vec<ClassDecl> = Vec::new();
        let mut chains: Vec<(usize, Vec<String>)> = Vec::new();
        let mut safe: Vec<(usize, Vec<String>)> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("class") => {
                    let (Some(name), Some(path), Some(idents)) =
                        (parts.next(), parts.next(), parts.next())
                    else {
                        return Err(ManifestError {
                            line: i + 1,
                            message: "class needs: class <name> <path-substring> <idents>".into(),
                        });
                    };
                    classes.push(ClassDecl {
                        name: name.to_string(),
                        path_substr: path.to_string(),
                        idents: idents.split(',').map(str::to_string).collect(),
                    });
                }
                Some("order") => {
                    let names: Vec<String> = parts.map(str::to_string).collect();
                    if names.len() < 2 {
                        return Err(ManifestError {
                            line: i + 1,
                            message: "order needs at least two class names".into(),
                        });
                    }
                    chains.push((i + 1, names));
                }
                Some("reactorsafe") => {
                    let names: Vec<String> = parts.map(str::to_string).collect();
                    if names.is_empty() {
                        return Err(ManifestError {
                            line: i + 1,
                            message: "reactorsafe needs at least one class name".into(),
                        });
                    }
                    safe.push((i + 1, names));
                }
                Some(other) => {
                    return Err(ManifestError {
                        line: i + 1,
                        message: format!("unknown directive '{other}'"),
                    });
                }
                None => {}
            }
        }
        let known: BTreeSet<&str> = classes.iter().map(|c| c.name.as_str()).collect();
        let mut before: BTreeSet<(String, String)> = BTreeSet::new();
        for (line, chain) in &chains {
            for name in chain {
                if !known.contains(name.as_str()) {
                    return Err(ManifestError {
                        line: *line,
                        message: format!("order references undeclared class '{name}'"),
                    });
                }
            }
            for a in 0..chain.len() {
                for b in a + 1..chain.len() {
                    before.insert((chain[a].clone(), chain[b].clone()));
                }
            }
        }
        // Transitive closure (the class count is tiny).
        loop {
            let mut added = Vec::new();
            for (a, b) in &before {
                for (c, d) in &before {
                    if b == c && !before.contains(&(a.clone(), d.clone())) {
                        added.push((a.clone(), d.clone()));
                    }
                }
            }
            if added.is_empty() {
                break;
            }
            before.extend(added);
        }
        for (a, b) in &before {
            if before.contains(&(b.clone(), a.clone())) {
                return Err(ManifestError {
                    line: 0,
                    message: format!("contradictory order: '{a}' and '{b}' each before the other"),
                });
            }
        }
        let mut reactor_safe = BTreeSet::new();
        for (line, names) in safe {
            for name in names {
                if !known.contains(name.as_str()) {
                    return Err(ManifestError {
                        line,
                        message: format!("reactorsafe references undeclared class '{name}'"),
                    });
                }
                reactor_safe.insert(name);
            }
        }
        Ok(LockOrder {
            classes,
            before,
            reactor_safe,
        })
    }

    /// Classifies a lock acquisition: the class name declared for
    /// (`path`, last identifier of the receiver chain), or `None` when
    /// the manifest does not know this lock.
    #[must_use]
    pub fn classify(&self, path: &str, receiver_last: &str) -> Option<&str> {
        self.classes
            .iter()
            .find(|c| path.contains(&c.path_substr) && c.idents.iter().any(|i| i == receiver_last))
            .map(|c| c.name.as_str())
    }

    /// Whether acquiring `inner` while `held` is held matches the
    /// declared order (`held` strictly before `inner`).
    #[must_use]
    pub fn allows(&self, held: &str, inner: &str) -> bool {
        self.before.contains(&(held.to_string(), inner.to_string()))
    }

    /// Whether `class` is declared safe to acquire on the reactor
    /// thread (`reactorsafe` directive).
    #[must_use]
    pub fn is_reactor_safe(&self, class: &str) -> bool {
        self.reactor_safe.contains(class)
    }

    /// Class names → declaration summaries, for diagnostics.
    #[must_use]
    pub fn class_summary(&self) -> BTreeMap<String, String> {
        self.classes
            .iter()
            .map(|c| {
                (
                    c.name.clone(),
                    format!("{} ({})", c.path_substr, c.idents.join(",")),
                )
            })
            .collect()
    }
}

/// The workspace's committed manifest, compiled into the binary so the
/// gate needs no runtime file lookup (override with `--lock-order`).
pub const DEFAULT_MANIFEST: &str = include_str!("../lock_order.txt");

#[cfg(test)]
mod unit_tests {
    use super::*;

    const M: &str = "\
# test manifest
class outer  src/a.rs  state,queue
class inner  src/a.rs  slot
class other  src/b.rs  state
order outer inner
";

    #[test]
    fn parses_and_classifies() {
        let m = LockOrder::parse(M).unwrap();
        assert_eq!(m.classify("crates/x/src/a.rs", "state"), Some("outer"));
        assert_eq!(m.classify("crates/x/src/a.rs", "queue"), Some("outer"));
        assert_eq!(m.classify("crates/x/src/a.rs", "slot"), Some("inner"));
        assert_eq!(m.classify("crates/x/src/b.rs", "state"), Some("other"));
        assert_eq!(m.classify("crates/x/src/b.rs", "slot"), None);
    }

    #[test]
    fn order_is_directional_and_transitive() {
        let m = LockOrder::parse("class a p x\nclass b p y\nclass c p z\norder a b c\n").unwrap();
        assert!(m.allows("a", "b"));
        assert!(m.allows("a", "c"), "transitive");
        assert!(m.allows("b", "c"));
        assert!(!m.allows("b", "a"), "reverse is a violation");
        assert!(!m.allows("a", "a"), "re-acquiring the same class");
    }

    #[test]
    fn chains_compose_transitively() {
        let m = LockOrder::parse("class a p x\nclass b p y\nclass c p z\norder a b\norder b c\n")
            .unwrap();
        assert!(m.allows("a", "c"), "closure across separate chains");
    }

    #[test]
    fn errors_are_reported() {
        assert!(LockOrder::parse("class broken").is_err());
        assert!(LockOrder::parse("order a b").is_err(), "undeclared class");
        assert!(LockOrder::parse("frobnicate x").is_err());
        let contradiction = LockOrder::parse("class a p x\nclass b p y\norder a b\norder b a\n");
        assert!(contradiction.is_err());
    }

    #[test]
    fn reactorsafe_classes_parse_and_validate() {
        let m = LockOrder::parse("class a p x\nclass b p y\nreactorsafe a\n").unwrap();
        assert!(m.is_reactor_safe("a"));
        assert!(!m.is_reactor_safe("b"));
        assert!(!m.is_reactor_safe("unknown"));
        assert!(LockOrder::parse("reactorsafe ghost\n").is_err());
        assert!(LockOrder::parse("class a p x\nreactorsafe\n").is_err());
    }

    #[test]
    fn default_manifest_parses() {
        let m = LockOrder::parse(DEFAULT_MANIFEST).unwrap();
        assert!(!m.class_summary().is_empty());
    }
}
