//! The committed baseline of grandfathered findings.
//!
//! Format: one record per line, tab-separated —
//!
//! ```text
//! <rule>\t<path>\t<fingerprint-hex>\t<count>
//! ```
//!
//! keyed by (rule, path, snippet fingerprint) with an occurrence count,
//! so the same construct appearing N times on a file stays
//! grandfathered at N. Fingerprints hash the rule id plus the
//! whitespace-normalized offending line (see [`Finding::fingerprint`]),
//! never the line *number*, so unrelated edits above a site do not
//! invalidate the baseline. `--check` fails only when a (rule, path,
//! fingerprint) key's current count exceeds its baselined count —
//! i.e. when someone adds a *new* violation.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// Key identifying one grandfathered finding shape in one file.
pub type Key = (String, String, u64);

/// A parsed baseline: key → grandfathered occurrence count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<Key, usize>,
}

impl Baseline {
    /// Parses the committed baseline text. Blank lines and `#` comments
    /// are skipped; malformed records are errors (a truncated baseline
    /// must not silently un-grandfather everything).
    ///
    /// # Errors
    /// Describes the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut counts = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(rule), Some(path), Some(fp), Some(count)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected rule\\tpath\\tfingerprint\\tcount",
                    i + 1
                ));
            };
            let fp = u64::from_str_radix(fp, 16)
                .map_err(|e| format!("baseline line {}: bad fingerprint: {e}", i + 1))?;
            let count: usize = count
                .parse()
                .map_err(|e| format!("baseline line {}: bad count: {e}", i + 1))?;
            *counts
                .entry((rule.to_string(), path.to_string(), fp))
                .or_insert(0) += count;
        }
        Ok(Baseline { counts })
    }

    /// Builds a baseline covering exactly `findings`.
    #[must_use]
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts: BTreeMap<Key, usize> = BTreeMap::new();
        for f in findings {
            *counts.entry(key_of(f)).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Serializes in the committed format (sorted, stable).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# anomex-analyze baseline — grandfathered findings.\n\
             # Regenerate with: cargo run -p anomex-analyze -- --write-baseline\n\
             # rule\tpath\tfingerprint\tcount\n",
        );
        for ((rule, path, fp), count) in &self.counts {
            out.push_str(&format!("{rule}\t{path}\t{fp:016x}\t{count}\n"));
        }
        out
    }

    /// Splits `findings` into (new, grandfathered): for each key, up to
    /// the baselined count is grandfathered, the excess is new.
    #[must_use]
    pub fn partition(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut seen: BTreeMap<Key, usize> = BTreeMap::new();
        let mut fresh = Vec::new();
        let mut old = Vec::new();
        for f in findings {
            let key = key_of(&f);
            let used = seen.entry(key.clone()).or_insert(0);
            if *used < self.counts.get(&key).copied().unwrap_or(0) {
                *used += 1;
                old.push(f);
            } else {
                fresh.push(f);
            }
        }
        (fresh, old)
    }

    /// Total grandfathered occurrences.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }
}

fn key_of(f: &Finding) -> Key {
    (f.rule.to_string(), f.path.clone(), f.fingerprint())
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line: 1,
            message: String::new(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let fs = vec![
            finding("panic-path", "a.rs", "v.unwrap();"),
            finding("panic-path", "a.rs", "v.unwrap();"),
            finding("nested-lock", "b.rs", "m.lock();"),
        ];
        let b = Baseline::from_findings(&fs);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(b, parsed);
        assert_eq!(parsed.total(), 3);
    }

    #[test]
    fn partition_grandfathers_up_to_count() {
        let old = vec![finding("panic-path", "a.rs", "v.unwrap();")];
        let b = Baseline::from_findings(&old);
        // Two occurrences now, one baselined → one new.
        let now = vec![
            finding("panic-path", "a.rs", "v.unwrap();"),
            finding("panic-path", "a.rs", "v.unwrap();"),
        ];
        let (fresh, grandfathered) = b.partition(now);
        assert_eq!(fresh.len(), 1);
        assert_eq!(grandfathered.len(), 1);
    }

    #[test]
    fn line_moves_stay_grandfathered() {
        let mut f = finding("panic-path", "a.rs", "v.unwrap();");
        let b = Baseline::from_findings(std::slice::from_ref(&f));
        f.line = 500;
        let (fresh, old) = b.partition(vec![f]);
        assert!(fresh.is_empty());
        assert_eq!(old.len(), 1);
    }

    #[test]
    fn different_file_is_not_grandfathered() {
        let b = Baseline::from_findings(&[finding("panic-path", "a.rs", "v.unwrap();")]);
        let (fresh, _) = b.partition(vec![finding("panic-path", "z.rs", "v.unwrap();")]);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(Baseline::parse("panic-path\ta.rs\tzz\t1").is_err());
        assert!(Baseline::parse("just-one-field").is_err());
        assert!(Baseline::parse("# comment only\n\n").is_ok());
    }
}
