//! The workspace call graph and the three interprocedural rules.
//!
//! [`CallGraph::build`] links every [`FnDef`] across the analyzed file
//! set. Resolution is heuristic and *may*-directed (a method call links
//! to every workspace method of that name), which over-approximates the
//! true graph — the right bias for rules whose findings are "this can
//! deadlock / block / panic":
//!
//! * free calls resolve same-file first, then same-crate, then
//!   workspace-wide;
//! * `Type::assoc` resolves by impl/trait self-type; `module::free`
//!   resolves by file stem or inline-module name; `Self::assoc` uses
//!   the caller's own impl type; `std::...` paths resolve nowhere;
//! * method calls resolve by name to every workspace method, capped at
//!   [`AMBIGUITY_CAP`] candidates so prelude-shaped names (`get`,
//!   `len`, `clone`) don't glue the graph into one component.
//!
//! On top of reachability, three passes:
//!
//! 1. **lock-set propagation** (`nested-lock`): each function's
//!    transitive may-acquire set, checked against the manifest at every
//!    call made while a guard is live;
//! 2. **reactor-blocking**: nothing reachable from the poll-loop
//!    dispatch may sleep, do file I/O, connect sockets, print to
//!    stdio, or take a lock class not declared `reactorsafe`;
//! 3. **panic reachability** (`panic-path`): helpers outside the hot
//!    crates whose panics are reachable from hot-path functions.
//!
//! Every finding carries the discovery call chain in its message.

use crate::lock_order::LockOrder;
use crate::rules::panic_path::HOT_PATHS;
use crate::rules::{in_fixtures, Finding};
use crate::symbols::{CallKind, CallSite, FileSummary, FnDef};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method-call resolution gives up beyond this many candidates: a name
/// defined this often is prelude-shaped, and linking it everywhere
/// would connect unrelated subsystems.
pub const AMBIGUITY_CAP: usize = 6;

/// Method names that collide with std container/iterator/IO APIs.
/// `buf.len()` is almost never a call into a workspace `len` method, so
/// resolving these by bare name manufactures edges between unrelated
/// subsystems (every `.len()` would link to `ModelRegistry::len`).
/// Path-qualified calls (`ModelRegistry::len(...)`) still resolve.
pub const STD_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "clear",
    "contains",
    "contains_key",
    "next",
    "iter",
    "into_iter",
    "clone",
    "write",
    "read",
    "flush",
    "wait",
    "take",
    "drain",
    "extend",
    "last",
    "first",
    "split",
    "join",
    "send",
    "recv",
    "lock",
    "add",
    "sub",
    "mul",
    "div",
    "cmp",
    "eq",
    "fmt",
    "hash",
    "min",
    "max",
    "abs",
    "floor",
    "ceil",
    "sqrt",
    "parse",
    "trim",
    "chars",
    "bytes",
    "map",
    "filter",
    "fold",
    "count",
    "sum",
    "any",
    "all",
    "find",
    "position",
    "sort",
    "reverse",
    "new",
    "default",
    "as_ref",
    "as_mut",
    "into",
    "from",
    "to_string",
    "start",
    "end",
    "swap",
    "copy",
    "fill",
    "resize",
    "truncate",
];

/// Call chains in messages are elided past this many hops.
const MAX_CHAIN: usize = 8;

/// Files whose fns are reactor-blocking roots: the event loop itself
/// plus the serve handler it dispatches into.
pub const REACTOR_ROOT_PATHS: &[&str] = &["crates/reactor/src/", "crates/serve/src/front.rs"];

/// The FFI readiness shim is allowlisted: its non-unix fallback sleeps
/// deliberately (bounded, documented), and `poll(2)` itself is the one
/// blocking call the loop exists to make.
pub const REACTOR_ALLOW_PATHS: &[&str] = &["crates/reactor/src/sys.rs"];

/// Interprocedural passes for `--list-rules` (id, description).
pub const INTERPROCEDURAL_RULES: &[(&str, &str)] = &[
    (
        "nested-lock",
        "(interprocedural) call chains whose transitive lock acquisitions violate lock_order.txt",
    ),
    (
        "reactor-blocking",
        "blocking call (sleep, file I/O, stdio, non-reactorsafe lock) reachable from the event loop",
    ),
    (
        "panic-path",
        "(interprocedural) panics outside hot crates reachable from hot-path functions",
    ),
];

/// One function node: indices into the summary slice.
#[derive(Debug, Clone, Copy)]
struct Node {
    file: usize,
    fun: usize,
}

/// The linked workspace graph.
pub struct CallGraph<'a> {
    summaries: &'a [FileSummary],
    nodes: Vec<Node>,
    /// Adjacency: `(callee node, spawned)` per resolved call. Spawned
    /// edges (calls inside `spawn(...)` closures) run on a different
    /// thread; thread-affine passes must not cross them.
    edges: Vec<Vec<(usize, bool)>>,
    /// Method/assoc-fn name → nodes with a non-empty qualifier.
    methods: BTreeMap<&'a str, Vec<usize>>,
    /// (qual, name) → nodes, for `Type::assoc` and `Self::assoc`.
    by_qual: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    /// Free-fn name → nodes with an empty qualifier.
    free: BTreeMap<&'a str, Vec<usize>>,
}

impl<'a> CallGraph<'a> {
    /// Indexes and links `summaries`.
    #[must_use]
    pub fn build(summaries: &'a [FileSummary]) -> Self {
        let mut nodes = Vec::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, s) in summaries.iter().enumerate() {
            for (gi, f) in s.fns.iter().enumerate() {
                let n = nodes.len();
                nodes.push(Node { file: fi, fun: gi });
                if f.qual.is_empty() {
                    free.entry(f.name.as_str()).or_default().push(n);
                } else {
                    methods.entry(f.name.as_str()).or_default().push(n);
                    by_qual
                        .entry((f.qual.as_str(), f.name.as_str()))
                        .or_default()
                        .push(n);
                }
            }
        }
        let mut g = CallGraph {
            summaries,
            nodes,
            edges: Vec::new(),
            methods,
            by_qual,
            free,
        };
        g.edges = (0..g.nodes.len())
            .map(|n| {
                let mut out = Vec::new();
                for call in &g.fn_of(n).calls {
                    for callee in g.resolve(n, call) {
                        out.push((callee, call.spawned));
                    }
                }
                out.sort_unstable();
                // Keep the non-spawned edge when a pair is called both
                // ways (sort puts `false` first).
                out.dedup_by_key(|e| e.0);
                out
            })
            .collect();
        g
    }

    fn fn_of(&self, n: usize) -> &'a FnDef {
        let node = self.nodes[n];
        &self.summaries[node.file].fns[node.fun]
    }

    fn path_of(&self, n: usize) -> &'a str {
        &self.summaries[self.nodes[n].file].path
    }

    /// `Qual::name` display of node `n`.
    fn display(&self, n: usize) -> String {
        self.fn_of(n).display()
    }

    /// The crate prefix (`crates/<name>/`) of a workspace-relative path.
    fn crate_of(path: &str) -> &str {
        let mut it = path.splitn(3, '/');
        match (it.next(), it.next(), it.next()) {
            (Some("crates"), Some(c), Some(_)) => &path[..7 + c.len() + 1],
            _ => "",
        }
    }

    /// The file stem (`sys` for `crates/reactor/src/sys.rs`).
    fn stem(path: &str) -> &str {
        path.rsplit('/')
            .next()
            .unwrap_or("")
            .trim_end_matches(".rs")
    }

    /// Candidate callee nodes for `call` made from `caller`.
    fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let capped = |v: Option<&Vec<usize>>| -> Vec<usize> {
            match v {
                Some(v) if v.len() <= AMBIGUITY_CAP => v.clone(),
                _ => Vec::new(),
            }
        };
        match call.kind {
            CallKind::Method => {
                if STD_METHODS.contains(&call.name.as_str()) {
                    return Vec::new();
                }
                let mut v = capped(self.methods.get(call.name.as_str()));
                // A same-name method called on a receiver other than
                // `self` is delegation, not recursion — don't link the
                // caller to itself (`h.snapshot()` inside
                // `MetricsRegistry::snapshot` is `Histogram::snapshot`).
                if call.recv != "self" {
                    v.retain(|&n| n != caller);
                }
                v
            }
            CallKind::Path => {
                let last = call.qual.rsplit("::").next().unwrap_or("");
                if last == "Self" {
                    let qual = self.fn_of(caller).qual.as_str();
                    if qual.is_empty() {
                        return Vec::new();
                    }
                    return capped(self.by_qual.get(&(qual, call.name.as_str())));
                }
                if matches!(last, "self" | "crate" | "super") || last.is_empty() {
                    return self.resolve_free(caller, &call.name);
                }
                let typed = capped(self.by_qual.get(&(last, call.name.as_str())));
                if !typed.is_empty() {
                    return typed;
                }
                // Module-qualified free fn: match file stem or inline mod.
                let by_mod: Vec<usize> = self
                    .free
                    .get(call.name.as_str())
                    .map(|v| {
                        v.iter()
                            .copied()
                            .filter(|&n| {
                                Self::stem(self.path_of(n)) == last || self.fn_of(n).module == last
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                if by_mod.len() <= AMBIGUITY_CAP {
                    by_mod
                } else {
                    Vec::new()
                }
            }
            CallKind::Free => self.resolve_free(caller, &call.name),
        }
    }

    fn resolve_free(&self, caller: usize, name: &str) -> Vec<usize> {
        let Some(all) = self.free.get(name) else {
            return Vec::new();
        };
        let caller_path = self.path_of(caller);
        let same_file: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&n| self.path_of(n) == caller_path)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let krate = Self::crate_of(caller_path);
        let same_crate: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&n| !krate.is_empty() && self.path_of(n).starts_with(krate))
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        if all.len() <= AMBIGUITY_CAP {
            all.clone()
        } else {
            Vec::new()
        }
    }

    /// BFS from `roots`. Returns, per node, `None` (unreached) or
    /// `Some(parent)` — parent == the node itself for roots. With
    /// `cross_spawn` false, edges inside `spawn(...)` closures are not
    /// traversed (the callee runs on a different thread).
    fn reach(&self, roots: &[usize], cross_spawn: bool) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut q: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                q.push_back(r);
            }
        }
        while let Some(n) = q.pop_front() {
            for &(m, spawned) in &self.edges[n] {
                if (cross_spawn || !spawned) && parent[m].is_none() {
                    parent[m] = Some(n);
                    q.push_back(m);
                }
            }
        }
        parent
    }

    /// Renders the discovery chain root → ... → `n`.
    fn chain(&self, parent: &[Option<usize>], n: usize) -> String {
        let mut hops = vec![n];
        let mut cur = n;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            hops.push(p);
            cur = p;
            if hops.len() > 64 {
                break; // defensive: parent maps from BFS cannot cycle
            }
        }
        hops.reverse();
        let mut names: Vec<String> = hops.iter().map(|&h| self.display(h)).collect();
        if names.len() > MAX_CHAIN {
            let skipped = names.len() - MAX_CHAIN;
            let tail = names.split_off(names.len() - MAX_CHAIN / 2);
            names.truncate(MAX_CHAIN / 2);
            names.push(format!("... {skipped} more ..."));
            names.extend(tail);
        }
        names.join(" -> ")
    }
}

fn finding(rule: &'static str, path: &str, line: u32, snippet: &str, message: String) -> Finding {
    Finding {
        rule,
        path: path.to_string(),
        line,
        message,
        snippet: snippet.to_string(),
    }
}

/// Whether a path-qualified call is a blocking primitive; returns the
/// display name.
fn blocking_call(call: &CallSite) -> Option<String> {
    if call.kind != CallKind::Path {
        return None;
    }
    let last = call.qual.rsplit("::").next().unwrap_or("");
    match (last, call.name.as_str()) {
        ("thread", "sleep") => Some("std::thread::sleep".into()),
        ("TcpStream", "connect" | "connect_timeout") => Some(format!("TcpStream::{}", call.name)),
        ("File", "open" | "create" | "create_new") => Some(format!("File::{}", call.name)),
        ("fs", _) => Some(format!("std::fs::{}", call.name)),
        _ => None,
    }
}

/// Runs the three interprocedural passes over the linked summaries.
#[must_use]
pub fn interprocedural(summaries: &[FileSummary], manifest: &LockOrder) -> Vec<Finding> {
    let g = CallGraph::build(summaries);
    let mut out = Vec::new();
    lock_chains(&g, manifest, &mut out);
    reactor_blocking(&g, manifest, &mut out);
    panic_reach(&g, &mut out);
    out
}

/// Pass 1: lock-set propagation under the `nested-lock` id.
///
/// For every call made while a guard is live, the callee's *transitive*
/// acquisition set is checked against the manifest exactly like a
/// same-function nesting would be: the held class must be strictly
/// earlier-ordered, and both must be classified.
fn lock_chains(g: &CallGraph<'_>, manifest: &LockOrder, out: &mut Vec<Finding>) {
    for n in 0..g.nodes.len() {
        let f = g.fn_of(n);
        let caller_path = g.path_of(n);
        for call in &f.calls {
            // A spawned call runs on another thread, without the
            // caller's guards held.
            if call.sup_nested || call.spawned || call.held.is_empty() {
                continue;
            }
            let callees = g.resolve(n, call);
            if callees.is_empty() {
                continue;
            }
            let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
            for start in callees {
                for acq in transitive_acquires(g, start) {
                    let acq_class = manifest
                        .classify(g.path_of(acq.node), &acq.receiver_last)
                        .map(str::to_string);
                    for held in &call.held {
                        let held_class = manifest
                            .classify(caller_path, &held.receiver_last)
                            .map(str::to_string);
                        let ok = match (&held_class, &acq_class) {
                            (Some(h), Some(a)) => manifest.allows(h, a),
                            _ => false,
                        };
                        if ok {
                            continue;
                        }
                        let held_name = held_class
                            .clone()
                            .unwrap_or_else(|| format!("unclassified '{}'", held.desc));
                        let acq_name = acq_class
                            .clone()
                            .unwrap_or_else(|| format!("unclassified '{}'", acq.desc));
                        if !reported.insert((held_name.clone(), acq_name.clone())) {
                            continue;
                        }
                        let chain = g.chain(&acq.parent, acq.node);
                        out.push(finding(
                            "nested-lock",
                            caller_path,
                            call.line,
                            &call.snippet,
                            format!(
                                "call chain may acquire {acq_name} ({}:{}) while {held_name} \
                                 (line {}) is held — not a declared ordering; chain: \
                                 {} -> {chain}; see crates/analyze/lock_order.txt",
                                g.path_of(acq.node),
                                acq.line,
                                held.line,
                                f.display(),
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// One lock acquisition transitively reachable from a callee.
struct TransAcq {
    node: usize,
    receiver_last: String,
    desc: String,
    line: u32,
    /// The BFS parent map of the traversal that found it (for chains).
    parent: Vec<Option<usize>>,
}

/// Every lock acquisition in fns reachable from `start` (inclusive)
/// on the calling thread.
fn transitive_acquires(g: &CallGraph<'_>, start: usize) -> Vec<TransAcq> {
    let parent = g.reach(&[start], false);
    let mut out = Vec::new();
    for (n, p) in parent.iter().enumerate() {
        if p.is_none() {
            continue;
        }
        for l in &g.fn_of(n).locks {
            if l.spawned {
                continue;
            }
            out.push(TransAcq {
                node: n,
                receiver_last: l.receiver_last.clone(),
                desc: l.desc.clone(),
                line: l.line,
                parent: parent.clone(),
            });
        }
    }
    out
}

/// Pass 2: the `reactor-blocking` rule.
fn reactor_blocking(g: &CallGraph<'_>, manifest: &LockOrder, out: &mut Vec<Finding>) {
    let roots: Vec<usize> = (0..g.nodes.len())
        .filter(|&n| {
            let path = g.path_of(n);
            REACTOR_ROOT_PATHS.iter().any(|p| path.contains(p))
                || (in_fixtures(path) && g.fn_of(n).qual == "Reactor")
        })
        .collect();
    let parent = g.reach(&roots, false);
    for n in 0..g.nodes.len() {
        if parent[n].is_none() {
            continue;
        }
        let path = g.path_of(n);
        if REACTOR_ALLOW_PATHS.iter().any(|p| path.contains(p)) {
            continue;
        }
        let f = g.fn_of(n);
        let chain = g.chain(&parent, n);
        for call in &f.calls {
            if call.sup_reactor || call.spawned {
                continue;
            }
            if let Some(what) = blocking_call(call) {
                out.push(finding(
                    "reactor-blocking",
                    path,
                    call.line,
                    &call.snippet,
                    format!(
                        "{what} blocks the event loop — reachable from the reactor via {chain}"
                    ),
                ));
            }
        }
        for b in &f.blocking {
            if b.sup || b.spawned {
                continue;
            }
            out.push(finding(
                "reactor-blocking",
                path,
                b.line,
                &b.snippet,
                format!(
                    "{} writes to stdio (can block on a full pipe, serializes on the stdio \
                     lock) — reachable from the reactor via {chain}",
                    b.what
                ),
            ));
        }
        for l in &f.locks {
            if l.sup_reactor || l.spawned {
                continue;
            }
            match manifest.classify(path, &l.receiver_last) {
                Some(c) if manifest.is_reactor_safe(c) => {}
                Some(c) => out.push(finding(
                    "reactor-blocking",
                    path,
                    l.line,
                    &l.snippet,
                    format!(
                        "lock class '{c}' is not declared reactorsafe — acquiring it on the \
                         event loop can stall every connection; reachable via {chain} \
                         (see crates/analyze/lock_order.txt)"
                    ),
                )),
                None => out.push(finding(
                    "reactor-blocking",
                    path,
                    l.line,
                    &l.snippet,
                    format!(
                        "unclassified lock '{}' reachable from the event loop via {chain} — \
                         classify it in crates/analyze/lock_order.txt (and mark it \
                         reactorsafe only if its critical section is bounded)",
                        l.desc
                    ),
                )),
            }
        }
    }
}

/// Pass 3: panic reachability under the `panic-path` id.
fn panic_reach(g: &CallGraph<'_>, out: &mut Vec<Finding>) {
    let is_hot = |path: &str| HOT_PATHS.iter().any(|p| path.contains(p));
    // Fixture roots are opt-in by naming convention (`hot_*`): making
    // every fixture fn a root would leave nothing at call distance >= 1.
    let roots: Vec<usize> = (0..g.nodes.len())
        .filter(|&n| {
            let path = g.path_of(n);
            if in_fixtures(path) {
                g.fn_of(n).name.starts_with("hot_")
            } else {
                is_hot(path)
            }
        })
        .collect();
    // Panics matter on every thread serving the request, so spawned
    // edges ARE traversed here.
    let parent = g.reach(&roots, true);
    for n in 0..g.nodes.len() {
        let Some(p) = parent[n] else { continue };
        if p == n {
            continue; // roots: direct sites are the per-file rule's job
        }
        let path = g.path_of(n);
        if is_hot(path) && !in_fixtures(path) {
            continue; // covered by the per-file panic-path rule
        }
        let f = g.fn_of(n);
        let chain = g.chain(&parent, n);
        for site in &f.panics {
            if site.sup {
                continue;
            }
            out.push(finding(
                "panic-path",
                path,
                site.line,
                &site.snippet,
                format!(
                    "{} in {} can panic on a hot path — reachable via {chain}; return a \
                     typed error (or suppress with a reason if provably infallible)",
                    site.what,
                    f.display(),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::symbols::{extract, fnv64};

    fn summarize(path: &str, src: &str) -> FileSummary {
        let file = SourceFile::parse(path, src);
        extract(&file, fnv64(src.as_bytes()), Vec::new(), 0)
    }

    fn manifest() -> LockOrder {
        LockOrder::parse(
            "class coarse x.rs map\nclass fine x.rs state\norder coarse fine\n\
             reactorsafe fine\n",
        )
        .unwrap()
    }

    #[test]
    fn lock_chain_violation_is_found_across_functions() {
        let s = summarize(
            "x.rs",
            "\
fn outer(&self) {
    let s = self.state.lock();
    helper(s);
}
fn helper(s: G) {
    let m = self.map.lock();
    use_both(s, m);
}",
        );
        let f = interprocedural(std::slice::from_ref(&s), &manifest());
        let lock: Vec<&Finding> = f.iter().filter(|f| f.rule == "nested-lock").collect();
        assert_eq!(lock.len(), 1, "{f:?}");
        assert_eq!(lock[0].line, 3, "flagged at the call site");
        assert!(lock[0].message.contains("coarse"), "{}", lock[0].message);
        assert!(lock[0].message.contains("fine"), "{}", lock[0].message);
        assert!(
            lock[0].message.contains("outer -> helper"),
            "chain evidence: {}",
            lock[0].message
        );
    }

    #[test]
    fn declared_order_across_functions_is_clean() {
        let s = summarize(
            "x.rs",
            "\
fn outer(&self) {
    let m = self.map.lock();
    helper(m);
}
fn helper(m: G) {
    let s = self.state.lock();
    use_both(m, s);
}",
        );
        let f = interprocedural(std::slice::from_ref(&s), &manifest());
        assert!(
            f.iter().all(|f| f.rule != "nested-lock"),
            "coarse -> fine across a call is the declared order: {f:?}"
        );
    }

    #[test]
    fn reactor_blocking_flags_sleep_print_and_bad_locks_with_chain() {
        let s = summarize(
            "fixtures/r.rs",
            "\
impl Reactor {
    fn run(&self) { self.dispatch(); }
}
impl Worker {
    fn dispatch(&self) {
        std::thread::sleep(d);
        println!(\"tick\");
        let g = self.map.lock();
        let s = self.state.lock();
    }
}",
        );
        let m = LockOrder::parse(
            "class coarse r.rs map\nclass fine r.rs state\norder coarse fine\nreactorsafe fine\n",
        )
        .unwrap();
        let f = interprocedural(std::slice::from_ref(&s), &m);
        let rb: Vec<&Finding> = f.iter().filter(|f| f.rule == "reactor-blocking").collect();
        let msgs: Vec<&str> = rb.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("std::thread::sleep")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("println!")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("'coarse'")),
            "non-reactorsafe class: {msgs:?}"
        );
        assert!(
            !msgs.iter().any(|m| m.contains("'fine'")),
            "reactorsafe class must not fire: {msgs:?}"
        );
        assert!(
            msgs.iter()
                .all(|m| m.contains("Reactor::run -> Worker::dispatch")),
            "chain evidence: {msgs:?}"
        );
    }

    #[test]
    fn panic_reach_crosses_from_hot_to_helper_crate() {
        let hot = summarize("crates/core/src/engine.rs", "fn score() { crunch(1); }");
        let helper = summarize(
            "crates/dataset/src/util.rs",
            "pub fn crunch(x: u32) -> u32 { table.get(x).unwrap() }",
        );
        let f = interprocedural(&[hot, helper], &manifest());
        let pp: Vec<&Finding> = f.iter().filter(|f| f.rule == "panic-path").collect();
        assert_eq!(pp.len(), 1, "{f:?}");
        assert_eq!(pp[0].path, "crates/dataset/src/util.rs");
        assert!(
            pp[0].message.contains("score -> crunch"),
            "chain evidence: {}",
            pp[0].message
        );
    }

    #[test]
    fn panic_in_unreached_helper_is_not_flagged() {
        let hot = summarize("crates/core/src/engine.rs", "fn score() { fine(); }");
        let helper = summarize(
            "crates/dataset/src/util.rs",
            "pub fn crunch(x: u32) -> u32 { v.unwrap() }\npub fn fine() -> u32 { 0 }",
        );
        let f = interprocedural(&[hot, helper], &manifest());
        assert!(
            f.iter().all(|f| f.rule != "panic-path"),
            "unreached panic must not fire: {f:?}"
        );
    }

    #[test]
    fn suppressed_sites_do_not_fire_interprocedurally() {
        let hot = summarize("crates/core/src/engine.rs", "fn score() { crunch(1); }");
        let helper = summarize(
            "crates/dataset/src/util.rs",
            "pub fn crunch(x: u32) -> u32 {\n    v.unwrap() // anomex: allow(panic-path) checked by caller\n}",
        );
        let f = interprocedural(&[hot, helper], &manifest());
        assert!(f.iter().all(|f| f.rule != "panic-path"), "{f:?}");
    }

    #[test]
    fn method_resolution_gives_up_past_the_ambiguity_cap() {
        let mut files = vec![summarize(
            "crates/core/src/engine.rs",
            "fn score(&self) { self.refresh(); }",
        )];
        for i in 0..(AMBIGUITY_CAP + 1) {
            files.push(summarize(
                &format!("crates/dataset/src/m{i}.rs"),
                &format!("impl T{i} {{ fn refresh(&self) {{ v.unwrap() }} }}"),
            ));
        }
        let f = interprocedural(&files, &manifest());
        assert!(
            f.iter().all(|f| f.rule != "panic-path"),
            "over-ambiguous method names must not link: {f:?}"
        );
    }

    #[test]
    fn self_and_module_paths_resolve() {
        let s = summarize(
            "crates/reactor/src/reactor.rs",
            "\
impl Reactor {
    fn run(&self) { self.tick(); }
    fn tick(&self) { sys::wait(fds); }
}",
        );
        let sys = summarize(
            "crates/reactor/src/sys.rs",
            "pub fn wait(fds: F) { imp::wait(fds) }\nmod imp {\n    pub fn wait(fds: F) { std::thread::sleep(d); }\n}",
        );
        let f = interprocedural(&[s, sys], &manifest());
        // sys.rs is allowlisted, so the sleep must NOT fire even though
        // the chain run -> tick -> wait -> imp::wait reaches it.
        assert!(
            f.iter().all(|f| f.rule != "reactor-blocking"),
            "FFI shim allowlist: {f:?}"
        );
    }
}
