//! Per-file symbol extraction for the interprocedural passes.
//!
//! One scan over a [`SourceFile`] produces a [`FileSummary`]: every
//! `fn` definition (qualified by its `impl`/`trait` block and inline
//! module), the call sites inside each body (with the set of lock
//! guards live at the call), lock acquisitions, panic sites, and
//! blocking-output macros. Test regions are excluded at extraction and
//! `anomex: allow` suppressions are resolved here, so the workspace
//! phase ([`crate::callgraph`]) never needs the source text again.
//!
//! Summaries are serializable: the analyzer caches them (and the
//! per-file rule findings) keyed by an FNV-1a fingerprint of the file
//! contents, which is what keeps the interprocedural gate fast in CI —
//! an unchanged file costs one hash, not a re-lex.

use crate::rules::{nested_lock, Finding};
use crate::source::SourceFile;

/// Bump when the summary shape or serialization format changes; the
/// cache header carries it so stale caches are discarded, not misread.
pub const SUMMARY_VERSION: u32 = 1;

/// FNV-1a over raw bytes — the fingerprint the summary cache keys on.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(...)` — a bare identifier.
    Free,
    /// `recv.method(...)`.
    Method,
    /// `Type::assoc(...)`, `Self::assoc(...)`, `module::free(...)`.
    Path,
}

/// A lock guard live at a call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldLock {
    /// Last identifier of the receiver chain (what the manifest keys on).
    pub receiver_last: String,
    /// Receiver description for messages (`self.map.lock()`).
    pub desc: String,
    /// Acquisition line.
    pub line: u32,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// `::`-joined qualifier for [`CallKind::Path`], else empty.
    pub qual: String,
    /// Receiver's last identifier for [`CallKind::Method`] (`self` for
    /// `self.helper()`), else empty.
    pub recv: String,
    /// Shape of the call.
    pub kind: CallKind,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line (finding snippet).
    pub snippet: String,
    /// Guards live when the call is made.
    pub held: Vec<HeldLock>,
    /// Lexically inside a `spawn(...)` argument: runs on another
    /// thread, with the caller's guards *not* held.
    pub spawned: bool,
    /// `anomex: allow(nested-lock)` covers this line.
    pub sup_nested: bool,
    /// `anomex: allow(reactor-blocking)` covers this line.
    pub sup_reactor: bool,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockAcq {
    /// Last identifier of the receiver chain.
    pub receiver_last: String,
    /// Receiver description for messages.
    pub desc: String,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line.
    pub snippet: String,
    /// Lexically inside a `spawn(...)` argument (another thread).
    pub spawned: bool,
    /// `anomex: allow(reactor-blocking)` covers this line.
    pub sup_reactor: bool,
}

/// One panic-capable site (`unwrap`/`expect` call or panic-family macro).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// What panics (`unwrap()`, `panic!`, ...).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line.
    pub snippet: String,
    /// `anomex: allow(panic-path)` covers this line.
    pub sup: bool,
}

/// A blocking-output macro (`println!`/`eprintln!`/`print!`/`eprint!`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSite {
    /// The macro name with `!`.
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line.
    pub snippet: String,
    /// Lexically inside a `spawn(...)` argument (another thread).
    pub spawned: bool,
    /// `anomex: allow(reactor-blocking)` covers this line.
    pub sup: bool,
}

/// One `fn` definition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, or empty for free functions.
    pub qual: String,
    /// Innermost inline `mod` name, or empty at file scope.
    pub module: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Trait/extern declarations have no body and produce no events.
    pub has_body: bool,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions in body order.
    pub locks: Vec<LockAcq>,
    /// Panic sites in body order.
    pub panics: Vec<PanicSite>,
    /// Blocking-output macros in body order.
    pub blocking: Vec<BlockSite>,
}

impl FnDef {
    /// `Qual::name` or bare `name` — how findings render this function.
    #[must_use]
    pub fn display(&self) -> String {
        if self.qual.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.qual, self.name)
        }
    }
}

/// Everything the workspace phase needs to know about one file.
#[derive(Debug, Clone, Default)]
pub struct FileSummary {
    /// Path relative to the analysis root.
    pub path: String,
    /// FNV-1a of the file contents (cache key).
    pub fingerprint: u64,
    /// Per-file rule findings (test/suppression filtering already done).
    pub findings: Vec<Finding>,
    /// Findings dropped by `anomex: allow` in the per-file pass.
    pub suppressed: usize,
    /// Function definitions, in source order.
    pub fns: Vec<FnDef>,
}

/// Keywords that look like calls when followed by `(` but are not.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "return", "for", "loop", "in", "as", "move", "let", "fn",
    "impl", "where", "unsafe", "break", "continue", "await", "yield", "ref", "mut", "pub", "crate",
    "super", "self", "Self", "use", "mod", "struct", "enum", "trait", "type", "const", "static",
    "extern", "dyn", "box", "drop",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

struct Guard {
    receiver_last: String,
    desc: String,
    var: Option<String>,
    depth: usize,
    line: u32,
    temporary: bool,
}

struct FnFrame {
    def: FnDef,
    /// Brace depth of the body (depth value after its `{`).
    body_depth: usize,
    guards: Vec<Guard>,
    pending_let: Option<(String, usize)>,
}

/// Token spans `(open, close)` of every `spawn(...)` argument list:
/// code inside runs on a different thread, which the reactor-blocking
/// and lock-chain passes must not cross.
fn spawn_spans(toks: &[crate::lexer::Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("spawn") {
            continue;
        }
        let Some(open) = call_open(toks, i) else {
            continue;
        };
        let mut depth = 1usize;
        let mut j = open + 1;
        while depth > 0 {
            match toks.get(j) {
                Some(t) if t.is_punct('(') => depth += 1,
                Some(t) if t.is_punct(')') => depth -= 1,
                Some(_) => {}
                None => break,
            }
            j += 1;
        }
        spans.push((open, j));
    }
    spans
}

/// Extracts the symbol summary of one parsed file. `fingerprint`,
/// `findings`, and `suppressed` are carried through from the per-file
/// pass so the whole analysis of a file caches as one unit.
#[must_use]
pub fn extract(
    file: &SourceFile,
    fingerprint: u64,
    findings: Vec<Finding>,
    suppressed: usize,
) -> FileSummary {
    let toks = &file.tokens;
    let mut out = FileSummary {
        path: file.path.clone(),
        fingerprint,
        findings,
        suppressed,
        fns: Vec::new(),
    };
    let spawns = spawn_spans(toks);
    let mut depth = 0usize;
    // (name, depth-after-open) for impl/trait and mod blocks.
    let mut quals: Vec<(String, usize)> = Vec::new();
    let mut mods: Vec<(String, usize)> = Vec::new();
    let mut frames: Vec<FnFrame> = Vec::new();
    // A header seen whose `{` lives at token index `.1`.
    let mut pending_fn: Option<(FnDef, usize)> = None;
    let mut pending_qual: Option<(String, usize)> = None;
    let mut pending_mod: Option<(String, usize)> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            if pending_fn.as_ref().is_some_and(|(_, at)| *at == i) {
                let (def, _) = pending_fn.take().unwrap_or_default();
                frames.push(FnFrame {
                    def,
                    body_depth: depth,
                    guards: Vec::new(),
                    pending_let: None,
                });
            } else if pending_qual.as_ref().is_some_and(|(_, at)| *at == i) {
                let (name, _) = pending_qual.take().unwrap_or_default();
                quals.push((name, depth));
            } else if pending_mod.as_ref().is_some_and(|(_, at)| *at == i) {
                let (name, _) = pending_mod.take().unwrap_or_default();
                mods.push((name, depth));
            }
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while frames.last().is_some_and(|f| f.body_depth > depth) {
                if let Some(frame) = frames.pop() {
                    out.fns.push(frame.def);
                }
            }
            if let Some(frame) = frames.last_mut() {
                frame.guards.retain(|g| g.depth <= depth);
                if frame.pending_let.as_ref().is_some_and(|(_, d)| *d > depth) {
                    frame.pending_let = None;
                }
            }
            quals.retain(|(_, d)| *d <= depth);
            mods.retain(|(_, d)| *d <= depth);
            i += 1;
            continue;
        }
        // Inside a signature or block header, nothing is a call/event;
        // wait for the `{` (or the `;` of a body-less declaration).
        if pending_fn.is_some() || pending_qual.is_some() || pending_mod.is_some() {
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            if let Some(frame) = frames.last_mut() {
                frame.guards.retain(|g| !(g.temporary && g.depth == depth));
                frame.pending_let = None;
            }
            i += 1;
            continue;
        }
        let Some(name) = t.ident() else {
            i += 1;
            continue;
        };
        match name {
            "fn" => {
                if let Some((def, body_at)) = fn_header(file, i, &quals, &mods) {
                    if let Some(at) = body_at {
                        pending_fn = Some((def, at));
                    } else {
                        out.fns.push(def); // declaration without a body
                    }
                }
            }
            "impl" | "trait" => {
                if let Some((qual, at)) = block_header(toks, i) {
                    pending_qual = Some((qual, at));
                }
            }
            "mod" => {
                // `mod name {` only — `mod name;` declares a file module.
                if let (Some(mn), Some(open)) =
                    (toks.get(i + 1).and_then(|t| t.ident()), toks.get(i + 2))
                {
                    if open.is_punct('{') {
                        pending_mod = Some((mn.to_string(), i + 2));
                    }
                }
            }
            "let" => {
                if let Some(frame) = frames.last_mut() {
                    let mut j = i + 1;
                    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                        j += 1;
                    }
                    if let Some(n) = toks.get(j).and_then(|t| t.ident()) {
                        frame.pending_let = Some((n.to_string(), depth));
                    }
                }
            }
            "drop"
                if toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct(')')) =>
            {
                if let (Some(frame), Some(n)) =
                    (frames.last_mut(), toks.get(i + 2).and_then(|t| t.ident()))
                {
                    frame.guards.retain(|g| g.var.as_deref() != Some(n));
                }
            }
            _ => {
                if !file.is_test_line(t.line) {
                    let spawned = spawns.iter().any(|&(s, e)| i > s && i < e);
                    record_event(file, i, depth, spawned, &mut frames);
                }
            }
        }
        i += 1;
    }
    while let Some(frame) = frames.pop() {
        out.fns.push(frame.def);
    }
    if let Some((def, _)) = pending_fn {
        out.fns.push(def);
    }
    out.fns.sort_by_key(|f| f.line);
    out
}

/// Records whatever event the identifier at `i` constitutes (lock
/// acquisition, panic site, blocking macro, or call site) into the
/// innermost open function.
fn record_event(
    file: &SourceFile,
    i: usize,
    depth: usize,
    spawned: bool,
    frames: &mut Vec<FnFrame>,
) {
    let toks = &file.tokens;
    let t = &toks[i];
    let Some(name) = t.ident() else { return };
    let Some(frame) = frames.last_mut() else {
        return;
    };
    let snippet = || file.line(t.line).to_string();

    // Lock acquisition (also covers the free `lock(&...)` helper).
    if let Some(acq) = nested_lock::acquisition(file, i) {
        frame.def.locks.push(LockAcq {
            receiver_last: acq.receiver_last.clone(),
            desc: acq.desc.clone(),
            line: t.line,
            snippet: snippet(),
            spawned,
            sup_reactor: file.is_suppressed("reactor-blocking", t.line),
        });
        frame.guards.push(Guard {
            receiver_last: acq.receiver_last,
            desc: acq.desc,
            var: frame.pending_let.as_ref().map(|(n, _)| n.clone()),
            depth,
            line: t.line,
            temporary: frame.pending_let.is_none(),
        });
        return;
    }

    // Panic-capable method calls.
    if (name == "unwrap" || name == "expect")
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
    {
        frame.def.panics.push(PanicSite {
            what: format!("{name}()"),
            line: t.line,
            snippet: snippet(),
            sup: file.is_suppressed("panic-path", t.line),
        });
        return;
    }

    // Macros: panic family and blocking output.
    if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
        if PANIC_MACROS.contains(&name) {
            frame.def.panics.push(PanicSite {
                what: format!("{name}!"),
                line: t.line,
                snippet: snippet(),
                sup: file.is_suppressed("panic-path", t.line),
            });
        } else if PRINT_MACROS.contains(&name) {
            frame.def.blocking.push(BlockSite {
                what: format!("{name}!"),
                line: t.line,
                snippet: snippet(),
                spawned,
                sup: file.is_suppressed("reactor-blocking", t.line),
            });
        }
        return;
    }

    // Call sites.
    if KEYWORDS.contains(&name) {
        return;
    }
    let open = call_open(toks, i);
    if open.is_none() {
        return;
    }
    let (kind, qual, recv) = if i > 0 && toks[i - 1].is_punct('.') {
        let chain = crate::rules::receiver_chain(file, i);
        (
            CallKind::Method,
            String::new(),
            chain.last().cloned().unwrap_or_default(),
        )
    } else if let Some(q) = path_qual(toks, i) {
        (CallKind::Path, q, String::new())
    } else {
        (CallKind::Free, String::new(), String::new())
    };
    let held: Vec<HeldLock> = frame
        .guards
        .iter()
        .map(|g| HeldLock {
            receiver_last: g.receiver_last.clone(),
            desc: g.desc.clone(),
            line: g.line,
        })
        .collect();
    frame.def.calls.push(CallSite {
        name: name.to_string(),
        qual,
        recv,
        kind,
        line: t.line,
        snippet: snippet(),
        held,
        spawned,
        sup_nested: file.is_suppressed("nested-lock", t.line),
        sup_reactor: file.is_suppressed("reactor-blocking", t.line),
    });
}

/// Whether the identifier at `i` is followed by `(` — directly or via a
/// turbofish `::<...>` — making it call-shaped. Returns the index of
/// the `(`.
fn call_open(toks: &[crate::lexer::Token], i: usize) -> Option<usize> {
    if toks.get(i + 1)?.is_punct('(') {
        return Some(i + 1);
    }
    // Turbofish: name :: < ... > (
    if toks.get(i + 1)?.is_punct(':')
        && toks.get(i + 2)?.is_punct(':')
        && toks.get(i + 3)?.is_punct('<')
    {
        let mut angle = 1usize;
        let mut j = i + 4;
        while angle > 0 {
            let t = toks.get(j)?;
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !toks.get(j - 1).is_some_and(|p| p.is_punct('-')) {
                angle -= 1;
            }
            j += 1;
        }
        if toks.get(j)?.is_punct('(') {
            return Some(j);
        }
    }
    None
}

/// The `::`-joined qualifier path preceding the identifier at `i`
/// (`std::thread` for `std::thread::sleep(...)`), or `None` when the
/// identifier is not path-qualified.
fn path_qual(toks: &[crate::lexer::Token], i: usize) -> Option<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut k = i;
    while k >= 3
        && toks[k - 1].is_punct(':')
        && toks[k - 2].is_punct(':')
        && toks[k - 3].ident().is_some()
    {
        segs.push(toks[k - 3].ident().unwrap_or_default().to_string());
        k -= 3;
    }
    if segs.is_empty() {
        None
    } else {
        segs.reverse();
        Some(segs.join("::"))
    }
}

/// Parses a `fn` header starting at token `i` (the `fn` keyword):
/// returns the partial definition plus the token index of its body `{`
/// (`None` for body-less declarations).
fn fn_header(
    file: &SourceFile,
    i: usize,
    quals: &[(String, usize)],
    mods: &[(String, usize)],
) -> Option<(FnDef, Option<usize>)> {
    let toks = &file.tokens;
    let name = toks.get(i + 1)?.ident()?.to_string();
    let line = toks[i].line;
    if file.is_test_line(line) {
        return None;
    }
    // Find the body `{` or the `;` of a declaration, at paren depth 0.
    // Angle depth is tracked so `fn f<F: Fn() -> Ordering>` parses; the
    // `->` arrow's `>` is skipped via its `-`.
    let mut paren = 0usize;
    let mut j = i + 2;
    let mut body_at = None;
    while let Some(t) = toks.get(j) {
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren = paren.saturating_sub(1);
        } else if t.is_punct('{') && paren == 0 {
            body_at = Some(j);
            break;
        } else if t.is_punct(';') && paren == 0 {
            break;
        }
        j += 1;
    }
    let def = FnDef {
        name,
        qual: quals.last().map(|(n, _)| n.clone()).unwrap_or_default(),
        module: mods.last().map(|(n, _)| n.clone()).unwrap_or_default(),
        line,
        has_body: body_at.is_some(),
        ..FnDef::default()
    };
    Some((def, body_at))
}

/// Parses an `impl`/`trait` header at token `i`: the self-type (or
/// trait name) and the token index of the block's `{`.
fn block_header(toks: &[crate::lexer::Token], i: usize) -> Option<(String, usize)> {
    let mut angle = 0usize;
    let mut name: Option<String> = None;
    let mut j = i + 1;
    while let Some(t) = toks.get(j) {
        if t.is_punct('{') && angle == 0 {
            return name.map(|n| (n, j));
        }
        if t.is_punct(';') && angle == 0 {
            return None; // `impl Foo;` / associated-type noise — skip
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !toks.get(j - 1).is_some_and(|p| p.is_punct('-')) {
            angle = angle.saturating_sub(1);
        } else if angle == 0 {
            if let Some(id) = t.ident() {
                if id == "for" {
                    name = None; // the self-type follows
                } else if name.is_none() && id != "dyn" {
                    name = Some(id.to_string());
                }
            }
        }
        j += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Cache serialization: a line-oriented text format, whitespace-escaped,
// versioned. Any malformed line discards the whole cache (it is only a
// cache), never misreads it.

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    if out.is_empty() {
        "-".to_string()
    } else {
        out
    }
}

fn unesc(s: &str) -> Option<String> {
    if s == "-" {
        return Some(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '%' {
            let hi = chars.next()?;
            let lo = chars.next()?;
            let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
            out.push(byte as char);
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Maps a rule id back to its `&'static str` (findings hold statics).
#[must_use]
pub fn rule_id_static(id: &str) -> Option<&'static str> {
    match id {
        "nested-lock" => Some("nested-lock"),
        "panic-path" => Some("panic-path"),
        "nondeterminism" => Some("nondeterminism"),
        "float-ordering" => Some("float-ordering"),
        "swallowed-error" => Some("swallowed-error"),
        "reactor-blocking" => Some("reactor-blocking"),
        _ => None,
    }
}

/// Renders summaries to the cache format.
#[must_use]
pub fn render_cache(summaries: &[FileSummary]) -> String {
    let mut out = format!("anomex-analyze-cache v{SUMMARY_VERSION}\n");
    for s in summaries {
        out.push_str(&format!(
            "F {} {:016x} {}\n",
            esc(&s.path),
            s.fingerprint,
            s.suppressed
        ));
        for f in &s.findings {
            out.push_str(&format!(
                "D {} {} {} {}\n",
                f.rule,
                f.line,
                esc(&f.message),
                esc(&f.snippet)
            ));
        }
        for fun in &s.fns {
            out.push_str(&format!(
                "f {} {} {} {} {}\n",
                esc(&fun.name),
                esc(&fun.qual),
                esc(&fun.module),
                fun.line,
                u8::from(fun.has_body)
            ));
            for c in &fun.calls {
                let kind = match c.kind {
                    CallKind::Free => "F",
                    CallKind::Method => "M",
                    CallKind::Path => "P",
                };
                out.push_str(&format!(
                    "c {kind} {} {} {} {} {}{}{} {}\n",
                    esc(&c.name),
                    esc(&c.qual),
                    esc(&c.recv),
                    c.line,
                    u8::from(c.spawned),
                    u8::from(c.sup_nested),
                    u8::from(c.sup_reactor),
                    esc(&c.snippet)
                ));
                for h in &c.held {
                    out.push_str(&format!(
                        "h {} {} {}\n",
                        esc(&h.receiver_last),
                        esc(&h.desc),
                        h.line
                    ));
                }
            }
            for l in &fun.locks {
                out.push_str(&format!(
                    "l {} {} {} {}{} {}\n",
                    esc(&l.receiver_last),
                    esc(&l.desc),
                    l.line,
                    u8::from(l.spawned),
                    u8::from(l.sup_reactor),
                    esc(&l.snippet)
                ));
            }
            for p in &fun.panics {
                out.push_str(&format!(
                    "p {} {} {} {}\n",
                    esc(&p.what),
                    p.line,
                    u8::from(p.sup),
                    esc(&p.snippet)
                ));
            }
            for b in &fun.blocking {
                out.push_str(&format!(
                    "b {} {} {}{} {}\n",
                    esc(&b.what),
                    b.line,
                    u8::from(b.spawned),
                    u8::from(b.sup),
                    esc(&b.snippet)
                ));
            }
        }
    }
    out
}

/// Parses a cache file; `None` on any mismatch (wrong version, malformed
/// line) so a stale cache degrades to a cold run.
#[must_use]
pub fn parse_cache(text: &str) -> Option<Vec<FileSummary>> {
    let mut lines = text.lines();
    if lines.next()? != format!("anomex-analyze-cache v{SUMMARY_VERSION}") {
        return None;
    }
    let mut out: Vec<FileSummary> = Vec::new();
    for line in lines {
        let mut parts = line.split(' ');
        let tag = parts.next()?;
        match tag {
            "F" => {
                let path = unesc(parts.next()?)?;
                let fp = u64::from_str_radix(parts.next()?, 16).ok()?;
                let suppressed = parts.next()?.parse().ok()?;
                out.push(FileSummary {
                    path,
                    fingerprint: fp,
                    suppressed,
                    ..FileSummary::default()
                });
            }
            "D" => {
                let rule = rule_id_static(parts.next()?)?;
                let line_no = parts.next()?.parse().ok()?;
                let message = unesc(parts.next()?)?;
                let snippet = unesc(parts.next()?)?;
                let s = out.last_mut()?;
                s.findings.push(Finding {
                    rule,
                    path: s.path.clone(),
                    line: line_no,
                    message,
                    snippet,
                });
            }
            "f" => {
                let name = unesc(parts.next()?)?;
                let qual = unesc(parts.next()?)?;
                let module = unesc(parts.next()?)?;
                let line_no = parts.next()?.parse().ok()?;
                let has_body = parts.next()? == "1";
                out.last_mut()?.fns.push(FnDef {
                    name,
                    qual,
                    module,
                    line: line_no,
                    has_body,
                    ..FnDef::default()
                });
            }
            "c" => {
                let kind = match parts.next()? {
                    "F" => CallKind::Free,
                    "M" => CallKind::Method,
                    "P" => CallKind::Path,
                    _ => return None,
                };
                let name = unesc(parts.next()?)?;
                let qual = unesc(parts.next()?)?;
                let recv = unesc(parts.next()?)?;
                let line_no = parts.next()?.parse().ok()?;
                let flags = parts.next()?;
                if flags.len() != 3 {
                    return None;
                }
                let mut bits = flags.chars().map(|c| c == '1');
                let (spawned, sn, sr) = (bits.next()?, bits.next()?, bits.next()?);
                let snippet = unesc(parts.next()?)?;
                out.last_mut()?.fns.last_mut()?.calls.push(CallSite {
                    name,
                    qual,
                    recv,
                    kind,
                    line: line_no,
                    snippet,
                    held: Vec::new(),
                    spawned,
                    sup_nested: sn,
                    sup_reactor: sr,
                });
            }
            "h" => {
                let receiver_last = unesc(parts.next()?)?;
                let desc = unesc(parts.next()?)?;
                let line_no = parts.next()?.parse().ok()?;
                out.last_mut()?
                    .fns
                    .last_mut()?
                    .calls
                    .last_mut()?
                    .held
                    .push(HeldLock {
                        receiver_last,
                        desc,
                        line: line_no,
                    });
            }
            "l" => {
                let receiver_last = unesc(parts.next()?)?;
                let desc = unesc(parts.next()?)?;
                let line_no = parts.next()?.parse().ok()?;
                let flags = parts.next()?;
                if flags.len() != 2 {
                    return None;
                }
                let mut bits = flags.chars().map(|c| c == '1');
                let (spawned, sup) = (bits.next()?, bits.next()?);
                let snippet = unesc(parts.next()?)?;
                out.last_mut()?.fns.last_mut()?.locks.push(LockAcq {
                    receiver_last,
                    desc,
                    line: line_no,
                    snippet,
                    spawned,
                    sup_reactor: sup,
                });
            }
            "p" => {
                let what = unesc(parts.next()?)?;
                let line_no = parts.next()?.parse().ok()?;
                let sup = parts.next()? == "1";
                let snippet = unesc(parts.next()?)?;
                out.last_mut()?.fns.last_mut()?.panics.push(PanicSite {
                    what,
                    line: line_no,
                    snippet,
                    sup,
                });
            }
            "b" => {
                let what = unesc(parts.next()?)?;
                let line_no = parts.next()?.parse().ok()?;
                let flags = parts.next()?;
                if flags.len() != 2 {
                    return None;
                }
                let mut bits = flags.chars().map(|c| c == '1');
                let (spawned, sup) = (bits.next()?, bits.next()?);
                let snippet = unesc(parts.next()?)?;
                out.last_mut()?.fns.last_mut()?.blocking.push(BlockSite {
                    what,
                    line: line_no,
                    snippet,
                    spawned,
                    sup,
                });
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn summarize(path: &str, src: &str) -> FileSummary {
        let file = SourceFile::parse(path, src);
        extract(&file, fnv64(src.as_bytes()), Vec::new(), 0)
    }

    #[test]
    fn fn_defs_carry_impl_and_module_qualifiers() {
        let src = "\
fn free() {}
impl Engine {
    fn score(&self) { helper(); }
}
impl Display for Config {
    fn fmt(&self) {}
}
mod imp {
    fn wait() {}
}
trait Sink {
    fn emit(&self);
    fn flush(&self) { self.emit(); }
}";
        let s = summarize("crates/x/src/a.rs", src);
        let by_name: Vec<(String, String, String, bool)> = s
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.qual.clone(), f.module.clone(), f.has_body))
            .collect();
        assert!(by_name.contains(&("free".into(), String::new(), String::new(), true)));
        assert!(by_name.contains(&("score".into(), "Engine".into(), String::new(), true)));
        assert!(by_name.contains(&("fmt".into(), "Config".into(), String::new(), true)));
        assert!(by_name.contains(&("wait".into(), String::new(), "imp".into(), true)));
        assert!(by_name.contains(&("emit".into(), "Sink".into(), String::new(), false)));
        assert!(by_name.contains(&("flush".into(), "Sink".into(), String::new(), true)));
    }

    #[test]
    fn call_sites_classify_free_method_path_and_turbofish() {
        let src = "\
fn f() {
    helper();
    recv.method(1);
    Engine::assoc(2);
    std::thread::sleep(d);
    parse::<u32>(s);
}";
        let s = summarize("crates/x/src/a.rs", src);
        let calls = &s.fns[0].calls;
        let find = |n: &str| calls.iter().find(|c| c.name == n).expect(n);
        assert_eq!(find("helper").kind, CallKind::Free);
        assert_eq!(find("method").kind, CallKind::Method);
        assert_eq!(find("assoc").kind, CallKind::Path);
        assert_eq!(find("assoc").qual, "Engine");
        assert_eq!(find("sleep").qual, "std::thread");
        assert_eq!(find("parse").kind, CallKind::Free, "turbofish call");
    }

    #[test]
    fn held_locks_attach_to_calls_and_die_with_scope() {
        let src = "\
fn f(&self) {
    before();
    let g = self.map.lock();
    inside();
    drop(g);
    after();
}";
        let s = summarize("crates/x/src/a.rs", src);
        let calls = &s.fns[0].calls;
        let find = |n: &str| calls.iter().find(|c| c.name == n).expect(n);
        assert!(find("before").held.is_empty());
        assert_eq!(find("inside").held.len(), 1);
        assert_eq!(find("inside").held[0].receiver_last, "map");
        assert!(find("after").held.is_empty(), "drop releases");
        assert_eq!(s.fns[0].locks.len(), 1);
    }

    #[test]
    fn panic_and_blocking_sites_are_recorded_with_suppression() {
        let src = "\
fn f(v: Option<u32>) {
    v.unwrap();
    w.expect(\"must\"); // anomex: allow(panic-path) checked above
    panic!(\"boom\");
    println!(\"debug\");
    eprintln!(\"oops\"); // anomex: allow(reactor-blocking) fatal-exit path
}";
        let s = summarize("crates/x/src/a.rs", src);
        let f = &s.fns[0];
        assert_eq!(f.panics.len(), 3);
        assert!(!f.panics[0].sup);
        assert!(f.panics[1].sup);
        assert_eq!(f.panics[2].what, "panic!");
        assert_eq!(f.blocking.len(), 2);
        assert!(!f.blocking[0].sup);
        assert!(f.blocking[1].sup);
    }

    #[test]
    fn test_regions_produce_no_fns_or_events() {
        let src = "\
fn real() { used(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); helper(); }
}";
        let s = summarize("crates/x/src/a.rs", src);
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "real");
        assert_eq!(s.fns[0].calls.len(), 1);
    }

    #[test]
    fn signature_tokens_are_not_calls() {
        let src = "fn f<F: Fn(u32) -> u32>(g: F, x: impl Iterator<Item = u32>) { g2(); }";
        let s = summarize("crates/x/src/a.rs", src);
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].calls.len(), 1);
        assert_eq!(s.fns[0].calls[0].name, "g2");
    }

    #[test]
    fn cache_roundtrips() {
        let src = "\
impl Engine {
    fn score(&self) {
        let g = self.map.lock();
        helper(1);
        v.unwrap();
        println!(\"x\");
    }
}";
        let file = SourceFile::parse("crates/x/src/a.rs", src);
        let finding = Finding {
            rule: "panic-path",
            path: "crates/x/src/a.rs".into(),
            line: 5,
            message: "a message with spaces".into(),
            snippet: "v.unwrap();".into(),
        };
        let s = extract(&file, fnv64(src.as_bytes()), vec![finding], 2);
        let text = render_cache(std::slice::from_ref(&s));
        let parsed = parse_cache(&text).expect("cache parses");
        assert_eq!(parsed.len(), 1);
        let p = &parsed[0];
        assert_eq!(p.path, s.path);
        assert_eq!(p.fingerprint, s.fingerprint);
        assert_eq!(p.suppressed, 2);
        assert_eq!(p.findings, s.findings);
        assert_eq!(p.fns, s.fns);
    }

    #[test]
    fn stale_or_foreign_cache_is_discarded() {
        assert!(parse_cache("anomex-analyze-cache v0\n").is_none());
        assert!(parse_cache("garbage").is_none());
        let broken = format!("anomex-analyze-cache v{SUMMARY_VERSION}\nZ what\n");
        assert!(parse_cache(&broken).is_none());
    }
}
