//! A small Rust lexer: just enough token structure for lexical lint
//! rules, with exact line numbers and comments preserved out-of-band.
//!
//! The lexer is deliberately not a full Rust grammar — rules match on
//! token shapes (`.unwrap` `(`, `partial_cmp`, `let` `_` `=`, lock
//! chains), so the hard requirements are only:
//!
//! * string/char/byte/raw-string literals never leak tokens (an
//!   `unwrap()` inside a string must not fire a rule),
//! * comments are captured separately (suppressions live in them),
//! * lifetimes are distinguished from char literals,
//! * every token knows its 1-based line.

/// What a token is. Literal *content* is irrelevant to every rule, so
/// literals carry no text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unwrap`, `let`, `_`, `HashMap`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `!`, ...). Multi-char
    /// operators appear as consecutive `Punct` tokens.
    Punct(char),
    /// A lifetime (`'a`, `'_`, `'static`), name not preserved.
    Lifetime,
    /// Any string/char/byte-string literal.
    Literal,
    /// A numeric literal.
    Num,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind (and identifier text).
    pub kind: Tok,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, Tok::Ident(s) if s == name)
    }

    /// Whether this is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, Tok::Punct(p) if *p == c)
    }
}

/// One `//` comment: its 1-based line and full text (without the `//`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text after the leading `//` (or `/*`), trimmed.
    pub text: String,
    /// Whether any code token precedes the comment on its line.
    pub trailing: bool,
}

/// Lexer output: the significant-token stream plus captured comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments (and single-line block comments), in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated constructs (string, block comment) consume
/// to end of input rather than erroring — the analyzer must degrade
/// gracefully on code rustc itself would reject.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Line of the most recently pushed token (for `Comment::trailing`).
    last_token_line: u32,
    out: Lexed,
    _src: &'s str,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            last_token_line: 0,
            out: Lexed::default(),
            _src: src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: Tok, line: u32) {
        self.last_token_line = line;
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_body(0);
                    self.push(Tok::Literal, line);
                }
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                '\'' => self.lifetime_or_char(line),
                c if c.is_alphabetic() || c == '_' => {
                    let mut ident = String::new();
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            ident.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(Tok::Ident(ident), line);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(Tok::Num, line);
                }
                c => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume `//`
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text: text.trim_start_matches(['/', '!']).trim().to_string(),
            trailing: self.last_token_line == line,
        });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        // Only single-line block comments can carry suppressions; that
        // keeps the "which line does it apply to" rule unambiguous.
        if self.line == line {
            self.out.comments.push(Comment {
                line,
                text: text.trim_matches(['*', '!', ' ']).trim().to_string(),
                trailing: self.last_token_line == line,
            });
        }
    }

    /// Consumes a (possibly escaped) double-quoted string body after the
    /// opening quote, honouring `hashes` trailing `#`s for raw strings
    /// (0 = normal string with escapes).
    fn string_body(&mut self, hashes: usize) {
        if hashes == 0 {
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '"' => return,
                    _ => {}
                }
            }
        } else {
            // Raw string: ends at `"` followed by `hashes` `#`s.
            while let Some(c) = self.bump() {
                if c == '"' {
                    let mut n = 0;
                    while n < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        n += 1;
                    }
                    if n == hashes {
                        return;
                    }
                }
            }
        }
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `b'..'`, `br#"..."#`.
    /// Returns false when the `r`/`b` starts a plain identifier.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let c0 = self.peek(0);
        let mut idx = 1;
        let mut raw = c0 == Some('r');
        if c0 == Some('b') {
            match self.peek(1) {
                Some('r') => {
                    raw = true;
                    idx = 2;
                }
                Some('"') => {
                    self.bump();
                    self.bump();
                    self.string_body(0);
                    self.push(Tok::Literal, line);
                    return true;
                }
                Some('\'') => {
                    self.bump(); // b
                    self.bump(); // '
                    if self.peek(0) == Some('\\') {
                        self.bump();
                        self.bump();
                    } else {
                        self.bump();
                    }
                    if self.peek(0) == Some('\'') {
                        self.bump();
                    }
                    self.push(Tok::Literal, line);
                    return true;
                }
                _ => return false,
            }
        }
        if !raw {
            return false;
        }
        // Count `#`s after the r/br prefix, then require a quote.
        let mut hashes = 0usize;
        while self.peek(idx + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(idx + hashes) != Some('"') {
            return false;
        }
        for _ in 0..(idx + hashes + 1) {
            self.bump();
        }
        self.string_body(hashes);
        self.push(Tok::Literal, line);
        true
    }

    /// Distinguishes `'a` (lifetime) from `'a'`/`'\n'` (char literal).
    fn lifetime_or_char(&mut self, line: u32) {
        self.bump(); // consume `'`
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Literal, line);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                if self.peek(1) == Some('\'') && c != '_' {
                    self.bump();
                    self.bump();
                    self.push(Tok::Literal, line);
                } else {
                    // Lifetime: consume the identifier.
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            _ => {
                // `'('`-style char literal of punctuation, or stray quote.
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(Tok::Literal, line);
                } else {
                    self.push(Tok::Punct('\''), line);
                }
            }
        }
    }

    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                self.bump();
            } else if (c == '+' || c == '-')
                && self
                    .chars
                    .get(self.pos.wrapping_sub(1))
                    .is_some_and(|p| *p == 'e' || *p == 'E')
            {
                self.bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let x = "foo.unwrap()"; y.unwrap();"#);
        let unwraps = l.tokens.iter().filter(|t| t.is_ident("unwrap")).count();
        assert_eq!(unwraps, 1, "string contents must not produce tokens");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex(r##"let s = r#"has "quotes" and unwrap()"#; s.len()"##);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.is_ident("len")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let l = lex(r#"let a = b"panic!()"; let c = b'x'; let d = b'\n'; tail"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(l.tokens.iter().any(|t| t.is_ident("tail")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count();
        let chars = l.tokens.iter().filter(|t| t.kind == Tok::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_char_literals() {
        let l = lex(r"let nl = '\n'; let q = '\''; let u = '\u{1F600}'; after");
        assert!(l.tokens.iter().any(|t| t.is_ident("after")));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == Tok::Literal).count(),
            3
        );
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let l = lex("x: &'static str, y: &'_ u8");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count(),
            2
        );
    }

    #[test]
    fn comments_are_captured_with_lines_and_position() {
        let src = "let a = 1; // trailing note\n// full line\nlet b = 2;\n/* boxed */ let c = 3;";
        let l = lex(src);
        assert_eq!(l.comments.len(), 3);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].trailing);
        assert_eq!(l.comments[0].text, "trailing note");
        assert_eq!(l.comments[1].line, 2);
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[2].line, 4);
        assert!(!l.comments[2].trailing, "block comment precedes the code");
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert!(l.tokens.iter().any(|t| t.is_ident("x")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("inner")));
        assert_eq!(idents("/* a */ b"), vec!["b"]);
    }

    #[test]
    fn line_numbers_are_exact() {
        let src = "a\nb\n\nc.unwrap()";
        let l = lex(src);
        let unwrap = l.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 4);
    }

    #[test]
    fn numbers_with_suffixes_ranges_and_exponents() {
        let l = lex("0..10; 1.5e-3f64; 0xFF_u8; v[1]");
        // Ranges keep their dots as punctuation; `v` survives.
        assert!(l.tokens.iter().any(|t| t.is_ident("v")));
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "range dots are punctuation");
    }

    #[test]
    fn idents_lex_whole() {
        assert_eq!(
            idents("let unwrap_or_else = unwrap"),
            vec!["let", "unwrap_or_else", "unwrap"]
        );
    }

    #[test]
    fn multi_hash_raw_strings_hide_inner_terminators() {
        // The inner `"#` must not close an `r##"..."##` string.
        let l = lex("let s = r##\"inner \"# quote, unwrap()\"##; tail.unwrap()");
        let unwraps = l.tokens.iter().filter(|t| t.is_ident("unwrap")).count();
        assert_eq!(unwraps, 1, "only the code unwrap survives");
        assert!(l.tokens.iter().any(|t| t.is_ident("tail")));
    }

    #[test]
    fn raw_strings_hide_comment_markers() {
        let l = lex("let s = r#\"// not a comment /* nor this */\"#; after");
        assert!(l.comments.is_empty(), "{:?}", l.comments);
        assert!(l.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn byte_raw_strings_hide_their_contents() {
        let l = lex("let s = br#\"panic!()\"#; tail");
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(l.tokens.iter().any(|t| t.is_ident("tail")));
    }

    #[test]
    fn block_comment_hides_string_quotes() {
        // An odd number of quotes inside a comment must not open a string.
        let l = lex("/* \"unterminated */ let x = 1;");
        assert!(l.tokens.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn deeply_nested_block_comments_balance() {
        let l = lex("/* 1 /* 2 /* 3 */ 2 */ 1 */ survivor");
        assert_eq!(
            idents("/* 1 /* 2 /* 3 */ 2 */ 1 */ survivor"),
            vec!["survivor"]
        );
        assert!(!l.tokens.iter().any(|t| t.is_ident("1")));
    }

    #[test]
    fn unterminated_block_comment_stops_cleanly() {
        let l = lex("let a = 1; /* runs off the end of the file");
        assert!(l.tokens.iter().any(|t| t.is_ident("a")));
    }

    #[test]
    fn turbofish_lexes_as_punctuation() {
        let l = lex("v.iter().collect::<Vec<_>>(); done");
        assert!(l.tokens.iter().any(|t| t.is_ident("collect")));
        assert!(l.tokens.iter().any(|t| t.is_ident("Vec")));
        assert!(l.tokens.iter().any(|t| t.is_ident("done")));
        // No lifetime/char confusion from the angle brackets.
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count(),
            0
        );
    }

    #[test]
    fn loop_labels_are_lifetimes_not_chars() {
        let l = lex("'outer: loop { break 'outer; }");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count(),
            2
        );
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == Tok::Literal).count(),
            0
        );
    }

    #[test]
    fn long_lifetimes_next_to_char_matches() {
        let l = lex("fn g<'long_name, T>(x: &'long_name T) { match c { 'b' => {} '\\n' => {} } }");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count(),
            2
        );
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == Tok::Literal).count(),
            2
        );
    }
}
