//! CLI for anomex-analyze.
//!
//! ```text
//! anomex-analyze [--check] [--write-baseline] [--list-rules]
//!                [--baseline <file>] [--lock-order <file>]
//!                [--format <text|json>] [--cache <file> | --no-cache]
//!                [paths...]
//! ```
//!
//! With no paths, the workspace rooted at the current directory is
//! analyzed (the fixture corpus under `crates/analyze/fixtures/` is
//! skipped unless a fixtures path is given explicitly). Default mode
//! reports and exits 0; `--check` exits 1 when any finding is not
//! covered by the baseline — that is the CI gate.
//!
//! Whole-workspace runs keep a per-file summary cache (default
//! `target/analyze-cache.txt`) keyed by content fingerprint, so warm
//! runs re-lex only changed files; `--no-cache` forces a cold run.
//! `--format json` emits the machine-readable report CI archives.

use anomex_analyze::baseline::Baseline;
use anomex_analyze::lock_order::{LockOrder, DEFAULT_MANIFEST};
use anomex_analyze::rules::{all_rules, Finding};
use anomex_analyze::walk::rust_files;
use anomex_analyze::{analyze_workspace, Analysis};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    check: bool,
    write_baseline: bool,
    list_rules: bool,
    json: bool,
    no_cache: bool,
    cache: Option<PathBuf>,
    baseline: PathBuf,
    lock_order: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

const USAGE: &str = "usage: anomex-analyze [--check] [--write-baseline] [--list-rules] \
                     [--baseline <file>] [--lock-order <file>] [--format <text|json>] \
                     [--cache <file> | --no-cache] [paths...]";

fn parse_opts(mut args: std::env::Args) -> Result<Opts, String> {
    let _argv0 = args.next();
    let mut opts = Opts {
        check: false,
        write_baseline: false,
        list_rules: false,
        json: false,
        no_cache: false,
        cache: None,
        baseline: PathBuf::from("analyze-baseline.txt"),
        lock_order: None,
        paths: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--no-cache" => opts.no_cache = true,
            "--format" => {
                opts.json = match args.next().as_deref() {
                    Some("json") => true,
                    Some("text") => false,
                    _ => return Err("--format needs 'text' or 'json'".into()),
                };
            }
            "--cache" => {
                opts.cache = Some(PathBuf::from(args.next().ok_or("--cache needs a file")?));
            }
            "--baseline" => {
                opts.baseline = PathBuf::from(args.next().ok_or("--baseline needs a file")?);
            }
            "--lock-order" => {
                opts.lock_order = Some(PathBuf::from(
                    args.next().ok_or("--lock-order needs a file")?,
                ));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'\n{USAGE}"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    Ok(opts)
}

/// Files to analyze: the union over the requested roots, with report
/// paths prefixed by each root so per-crate rule scoping (which matches
/// on workspace-relative paths) works for sub-tree invocations too.
fn gather(paths: &[PathBuf]) -> Result<Vec<(String, PathBuf)>, String> {
    let roots: Vec<PathBuf> = if paths.is_empty() {
        vec![PathBuf::from(".")]
    } else {
        paths.to_vec()
    };
    let mut out = Vec::new();
    for root in &roots {
        let root_str = root.to_string_lossy().replace('\\', "/");
        let prefix = match root_str.trim_end_matches('/') {
            "." | "" => String::new(),
            other => format!("{other}/"),
        };
        if root.is_file() {
            let rel = root_str.trim_start_matches("./").to_string();
            out.push((rel, root.clone()));
            continue;
        }
        for (rel, path) in rust_files(root)? {
            let rel = format!("{prefix}{rel}");
            // The seeded-violation corpus only runs when asked for
            // explicitly; the workspace gate must stay green.
            if prefix.is_empty() && rel.contains("crates/analyze/fixtures/") {
                continue;
            }
            out.push((rel, path));
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(
    analysis: &Analysis,
    fresh: &[Finding],
    grandfathered: usize,
    check_failed: bool,
) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in fresh.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"fingerprint\": \"{:016x}\", \"message\": \"{}\", \"snippet\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            f.fingerprint(),
            json_escape(&f.message),
            json_escape(&f.snippet)
        ));
    }
    if !fresh.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"counts\": {{\"files\": {}, \"new\": {}, \"grandfathered\": {}, \
         \"suppressed\": {}, \"cache_hits\": {}}},\n  \"check_failed\": {}\n}}\n",
        analysis.files,
        fresh.len(),
        grandfathered,
        analysis.suppressed,
        analysis.cache_hits,
        check_failed
    ));
    out
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_opts(std::env::args())?;

    let manifest_text = match &opts.lock_order {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?
        }
        None => DEFAULT_MANIFEST.to_string(),
    };
    let manifest = LockOrder::parse(&manifest_text).map_err(|e| e.to_string())?;
    let rules = all_rules(manifest.clone());

    if opts.list_rules {
        for rule in &rules {
            println!("{:<16} {}", rule.id(), rule.description());
        }
        for (id, desc) in anomex_analyze::callgraph::INTERPROCEDURAL_RULES {
            println!("{id:<16} {desc}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    // The summary cache defaults on only for whole-workspace runs —
    // sub-tree invocations would poison it with prefix-less paths.
    let cache: Option<PathBuf> = if opts.no_cache {
        None
    } else if opts.cache.is_some() {
        opts.cache.clone()
    } else if opts.paths.is_empty() {
        Some(PathBuf::from("target/analyze-cache.txt"))
    } else {
        None
    };

    let files = gather(&opts.paths)?;
    let analysis: Analysis = analyze_workspace(&files, &rules, &manifest, cache.as_deref())?;

    if opts.write_baseline {
        let b = Baseline::from_findings(&analysis.findings);
        std::fs::write(&opts.baseline, b.render())
            .map_err(|e| format!("write {}: {e}", opts.baseline.display()))?;
        println!(
            "wrote {} ({} grandfathered finding(s) across {} file(s))",
            opts.baseline.display(),
            b.total(),
            analysis.files
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = if opts.baseline.exists() {
        Baseline::parse(
            &std::fs::read_to_string(&opts.baseline)
                .map_err(|e| format!("read {}: {e}", opts.baseline.display()))?,
        )?
    } else {
        Baseline::default()
    };

    let suppressed = analysis.suppressed;
    let n_files = analysis.files;
    let cache_hits = analysis.cache_hits;
    let (fresh, grandfathered) = baseline.partition(analysis.findings);
    let check_failed = opts.check && !fresh.is_empty();

    if opts.json {
        let analysis_counts = Analysis {
            findings: Vec::new(),
            files: n_files,
            suppressed,
            cache_hits,
        };
        print!(
            "{}",
            render_json(&analysis_counts, &fresh, grandfathered.len(), check_failed)
        );
    } else {
        for f in &fresh {
            println!("{f}");
        }
        println!(
            "anomex-analyze: {} file(s), {} new finding(s), {} grandfathered, {} suppressed, \
             {} cached",
            n_files,
            fresh.len(),
            grandfathered.len(),
            suppressed,
            cache_hits
        );
    }
    if check_failed {
        eprintln!(
            "error: {} new finding(s) — fix them, add `// anomex: allow(<rule>) <reason>`, \
             or (for deliberate grandfathering) regenerate the baseline",
            fresh.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("anomex-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
