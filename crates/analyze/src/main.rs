//! CLI for anomex-analyze.
//!
//! ```text
//! anomex-analyze [--check] [--write-baseline] [--list-rules]
//!                [--baseline <file>] [--lock-order <file>] [paths...]
//! ```
//!
//! With no paths, the workspace rooted at the current directory is
//! analyzed (the fixture corpus under `crates/analyze/fixtures/` is
//! skipped unless a fixtures path is given explicitly). Default mode
//! reports and exits 0; `--check` exits 1 when any finding is not
//! covered by the baseline — that is the CI gate.

use anomex_analyze::baseline::Baseline;
use anomex_analyze::lock_order::{LockOrder, DEFAULT_MANIFEST};
use anomex_analyze::rules::all_rules;
use anomex_analyze::walk::rust_files;
use anomex_analyze::{analyze_files, Analysis};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    check: bool,
    write_baseline: bool,
    list_rules: bool,
    baseline: PathBuf,
    lock_order: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

const USAGE: &str = "usage: anomex-analyze [--check] [--write-baseline] [--list-rules] \
                     [--baseline <file>] [--lock-order <file>] [paths...]";

fn parse_opts(mut args: std::env::Args) -> Result<Opts, String> {
    let _argv0 = args.next();
    let mut opts = Opts {
        check: false,
        write_baseline: false,
        list_rules: false,
        baseline: PathBuf::from("analyze-baseline.txt"),
        lock_order: None,
        paths: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--baseline" => {
                opts.baseline = PathBuf::from(args.next().ok_or("--baseline needs a file")?);
            }
            "--lock-order" => {
                opts.lock_order = Some(PathBuf::from(
                    args.next().ok_or("--lock-order needs a file")?,
                ));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'\n{USAGE}"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    Ok(opts)
}

/// Files to analyze: the union over the requested roots, with report
/// paths prefixed by each root so per-crate rule scoping (which matches
/// on workspace-relative paths) works for sub-tree invocations too.
fn gather(paths: &[PathBuf]) -> Result<Vec<(String, PathBuf)>, String> {
    let roots: Vec<PathBuf> = if paths.is_empty() {
        vec![PathBuf::from(".")]
    } else {
        paths.to_vec()
    };
    let mut out = Vec::new();
    for root in &roots {
        let root_str = root.to_string_lossy().replace('\\', "/");
        let prefix = match root_str.trim_end_matches('/') {
            "." | "" => String::new(),
            other => format!("{other}/"),
        };
        if root.is_file() {
            let rel = root_str.trim_start_matches("./").to_string();
            out.push((rel, root.clone()));
            continue;
        }
        for (rel, path) in rust_files(root)? {
            let rel = format!("{prefix}{rel}");
            // The seeded-violation corpus only runs when asked for
            // explicitly; the workspace gate must stay green.
            if prefix.is_empty() && rel.contains("crates/analyze/fixtures/") {
                continue;
            }
            out.push((rel, path));
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_opts(std::env::args())?;

    let manifest_text = match &opts.lock_order {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?
        }
        None => DEFAULT_MANIFEST.to_string(),
    };
    let manifest = LockOrder::parse(&manifest_text).map_err(|e| e.to_string())?;
    let rules = all_rules(manifest);

    if opts.list_rules {
        for rule in &rules {
            println!("{:<16} {}", rule.id(), rule.description());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let files = gather(&opts.paths)?;
    let analysis: Analysis = analyze_files(&files, &rules)?;

    if opts.write_baseline {
        let b = Baseline::from_findings(&analysis.findings);
        std::fs::write(&opts.baseline, b.render())
            .map_err(|e| format!("write {}: {e}", opts.baseline.display()))?;
        println!(
            "wrote {} ({} grandfathered finding(s) across {} file(s))",
            opts.baseline.display(),
            b.total(),
            analysis.files
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = if opts.baseline.exists() {
        Baseline::parse(
            &std::fs::read_to_string(&opts.baseline)
                .map_err(|e| format!("read {}: {e}", opts.baseline.display()))?,
        )?
    } else {
        Baseline::default()
    };

    let suppressed = analysis.suppressed;
    let n_files = analysis.files;
    let (fresh, grandfathered) = baseline.partition(analysis.findings);

    for f in &fresh {
        println!("{f}");
    }
    println!(
        "anomex-analyze: {} file(s), {} new finding(s), {} grandfathered, {} suppressed",
        n_files,
        fresh.len(),
        grandfathered.len(),
        suppressed
    );
    if opts.check && !fresh.is_empty() {
        eprintln!(
            "error: {} new finding(s) — fix them, add `// anomex: allow(<rule>) <reason>`, \
             or (for deliberate grandfathering) regenerate the baseline",
            fresh.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("anomex-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
