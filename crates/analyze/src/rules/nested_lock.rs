//! `nested-lock`: flags a lock acquisition while another known lock is
//! held, unless the pair follows the declared ordering manifest.
//!
//! Lexical model: a **guard** becomes live at a `.lock()` / `.read()` /
//! `.write()` (zero-argument) call or a `lock(&...)` helper call, and
//! dies when
//!
//! * the binding's enclosing block closes (brace depth drops below the
//!   depth at acquisition),
//! * the guard variable is passed to `drop(...)`, or
//! * for guards never bound by `let`, the statement ends (`;` at the
//!   acquisition depth) — matching Rust's temporary lifetimes closely
//!   enough for linting.
//!
//! Every acquisition while guards are live is checked against the
//! [`LockOrder`] manifest: the held class must be strictly
//! earlier-ordered than the acquired class, and both must be known.
//! Condvar `wait` calls keep the guard held (they reacquire before
//! returning), which the model gets right for free by never treating
//! `wait` as a release.

use crate::lock_order::LockOrder;
use crate::rules::{finding_at, receiver_chain, Finding, Rule};
use crate::source::SourceFile;

/// See the [module docs](self).
pub struct NestedLock {
    manifest: LockOrder,
}

impl NestedLock {
    /// A rule checking against `manifest`.
    #[must_use]
    pub fn new(manifest: LockOrder) -> Self {
        NestedLock { manifest }
    }
}

#[derive(Debug)]
struct Guard {
    /// Manifest class, or `None` when the manifest does not know it.
    class: Option<String>,
    /// Receiver description for messages (`self.shards`, `slot.state`).
    desc: String,
    /// `let`-bound variable name, when the statement binds one.
    var: Option<String>,
    /// Brace depth at acquisition.
    depth: usize,
    /// Line of acquisition.
    line: u32,
    /// Temporary guards (no `let`) die at the statement's `;`.
    temporary: bool,
}

impl Rule for NestedLock {
    fn id(&self) -> &'static str {
        "nested-lock"
    }

    fn description(&self) -> &'static str {
        "lock acquired while another known lock is held, violating the declared lock order"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let toks = &file.tokens;
        let mut findings = Vec::new();
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 0usize;
        // `let <name> =` seen in the current statement, at which depth.
        let mut pending_let: Option<(String, usize)> = None;

        for i in 0..toks.len() {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
                continue;
            }
            if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                if pending_let.as_ref().is_some_and(|(_, d)| *d > depth) {
                    pending_let = None;
                }
                continue;
            }
            if t.is_punct(';') {
                guards.retain(|g| !(g.temporary && g.depth == depth));
                pending_let = None;
                continue;
            }
            if t.is_ident("let") {
                // `let [mut] name` — remember the binding target.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = toks.get(j).and_then(|t| t.ident()) {
                    pending_let = Some((name.to_string(), depth));
                }
                continue;
            }
            // `drop(name)` / `mem::drop(name)` releases a named guard.
            if t.is_ident("drop")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                if let Some(name) = toks.get(i + 2).and_then(|t| t.ident()) {
                    guards.retain(|g| g.var.as_deref() != Some(name));
                }
                continue;
            }

            let Some(acq) = acquisition(file, i) else {
                continue;
            };
            let class = self
                .manifest
                .classify(&file.path, acq.receiver_last.as_str())
                .map(str::to_string);
            for held in &guards {
                let ok = match (&held.class, &class) {
                    (Some(h), Some(n)) => self.manifest.allows(h, n),
                    // A nesting involving a lock the manifest cannot
                    // name can never be proven ordered.
                    _ => false,
                };
                if !ok {
                    let held_name = held
                        .class
                        .clone()
                        .unwrap_or_else(|| format!("unclassified '{}'", held.desc));
                    let new_name = class
                        .clone()
                        .unwrap_or_else(|| format!("unclassified '{}'", acq.desc));
                    findings.push(finding_at(
                        file,
                        self.id(),
                        i,
                        format!(
                            "lock {new_name} acquired while {held_name} (line {}) is held — \
                             not a declared ordering; see crates/analyze/lock_order.txt",
                            held.line
                        ),
                    ));
                }
            }
            guards.push(Guard {
                class,
                desc: acq.desc,
                var: pending_let.as_ref().map(|(n, _)| n.clone()),
                depth,
                line: t.line,
                temporary: pending_let.is_none(),
            });
        }
        findings
    }
}

/// A recognized lock acquisition (also consumed by the symbol
/// extractor, which feeds the interprocedural lock-set pass).
pub(crate) struct Acquisition {
    pub(crate) receiver_last: String,
    pub(crate) desc: String,
}

/// Recognizes a lock acquisition at token `i`:
/// `<chain>.lock()`, `<chain>.read()`, `<chain>.write()` (zero-arg
/// calls only, so `io::Read::read(&mut buf)` never matches), or the
/// workspace's `lock(&<chain>)` poison-recovering helper.
pub(crate) fn acquisition(file: &SourceFile, i: usize) -> Option<Acquisition> {
    let toks = &file.tokens;
    let t = &toks[i];
    let name = t.ident()?;
    let after_open = toks.get(i + 1)?.is_punct('(');
    match name {
        "lock" | "read" | "write" if after_open => {
            let is_method = i > 0 && toks[i - 1].is_punct('.');
            if is_method {
                // Zero-argument call only.
                if !toks.get(i + 2)?.is_punct(')') {
                    return None;
                }
                let chain = receiver_chain(file, i);
                let last = chain.last()?.clone();
                // `stdout().lock()` / `stdin.lock()` are stdio handle
                // locks, not workspace sync primitives.
                if matches!(last.as_str(), "stdin" | "stdout" | "stderr") {
                    return None;
                }
                Some(Acquisition {
                    desc: format!("{}.{name}()", chain.join(".")),
                    receiver_last: last,
                })
            } else if name == "lock" {
                // Free helper: `lock(&self.map)` — receiver is the last
                // ident before the closing paren of the first argument.
                let mut j = i + 2;
                let mut depth = 1usize;
                let mut last_ident: Option<String> = None;
                let mut chain: Vec<String> = Vec::new();
                while let Some(t) = toks.get(j) {
                    if t.is_punct('(') {
                        depth += 1;
                    } else if t.is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if let Some(id) = t.ident() {
                        if depth == 1 {
                            last_ident = Some(id.to_string());
                            chain.push(id.to_string());
                        }
                    }
                    j += 1;
                }
                let last = last_ident?;
                Some(Acquisition {
                    desc: format!("lock(&{})", chain.join(".")),
                    receiver_last: last,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use crate::lock_order::LockOrder;

    const MANIFEST: &str = "\
class coarse  x.rs  map,outer
class fine    x.rs  state
order coarse fine
";

    fn run(src: &str) -> Vec<Finding> {
        let rule = NestedLock::new(LockOrder::parse(MANIFEST).unwrap());
        rule.check(&SourceFile::parse("x.rs", src))
    }

    #[test]
    fn declared_order_is_clean() {
        let src = "\
fn ok(&self) {
    let m = self.map.lock();
    let s = slot.state.lock();
    use_both(m, s);
}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn reversed_order_is_flagged() {
        let src = "\
fn bad(&self) {
    let s = slot.state.lock();
    let m = self.map.lock();
}";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("coarse"), "{}", f[0].message);
        assert!(f[0].message.contains("fine"), "{}", f[0].message);
    }

    #[test]
    fn same_class_reacquisition_is_flagged() {
        let src = "fn bad(&self) { let a = self.map.lock(); let b = other.map.lock(); }";
        assert_eq!(run(src).len(), 1, "self-deadlock risk");
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "\
fn ok(&self) {
    let s = slot.state.lock();
    drop(s);
    let m = self.map.lock();
}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn block_scope_releases_the_guard() {
        let src = "\
fn ok(&self) {
    {
        let s = slot.state.lock();
    }
    let m = self.map.lock();
}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "\
fn ok(&self) {
    *lock(&slot.state) = Done;
    let m = self.map.lock();
}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn free_lock_helper_is_recognized() {
        let src = "\
fn bad(&self) {
    let s = lock(&slot.state);
    let m = lock(&self.map);
}";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn unknown_lock_nested_is_flagged() {
        let src = "\
fn bad(&self) {
    let m = self.map.lock();
    let q = self.mystery.lock();
}";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unclassified"), "{}", f[0].message);
    }

    #[test]
    fn io_read_write_with_args_is_not_a_lock() {
        let src = "\
fn ok(&self) {
    let m = self.map.lock();
    out.write(buf);
    file.read(&mut buf);
}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn rwlock_read_write_are_locks() {
        let src = "\
fn bad(&self) {
    let s = slot.state.read();
    let m = self.map.write();
}";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn sequential_locks_in_sibling_statements_are_clean() {
        let src = "\
fn ok(&self) {
    let n = { let m = self.map.lock(); m.len() };
    let s = slot.state.lock();
    let m2 = self.map.lock();
}";
        // m dies at its block's close; s then m2 violates (fine before
        // coarse), so exactly one finding.
        assert_eq!(run(src).len(), 1);
    }
}
