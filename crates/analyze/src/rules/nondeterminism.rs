//! `nondeterminism`: sources of run-to-run variation in code whose
//! outputs the paper's tables depend on.
//!
//! Three sub-checks:
//!
//! * **Hash-order iteration** — iterating a `HashMap`/`HashSet` (or the
//!   workspace's `FxHashMap`/`FxHashSet`) observes hasher/insertion
//!   order; anything feeding reports, rankings, or serialized output
//!   must iterate a `BTreeMap` or sort first. The rule tracks local
//!   bindings and struct fields declared with a hash type and flags
//!   `for`-loops and ordered-iteration adapters over them. Keyed
//!   lookups (`get`/`insert`/`contains_key`) are fine and not flagged.
//! * **Wall-clock in pure compute** — `Instant::now`/`SystemTime` in
//!   the numeric crates (`stats`, `dataset`, `detectors`, `core`): pure
//!   score computation must be a function of its inputs. Engine
//!   telemetry is the one sanctioned exception (suppressed inline).
//! * **Entropy-seeded RNG** — `thread_rng`/`from_entropy`/
//!   `rand::random` anywhere: every stochastic component must take an
//!   explicit seed.

use crate::lexer::Tok;
use crate::rules::{finding_at, in_fixtures, Finding, Rule};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// See the [module docs](self).
pub struct Nondeterminism;

/// Crates whose compute must not read the clock. `spec` is here
/// because canonical encodings and fingerprints must be pure functions
/// of the spec value — a clock read anywhere would break the
/// same-spec-same-fingerprint contract.
const PURE_COMPUTE: [&str; 5] = [
    "crates/stats/src/",
    "crates/dataset/src/",
    "crates/detectors/src/",
    "crates/core/src/",
    "crates/spec/src/",
];

const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Iteration adapters whose order is observable.
const ORDERED_ITERATION: [&str; 6] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
];

impl Rule for Nondeterminism {
    fn id(&self) -> &'static str {
        "nondeterminism"
    }

    fn description(&self) -> &'static str {
        "hash-order iteration, wall-clock in pure compute, or entropy-seeded RNG"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        let hash_bound = hash_bound_names(file);
        let clock_scoped =
            in_fixtures(&file.path) || PURE_COMPUTE.iter().any(|p| file.path.contains(p));
        let toks = &file.tokens;
        // `use std::time::Instant;` is not a clock read — track whether
        // the scan is inside a `use` declaration.
        let mut in_use = false;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.is_punct(';') {
                in_use = false;
                continue;
            }
            let Some(name) = t.ident() else { continue };
            if name == "use" {
                in_use = true;
                continue;
            }
            match name {
                // -- wall clock ------------------------------------------------
                "Instant" | "SystemTime" if clock_scoped && !in_use => {
                    out.push(finding_at(
                        file,
                        self.id(),
                        i,
                        format!(
                            "{name} in pure compute — results must be a function of \
                             inputs alone (telemetry layers may suppress with a reason)"
                        ),
                    ));
                }
                // -- entropy-seeded RNG ---------------------------------------
                "thread_rng" | "from_entropy" => {
                    out.push(finding_at(
                        file,
                        self.id(),
                        i,
                        format!("{name} is entropy-seeded — take an explicit seed instead"),
                    ));
                }
                // -- hash iteration: `for .. in <chain over hash binding>` ----
                "for" => {
                    if let Some((idx, ident)) = for_loop_hash_receiver(file, i, &hash_bound) {
                        out.push(finding_at(
                            file,
                            self.id(),
                            idx,
                            format!(
                                "iterating hash-ordered '{ident}' — order is not \
                                 deterministic; use BTreeMap/BTreeSet or sort first"
                            ),
                        ));
                    }
                }
                // -- hash iteration: `binding.iter()` adapters ----------------
                _ if hash_bound.contains(name) => {
                    if let Some(m) = toks.get(i + 1).and_then(|d| {
                        d.is_punct('.')
                            .then(|| toks.get(i + 2))
                            .flatten()
                            .and_then(|t| t.ident())
                    }) {
                        if ORDERED_ITERATION.contains(&m)
                            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
                        {
                            out.push(finding_at(
                                file,
                                self.id(),
                                i + 2,
                                format!(
                                    "'{name}.{m}()' iterates in hash order — not \
                                     deterministic; use BTreeMap/BTreeSet or sort first"
                                ),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }
}

/// Names bound to hash-ordered containers in this file: struct fields
/// and let-bindings whose type annotation or initializer mentions a
/// hash type.
fn hash_bound_names(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        // `name: [path::]HashMap<..>` — struct field or annotated let.
        if t.is_punct(':') && i > 0 {
            if let Some(name) = toks[i - 1].ident() {
                // Skip reference sigils (`&`, `&mut`, lifetimes), then
                // walk a path of `ident ::` segments to the type head.
                let mut j = i + 1;
                while toks.get(j).is_some_and(|t| {
                    t.is_punct('&') || t.is_ident("mut") || matches!(t.kind, Tok::Lifetime)
                }) {
                    j += 1;
                }
                let mut hops = 0;
                while hops < 8 {
                    let Some(tj) = toks.get(j) else { break };
                    let Some(id) = tj.ident() else { break };
                    if HASH_TYPES.contains(&id) {
                        names.insert(name.to_string());
                        break;
                    }
                    // Expect `::` to continue the path.
                    if toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                    {
                        j += 3;
                        hops += 1;
                    } else {
                        break;
                    }
                }
            }
        }
        // `let [mut] name = ... HashMap::new()/default()/with_capacity()`
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(|t| t.ident()) else {
                continue;
            };
            // Scan the statement (to `;`) for a hash-type constructor.
            let mut k = j + 1;
            while let Some(tk) = toks.get(k) {
                if tk.is_punct(';') {
                    break;
                }
                if let Some(id) = tk.ident() {
                    if HASH_TYPES.contains(&id) {
                        names.insert(name.to_string());
                        break;
                    }
                }
                k += 1;
            }
        }
    }
    names
}

/// For a `for` keyword at `i`, returns `(token index, name)` of the
/// iterated hash binding, if the `in`-expression's receiver chain ends
/// at one (ignoring `&`/`&mut` and trailing adapter calls).
fn for_loop_hash_receiver(
    file: &SourceFile,
    i: usize,
    hash_bound: &BTreeSet<String>,
) -> Option<(usize, String)> {
    let toks = &file.tokens;
    // Find `in` before the loop body `{` (patterns may contain idents,
    // including `in` never — `in` is reserved).
    let mut j = i + 1;
    let mut guard = 0;
    while guard < 64 {
        let t = toks.get(j)?;
        if t.is_ident("in") {
            break;
        }
        if t.is_punct('{') {
            return None;
        }
        j += 1;
        guard += 1;
    }
    // The iterated expression runs from `in` to the body `{`. Flag when
    // any segment is a hash-bound name and no sort/ordering call
    // intervenes (`.sorted()` does not exist in std; collecting to a
    // Vec and sorting happens in separate statements anyway).
    let mut k = j + 1;
    while let Some(t) = toks.get(k) {
        if t.is_punct('{') {
            break;
        }
        if let Some(id) = t.ident() {
            if hash_bound.contains(id) {
                return Some((k, id.to_string()));
            }
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        Nondeterminism.check(&SourceFile::parse(path, src))
    }

    #[test]
    fn for_loop_over_hash_map_is_flagged() {
        let src = "\
let mut m: FxHashMap<String, usize> = FxHashMap::default();
for (k, v) in &m {
    emit(k, v);
}";
        let f = run("crates/eval/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn iteration_adapters_on_hash_bindings_are_flagged() {
        let src = "\
struct S { slots: HashMap<K, V> }
fn f(s: &S, slots: &HashMap<K, V>) {
    let keys: Vec<_> = slots.keys().collect();
}";
        let f = run("crates/serve/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("slots.keys()"), "{}", f[0].message);
    }

    #[test]
    fn keyed_access_is_not_flagged() {
        let src = "\
let mut m = HashMap::new();
m.insert(k, v);
let x = m.get(&k);
if m.contains_key(&k) { m.remove(&k); }";
        assert!(run("crates/eval/src/x.rs", src).is_empty());
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "let m: BTreeMap<K, V> = BTreeMap::new();\nfor (k, v) in &m { emit(k); }";
        assert!(run("crates/eval/src/x.rs", src).is_empty());
    }

    #[test]
    fn use_declarations_are_not_clock_reads() {
        let src = "use std::time::{Duration, Instant};\nfn f() -> Duration { d }";
        assert!(run("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn clock_flagged_only_in_pure_compute() {
        let src = "let t0 = Instant::now();";
        assert_eq!(run("crates/core/src/engine.rs", src).len(), 1);
        assert_eq!(run("crates/detectors/src/lof.rs", src).len(), 1);
        assert_eq!(
            run("crates/spec/src/pipeline.rs", src).len(),
            1,
            "fingerprints must be pure functions of the spec"
        );
        assert!(
            run("crates/serve/src/batch.rs", src).is_empty(),
            "serve timing is the scheduler's job"
        );
        assert!(run("crates/eval/src/runner.rs", src).is_empty());
    }

    /// The neighbor-index modules (kd-tree, LSH) are pure compute: the
    /// same data must yield the same table on every run, so both the
    /// clock rule and the entropy-RNG rule must cover them. The LSH
    /// index in particular seeds its hyperplanes from a fixed constant
    /// — an entropy seed there would make every fit irreproducible.
    #[test]
    fn neighbor_index_modules_are_pure_compute() {
        let clock = "let t0 = Instant::now();";
        assert_eq!(run("crates/detectors/src/approx.rs", clock).len(), 1);
        assert_eq!(run("crates/detectors/src/kdtree.rs", clock).len(), 1);
        assert_eq!(run("crates/detectors/src/knn.rs", clock).len(), 1);
        let entropy = "let mut rng = StdRng::from_entropy();";
        assert_eq!(
            run("crates/detectors/src/approx.rs", entropy).len(),
            1,
            "LSH hyperplane seeding must be deterministic"
        );
    }

    #[test]
    fn entropy_rng_is_flagged_everywhere() {
        let f = run(
            "crates/eval/src/x.rs",
            "let mut rng = thread_rng();\nlet r = StdRng::from_entropy();",
        );
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn unrelated_for_loops_are_fine() {
        let src = "let v = vec![1, 2];\nfor x in &v { use_it(x); }\nfor i in 0..10 { f(i); }";
        assert!(run("crates/eval/src/x.rs", src).is_empty());
    }
}
