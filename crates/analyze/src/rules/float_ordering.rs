//! `float-ordering`: `partial_cmp` on score values.
//!
//! Every ranking in this workspace compares `f64` anomaly scores, and
//! `partial_cmp().unwrap()` panics the moment a NaN slips into a score
//! vector — exactly the degenerate-detector case the evaluation is
//! supposed to *measure*, not crash on. `f64::total_cmp` gives a total
//! order (NaN sorts last) and is what every existing sort site uses;
//! this rule keeps new code on the same footing by flagging any
//! `partial_cmp` mention in non-test code.

use crate::rules::{finding_at, Finding, Rule};
use crate::source::SourceFile;

/// See the [module docs](self).
pub struct FloatOrdering;

impl Rule for FloatOrdering {
    fn id(&self) -> &'static str {
        "float-ordering"
    }

    fn description(&self) -> &'static str {
        "partial_cmp in non-test code — use f64::total_cmp for NaN-safe ranking"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            if toks[i].is_ident("partial_cmp") {
                out.push(finding_at(
                    file,
                    self.id(),
                    i,
                    "partial_cmp returns None for NaN — rank with f64::total_cmp instead"
                        .to_string(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        FloatOrdering.check(&SourceFile::parse("crates/stats/src/rank.rs", src))
    }

    #[test]
    fn partial_cmp_is_flagged() {
        let f = run("scores.sort_by(|a, b| a.partial_cmp(b).unwrap());");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("total_cmp"));
    }

    #[test]
    fn qualified_partial_cmp_is_flagged() {
        let f = run("let o = f64::partial_cmp(&a, &b);");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn total_cmp_is_clean() {
        assert!(run("scores.sort_by(|a, b| a.total_cmp(b));").is_empty());
    }

    #[test]
    fn string_mention_is_not_flagged() {
        assert!(run("let s = \"partial_cmp\";").is_empty());
    }
}
