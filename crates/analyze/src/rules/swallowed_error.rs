//! `swallowed-error`: `let _ = ...;` discards in the serving stack.
//!
//! On the request/registry path a discarded `Result` hides fit
//! failures, dead client sockets and poisoned worker joins. Each
//! discard must either handle the error, forward it as a typed
//! protocol error, or carry an inline `anomex: allow(swallowed-error)`
//! with a reason (e.g. best-effort flush on the shutdown path).

use crate::rules::{finding_at, in_fixtures, Finding, Rule};
use crate::source::SourceFile;

/// See the [module docs](self).
pub struct SwallowedError;

/// The discard pattern is only policed where errors carry protocol
/// meaning; elsewhere `let _ =` is an accepted idiom.
const SCOPED: [&str; 1] = ["crates/serve/src/"];

impl Rule for SwallowedError {
    fn id(&self) -> &'static str {
        "swallowed-error"
    }

    fn description(&self) -> &'static str {
        "`let _ = ...` discard on the serve/registry path — handle or annotate"
    }

    fn applies_to(&self, path: &str) -> bool {
        in_fixtures(path) || SCOPED.iter().any(|p| path.contains(p))
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            if toks[i].is_ident("let")
                && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
            {
                out.push(finding_at(
                    file,
                    self.id(),
                    i,
                    "`let _ =` swallows the error — handle it, return it, or \
                     suppress with a reason"
                        .to_string(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        SwallowedError.check(&SourceFile::parse(path, src))
    }

    #[test]
    fn applies_only_to_serve_and_fixtures() {
        assert!(SwallowedError.applies_to("crates/serve/src/service.rs"));
        assert!(SwallowedError.applies_to("crates/analyze/fixtures/swallowed_error.rs"));
        assert!(!SwallowedError.applies_to("crates/eval/src/runner.rs"));
    }

    #[test]
    fn discard_is_flagged() {
        let f = run("crates/serve/src/x.rs", "let _ = stream.flush();");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn named_underscore_bindings_are_fine() {
        let src = "let _guard = m.lock();\nlet _unused = compute();";
        assert!(run("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn plain_lets_are_fine() {
        assert!(run("crates/serve/src/x.rs", "let x = f();").is_empty());
    }
}
