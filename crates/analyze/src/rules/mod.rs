//! The rule engine: rule trait, findings, and the shared token helpers
//! lexical rules are built from.

pub mod float_ordering;
pub mod nested_lock;
pub mod nondeterminism;
pub mod panic_path;
pub mod swallowed_error;

use crate::source::SourceFile;
use std::fmt;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`panic-path`, `nested-lock`, ...).
    pub rule: &'static str,
    /// File path relative to the analysis root.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Trimmed text of the offending line (fingerprint input).
    pub snippet: String,
}

impl Finding {
    /// Stable fingerprint of the finding, independent of the line
    /// *number* so baselines survive unrelated edits above the site:
    /// FNV-1a over (rule, whitespace-normalized snippet).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.rule.as_bytes());
        eat(&[0]);
        let mut last_space = false;
        for c in self.snippet.chars() {
            if c.is_whitespace() {
                if !last_space {
                    eat(b" ");
                }
                last_space = true;
            } else {
                let mut buf = [0u8; 4];
                eat(c.encode_utf8(&mut buf).as_bytes());
                last_space = false;
            }
        }
        h
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// A lint rule over one source file.
pub trait Rule {
    /// Stable rule id, usable in `anomex: allow(<id>)`.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Whether the rule runs on `path` (relative, `/`-separated).
    /// Fixture files (any path containing `fixtures/`) are always in
    /// scope so the corpus can exercise every rule.
    fn applies_to(&self, path: &str) -> bool {
        let _ = path;
        true
    }
    /// Produces raw findings. Test-region and suppression filtering is
    /// the engine's job, not the rule's.
    fn check(&self, file: &SourceFile) -> Vec<Finding>;
}

/// Whether `path` is inside the fixture corpus (always analyzable, so
/// seeded violations fire regardless of per-crate applicability).
#[must_use]
pub fn in_fixtures(path: &str) -> bool {
    path.contains("fixtures/") || path.starts_with("fixtures")
}

/// Extracts the receiver chain *identifiers* of a method call whose
/// method-name token sits at `idx` (i.e. tokens look like
/// `recv . method`). Walks back over `ident`, `.`, `self`, `?`, and
/// balanced `[...]`/`(...)` groups; returns identifiers outermost-first.
///
/// `self.shards[i].lock` → `["self", "shards"]`;
/// `p.state.lock` → `["p", "state"]`.
#[must_use]
pub fn receiver_chain(file: &SourceFile, idx: usize) -> Vec<String> {
    let toks = &file.tokens;
    let mut out: Vec<String> = Vec::new();
    // idx points at the method ident; idx-1 must be `.`.
    let mut i = match idx.checked_sub(1) {
        Some(d) if toks[d].is_punct('.') => d,
        _ => return out,
    };
    loop {
        // Before the `.`: a chain segment ends here.
        let Some(prev) = i.checked_sub(1) else { break };
        let t = &toks[prev];
        if t.is_punct(']') || t.is_punct(')') {
            // Skip the balanced group.
            let open = if t.is_punct(']') { '[' } else { '(' };
            let close = if t.is_punct(']') { ']' } else { ')' };
            let mut depth = 1usize;
            let mut j = prev;
            while depth > 0 {
                let Some(k) = j.checked_sub(1) else {
                    return out;
                };
                j = k;
                if toks[j].is_punct(close) {
                    depth += 1;
                } else if toks[j].is_punct(open) {
                    depth -= 1;
                }
            }
            i = j;
            // After skipping `[...]`, continue with what precedes it
            // (an ident for indexing, or nothing for a literal).
            let Some(p2) = i.checked_sub(1) else { break };
            if let Some(id) = toks[p2].ident() {
                out.push(id.to_string());
                i = p2;
            } else {
                break;
            }
        } else if let Some(id) = t.ident() {
            out.push(id.to_string());
            i = prev;
        } else if t.is_punct('?') {
            i = prev;
            continue;
        } else {
            break;
        }
        // Continue the chain only across `.`.
        match i.checked_sub(1) {
            Some(d) if toks[d].is_punct('.') => i = d,
            _ => break,
        }
    }
    out.reverse();
    out
}

/// Builds a finding at token `tok_idx` of `file`.
#[must_use]
pub fn finding_at(
    file: &SourceFile,
    rule: &'static str,
    tok_idx: usize,
    message: String,
) -> Finding {
    let line = file.tokens[tok_idx].line;
    Finding {
        rule,
        path: file.path.clone(),
        line,
        message,
        snippet: file.line(line).to_string(),
    }
}

/// All built-in rules, in reporting order.
#[must_use]
pub fn all_rules(lock_order: crate::lock_order::LockOrder) -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nested_lock::NestedLock::new(lock_order)),
        Box::new(panic_path::PanicPath),
        Box::new(nondeterminism::Nondeterminism),
        Box::new(float_ordering::FloatOrdering),
        Box::new(swallowed_error::SwallowedError),
    ]
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn fingerprint_ignores_indentation_and_line_number() {
        let a = Finding {
            rule: "panic-path",
            path: "a.rs".into(),
            line: 10,
            message: String::new(),
            snippet: "let x =   v.unwrap();".into(),
        };
        let mut b = a.clone();
        b.line = 99;
        b.snippet = "let x = v.unwrap();".into();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.rule = "nested-lock";
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn receiver_chains() {
        let f = SourceFile::parse(
            "x.rs",
            "self.shards[self.idx(key)].lock(); p.state.lock(); lock();",
        );
        let locks: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("lock"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            receiver_chain(&f, locks[0]),
            vec!["self".to_string(), "shards".to_string()]
        );
        assert_eq!(
            receiver_chain(&f, locks[1]),
            vec!["p".to_string(), "state".to_string()]
        );
        assert!(receiver_chain(&f, locks[2]).is_empty(), "free fn call");
    }
}
