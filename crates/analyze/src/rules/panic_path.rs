//! `panic-path`: panicking constructs in non-test code of the serving
//! and detector hot paths.
//!
//! A served request must never be able to take down a worker thread, and
//! detector kernels run under `catch_unwind` only at the outermost
//! batch layer — so `unwrap`/`expect`/`panic!`-family calls in `core`,
//! `serve` and `detectors` are findings. Pre-existing sites are
//! grandfathered in the committed baseline; new ones fail CI. In
//! `serve` (the request path proper) indexing expressions are also
//! flagged, since a malformed request must become a typed protocol
//! error, not an out-of-bounds panic.

use crate::lexer::Tok;
use crate::rules::{finding_at, in_fixtures, Finding, Rule};
use crate::source::SourceFile;

/// See the [module docs](self).
pub struct PanicPath;

/// Crates whose non-test code must not panic. `obs` is included: its
/// subscribers run inline on every instrumented hot path, so a panic
/// there takes the traced computation down with it. `spec` is included:
/// its parsers run on every served request line, so malformed specs
/// must come back as `Err`, never as a worker-killing panic. `reactor`
/// is included: the event loop is single-threaded, so one panic drops
/// every open connection at once, not just the offending request's.
pub const HOT_PATHS: [&str; 6] = [
    "crates/core/src/",
    "crates/serve/src/",
    "crates/detectors/src/",
    "crates/obs/src/",
    "crates/spec/src/",
    "crates/reactor/src/",
];

/// Paths where indexing expressions are additionally flagged. `spec`
/// and `obs` joined `serve`/`reactor` once their index arithmetic was
/// bounds-proofed: both run on every request (spec parses the line,
/// obs records the latency), so a stray `[i]` is a served panic. The
/// SIMD kernel module joined when it landed: its blocked inner loops
/// are written entirely with zip/slice patterns, and this gate keeps
/// unchecked indexing from creeping back into the hottest loops in
/// the codebase.
pub const STRICT_INDEX: [&str; 5] = [
    "crates/serve/src/",
    "crates/reactor/src/",
    "crates/spec/src/",
    "crates/obs/src/",
    "crates/detectors/src/simd.rs",
];

const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords after which a `[` opens a slice pattern, an array type, or
/// an array literal — never an indexing expression. The lexer folds
/// keywords into `Ident`, so without this list `let [a, b] = pair;`
/// and `&mut [f64]` parameters would read as indexing.
const NON_INDEX_KEYWORDS: [&str; 8] = ["let", "mut", "ref", "box", "in", "return", "else", "match"];

impl Rule for PanicPath {
    fn id(&self) -> &'static str {
        "panic-path"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic!-family (and indexing, in serve/reactor) on non-test hot paths"
    }

    fn applies_to(&self, path: &str) -> bool {
        in_fixtures(path) || HOT_PATHS.iter().any(|p| path.contains(p))
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let strict_index =
            in_fixtures(&file.path) || STRICT_INDEX.iter().any(|p| file.path.contains(p));
        let toks = &file.tokens;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if let Some(name) = t.ident() {
                let method = i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                if method && (name == "unwrap" || name == "expect") {
                    out.push(finding_at(
                        file,
                        self.id(),
                        i,
                        format!(
                            ".{name}() can panic on a hot path — return a typed error \
                             (or suppress with a reason if provably infallible)"
                        ),
                    ));
                } else if MACROS.contains(&name)
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                {
                    out.push(finding_at(
                        file,
                        self.id(),
                        i,
                        format!("{name}! aborts the worker — return a typed error instead"),
                    ));
                }
            } else if strict_index && t.is_punct('[') && i > 0 {
                // Indexing: `expr[...]` where expr ends in an identifier
                // or a closing bracket. Attributes (`#[...]`), macro
                // brackets (`vec![...]`) and types/patterns never match
                // because their previous token is punctuation.
                let prev = &toks[i - 1];
                let is_index = match &prev.kind {
                    Tok::Ident(name) => !NON_INDEX_KEYWORDS.contains(&name.as_str()),
                    _ => prev.is_punct(')') || prev.is_punct(']'),
                };
                if is_index {
                    out.push(finding_at(
                        file,
                        self.id(),
                        i,
                        "indexing can panic on the request path — validate and use .get()"
                            .to_string(),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        PanicPath.check(&SourceFile::parse(path, src))
    }

    #[test]
    fn applies_only_to_hot_paths_and_fixtures() {
        assert!(PanicPath.applies_to("crates/serve/src/service.rs"));
        assert!(PanicPath.applies_to("crates/core/src/engine.rs"));
        assert!(PanicPath.applies_to("crates/obs/src/registry.rs"));
        assert!(PanicPath.applies_to("crates/spec/src/detector.rs"));
        assert!(PanicPath.applies_to("crates/reactor/src/lib.rs"));
        assert!(PanicPath.applies_to("crates/analyze/fixtures/panic_path.rs"));
        assert!(!PanicPath.applies_to("crates/eval/src/report.rs"));
        assert!(!PanicPath.applies_to("crates/stats/src/rank.rs"));
    }

    #[test]
    fn unwrap_and_expect_methods_are_flagged() {
        let f = run(
            "crates/core/src/x.rs",
            "let a = v.unwrap();\nlet b = w.expect(\"msg\");",
        );
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let f = run(
            "crates/core/src/x.rs",
            "let a = v.unwrap_or(0);\nlet b = v.unwrap_or_else(f);\nlet c = v.unwrap_or_default();",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_family_macros_are_flagged() {
        let f = run(
            "crates/detectors/src/x.rs",
            "panic!(\"boom\");\nunreachable!();\ntodo!();\nunimplemented!();",
        );
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn free_fn_named_unwrap_is_not_flagged() {
        let f = run("crates/core/src/x.rs", "fn unwrap(x: u8) {} unwrap(3);");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn indexing_flagged_only_in_strict_crates() {
        let serve = run(
            "crates/serve/src/registry.rs",
            "let s = self.scores[point];",
        );
        assert_eq!(serve.len(), 1);
        let reactor = run("crates/reactor/src/lib.rs", "let b = buf[cursor];");
        assert_eq!(reactor.len(), 1);
        let spec = run("crates/spec/src/json.rs", "let b = bytes[pos];");
        assert_eq!(spec.len(), 1);
        let obs = run("crates/obs/src/registry.rs", "let b = buckets[i];");
        assert_eq!(obs.len(), 1);
        let simd = run("crates/detectors/src/simd.rs", "let v = cols[t];");
        assert_eq!(simd.len(), 1);
        let kernels = run("crates/detectors/src/kernels.rs", "let v = cols[t];");
        assert!(
            kernels.is_empty(),
            "only simd.rs is strict inside detectors: {kernels:?}"
        );
        let core = run("crates/core/src/x.rs", "let s = self.scores[point];");
        assert!(
            core.is_empty(),
            "indexing outside the strict crates is fine: {core:?}"
        );
    }

    #[test]
    fn attributes_macros_and_types_are_not_indexing() {
        let f = run(
            "crates/serve/src/x.rs",
            "#[derive(Debug)]\nlet v = vec![1, 2];\nlet t: [f64; 2] = [0.0, 0.0];",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn slicing_counts_as_indexing() {
        let f = run("crates/serve/src/x.rs", "let s = &rows[..k];");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn slice_patterns_and_array_types_are_not_indexing() {
        let f = run(
            "crates/serve/src/x.rs",
            "let [a, b] = pair;\nfn k(acc: &mut [f64], lanes: [f64; 4]) {}\nfor x in [1, 2] {}\nreturn [a, b];",
        );
        assert!(f.is_empty(), "{f:?}");
        // The keyword carve-out must not swallow real indexing.
        let g = run("crates/serve/src/x.rs", "let v = lanes[i];");
        assert_eq!(g.len(), 1);
    }
}
