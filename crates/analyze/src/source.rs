//! Per-file source model: tokens, line texts, `#[cfg(test)]`/`#[test]`
//! regions, and `// anomex: allow(rule)` suppressions.

use crate::lexer::{lex, Lexed, Token};
use std::collections::{BTreeMap, BTreeSet};

/// One analyzed source file.
pub struct SourceFile {
    /// Path relative to the analysis root, `/`-separated.
    pub path: String,
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Raw text of every line (1-based access via [`SourceFile::line`]).
    lines: Vec<String>,
    /// Lines inside test-only code (`#[cfg(test)]` items, `#[test]` fns).
    test_lines: Vec<bool>,
    /// Per-line suppressed rule ids from `anomex: allow(...)` comments.
    allows: BTreeMap<u32, BTreeSet<String>>,
}

impl SourceFile {
    /// Lexes and indexes one file.
    #[must_use]
    pub fn parse(path: &str, src: &str) -> Self {
        let lexed = lex(src);
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let n = lines.len();
        let test_lines = mark_test_lines(&lexed.tokens, n);
        let allows = collect_allows(&lexed);
        SourceFile {
            path: path.replace('\\', "/"),
            tokens: lexed.tokens,
            lines,
            test_lines,
            allows,
        }
    }

    /// The trimmed text of 1-based line `line` (empty when out of range).
    #[must_use]
    pub fn line(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map_or("", |s| s.trim())
    }

    /// Whether 1-based `line` is inside test-only code.
    #[must_use]
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Whether `rule` is suppressed on 1-based `line` by an
    /// `anomex: allow(...)` comment on that line or the one above it.
    #[must_use]
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|set| set.contains(rule) || set.contains("all"))
    }

    /// Number of `anomex: allow` comments in the file.
    #[must_use]
    pub fn n_allows(&self) -> usize {
        self.allows.len()
    }
}

/// Extracts `anomex: allow(rule-a, rule-b)` directives from comments and
/// resolves the line each one applies to: a trailing comment applies to
/// its own line; a standalone comment applies to the next line that has
/// code on it.
fn collect_allows(lexed: &Lexed) -> BTreeMap<u32, BTreeSet<String>> {
    // A standalone allow comment may precede further comment lines; the
    // directive then applies to the next *code* line.
    let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut allows: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for c in &lexed.comments {
        let Some(rules) = parse_allow(&c.text) else {
            continue;
        };
        let target = if c.trailing {
            c.line
        } else {
            code_lines
                .range(c.line + 1..)
                .next()
                .copied()
                .unwrap_or(c.line)
        };
        allows.entry(target).or_default().extend(rules);
    }
    allows
}

/// Parses `anomex: allow(a, b) optional free-text reason` from one
/// comment. Returns `None` when the comment is not a directive.
fn parse_allow(text: &str) -> Option<Vec<String>> {
    let rest = text.trim().strip_prefix("anomex:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let (list, _reason) = rest.split_once(')')?;
    let rules: Vec<String> = list
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Marks lines belonging to test-only items: any item annotated
/// `#[cfg(test)]` (typically `mod unit_tests { ... }`) or `#[test]`.
/// Tracks from the attribute through the item's closing brace (or
/// terminating semicolon for brace-less items).
fn mark_test_lines(tokens: &[Token], n_lines: usize) -> Vec<bool> {
    let mut test = vec![false; n_lines];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = test_attr_end(tokens, i) {
            let start_line = tokens[i].line;
            let end_line = item_end_line(tokens, attr_end);
            for line in start_line..=end_line {
                if let Some(slot) = test.get_mut(line.saturating_sub(1) as usize) {
                    *slot = true;
                }
            }
            // Resume after the item so nested `#[test]`s inside a
            // `#[cfg(test)] mod` don't restart the scan needlessly.
            while i < tokens.len() && tokens[i].line <= end_line {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    test
}

/// If tokens at `i` start a `#[cfg(test)]`/`#[cfg(all(test, ...))]` or
/// `#[test]` attribute, returns the index one past its closing `]`.
fn test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    // Find the matching `]` (attributes may nest brackets in cfg exprs).
    let mut depth = 1usize;
    let mut j = i + 2;
    let mut is_test = false;
    let mut head: Option<&str> = None;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
        } else if let Some(id) = t.ident() {
            if head.is_none() {
                head = Some(id);
            }
            if id == "test" {
                is_test = true;
            }
        }
        j += 1;
    }
    // Only `#[test]` itself or a cfg-family attribute mentioning `test`
    // marks a test item; `#[cfg(feature = "test-utils")]` has no bare
    // `test` ident, and `should_panic` without `test` does not count.
    match head {
        Some("test") => Some(j),
        Some("cfg" | "cfg_attr") if is_test => Some(j),
        _ => None,
    }
}

/// The last line of the item following an attribute at token index `i`:
/// scans past further attributes, then to the item's matching closing
/// brace (or `;` for brace-less items like `use`).
fn item_end_line(tokens: &[Token], mut i: usize) -> u32 {
    // Skip consecutive attributes.
    while i + 1 < tokens.len() && tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
        let mut depth = 1usize;
        let mut j = i + 2;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
            }
            j += 1;
        }
        i = j;
    }
    let mut depth = 0usize;
    let mut entered = false;
    let mut last_line = tokens.get(i).map_or(0, |t| t.line);
    while i < tokens.len() {
        let t = &tokens[i];
        last_line = t.line;
        if t.is_punct('{') {
            depth += 1;
            entered = true;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if entered && depth == 0 {
                return t.line;
            }
        } else if t.is_punct(';') && !entered && depth == 0 {
            return t.line;
        }
        i += 1;
    }
    last_line
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn allow_applies_to_its_own_line_when_trailing() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = v.unwrap(); // anomex: allow(panic-path) startup only\nlet b = 0;",
        );
        assert!(f.is_suppressed("panic-path", 1));
        assert!(!f.is_suppressed("panic-path", 2));
        assert!(!f.is_suppressed("nondeterminism", 1));
    }

    #[test]
    fn standalone_allow_applies_to_next_code_line() {
        let src = "\
// anomex: allow(swallowed-error, panic-path) shutdown path
// more prose in between
let _ = worker.join();
let _ = other.join();";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_suppressed("swallowed-error", 3));
        assert!(f.is_suppressed("panic-path", 3));
        assert!(!f.is_suppressed("swallowed-error", 4));
    }

    #[test]
    fn allow_all_suppresses_everything() {
        let f = SourceFile::parse("x.rs", "foo(); // anomex: allow(all)");
        assert!(f.is_suppressed("panic-path", 1));
        assert!(f.is_suppressed("anything", 1));
    }

    #[test]
    fn non_directive_comments_are_ignored() {
        let f = SourceFile::parse(
            "x.rs",
            "// allow(panic-path) without the prefix\nlet x = 1;",
        );
        assert!(!f.is_suppressed("panic-path", 2));
        assert_eq!(f.n_allows(), 0);
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "\
fn real() { v.unwrap(); }

#[cfg(test)]
mod unit_tests {
    #[test]
    fn t() {
        v.unwrap();
    }
}

fn after() {}";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3), "attribute line");
        assert!(f.is_test_line(7), "body of nested test fn");
        assert!(f.is_test_line(9), "closing brace");
        assert!(!f.is_test_line(11), "code after the mod");
    }

    #[test]
    fn test_attr_on_single_fn() {
        let src = "#[test]\nfn alone() {\n    x();\n}\nfn not_test() {}";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn cfg_feature_is_not_a_test_region() {
        let src = "#[cfg(feature = \"extra\")]\nfn gated() { x(); }";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, unix))]\nmod t { fn f() {} }\nfn real() {}";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn braceless_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse proptest::prelude::*;\nfn real() {}";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn lines_are_retrievable() {
        let f = SourceFile::parse("x.rs", "first\n  second  ");
        assert_eq!(f.line(1), "first");
        assert_eq!(f.line(2), "second");
        assert_eq!(f.line(99), "");
    }
}
