//! Workspace file discovery: every `.rs` file under the analysis root,
//! skipping build output and VCS metadata. std-only (no `walkdir`).

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", ".github"];

/// Collects all `.rs` files under `root`, returned sorted by their
/// root-relative `/`-separated path for deterministic reporting.
///
/// # Errors
/// Propagates I/O errors with the offending path attached.
pub fn rust_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    visit(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn visit(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry
            .file_type()
            .map_err(|e| format!("file_type {}: {e}", path.display()))?;
        if ty.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            visit(root, &path, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn finds_rust_files_and_skips_target() {
        let dir = std::env::temp_dir().join("anomex_analyze_walk_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("src")).unwrap();
        fs::create_dir_all(dir.join("target/debug")).unwrap();
        fs::write(dir.join("src/lib.rs"), "fn a() {}").unwrap();
        fs::write(dir.join("src/notes.txt"), "not rust").unwrap();
        fs::write(dir.join("target/debug/gen.rs"), "fn b() {}").unwrap();
        let files = rust_files(&dir).unwrap();
        let rels: Vec<&str> = files.iter().map(|(r, _)| r.as_str()).collect();
        assert_eq!(rels, vec!["src/lib.rs"]);
        let _ = fs::remove_dir_all(&dir);
    }
}
