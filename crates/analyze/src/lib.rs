//! anomex-analyze: a std-only workspace linter for the anomex crates.
//!
//! Five rules tuned to this codebase's failure modes — lock-order
//! violations, panics on serving hot paths, nondeterminism in result
//! computation, NaN-unsafe float ranking, and swallowed errors in the
//! serving stack — run over a hand-written Rust lexer. Findings can be
//! suppressed per line with `// anomex: allow(<rule>) reason` or
//! grandfathered in the committed `analyze-baseline.txt`; `--check`
//! fails only on *new* findings, which is what CI gates on.
//!
//! The crate deliberately has **zero dependencies** (std only): it is
//! the first thing CI builds, and it must compile in environments with
//! no registry access.

pub mod baseline;
pub mod lexer;
pub mod lock_order;
pub mod rules;
pub mod source;
pub mod walk;

use crate::baseline::Baseline;
use crate::lock_order::LockOrder;
use crate::rules::{all_rules, Finding, Rule};
use crate::source::SourceFile;
use std::path::PathBuf;

/// Outcome of analyzing a set of files, before baseline partitioning.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Active findings (test regions and suppressions already filtered).
    pub findings: Vec<Finding>,
    /// Files analyzed.
    pub files: usize,
    /// Findings dropped by `anomex: allow` directives.
    pub suppressed: usize,
}

/// The built-in rule set against the committed lock-order manifest.
///
/// # Errors
/// When the manifest fails to parse (only possible with a broken
/// committed `lock_order.txt`, which the crate's own tests catch).
pub fn default_rules() -> Result<Vec<Box<dyn Rule>>, String> {
    let manifest = LockOrder::parse(lock_order::DEFAULT_MANIFEST).map_err(|e| e.to_string())?;
    Ok(all_rules(manifest))
}

/// Runs `rules` over one in-memory file, applying test-region and
/// suppression filtering. Returns (findings, suppressed count).
#[must_use]
pub fn analyze_source(path: &str, src: &str, rules: &[Box<dyn Rule>]) -> (Vec<Finding>, usize) {
    let file = SourceFile::parse(path, src);
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for rule in rules {
        if !rule.applies_to(&file.path) {
            continue;
        }
        for f in rule.check(&file) {
            if file.is_test_line(f.line) {
                continue;
            }
            if file.is_suppressed(f.rule, f.line) {
                suppressed += 1;
                continue;
            }
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (findings, suppressed)
}

/// Analyzes a list of (report path, filesystem path) files.
///
/// # Errors
/// On unreadable files.
pub fn analyze_files(
    files: &[(String, PathBuf)],
    rules: &[Box<dyn Rule>],
) -> Result<Analysis, String> {
    let mut out = Analysis::default();
    for (rel, path) in files {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let (findings, suppressed) = analyze_source(rel, &src, rules);
        out.findings.extend(findings);
        out.suppressed += suppressed;
        out.files += 1;
    }
    Ok(out)
}

/// Partitions an analysis against a baseline into (new, grandfathered).
#[must_use]
pub fn partition(analysis: Analysis, baseline: &Baseline) -> (Vec<Finding>, Vec<Finding>) {
    baseline.partition(analysis.findings)
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn default_rules_build() {
        let rules = default_rules().unwrap();
        assert_eq!(rules.len(), 5);
        let ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        assert_eq!(
            ids,
            vec![
                "nested-lock",
                "panic-path",
                "nondeterminism",
                "float-ordering",
                "swallowed-error"
            ]
        );
    }

    #[test]
    fn test_regions_are_filtered() {
        let rules = default_rules().unwrap();
        let src = "\
fn hot() { v.unwrap(); }

#[cfg(test)]
mod unit_tests {
    #[test]
    fn t() { v.unwrap(); }
}";
        let (findings, _) = analyze_source("crates/core/src/x.rs", src, &rules);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn suppressions_are_filtered_and_counted() {
        let rules = default_rules().unwrap();
        let src = "\
fn hot() {
    a.unwrap(); // anomex: allow(panic-path) infallible by construction
    b.unwrap();
}";
        let (findings, suppressed) = analyze_source("crates/core/src/x.rs", src, &rules);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn findings_are_sorted_by_line() {
        let rules = default_rules().unwrap();
        let src = "fn f() {\n    b.unwrap();\n    let x = scores.partial_cmp(&y);\n}";
        let (findings, _) = analyze_source("crates/core/src/x.rs", src, &rules);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
