//! anomex-analyze: a std-only workspace linter for the anomex crates.
//!
//! Five per-file rules tuned to this codebase's failure modes —
//! lock-order violations, panics on serving hot paths, nondeterminism
//! in result computation, NaN-unsafe float ranking, and swallowed
//! errors in the serving stack — run over a hand-written Rust lexer.
//! On top of them, a workspace **call graph** ([`symbols`],
//! [`callgraph`]) powers three interprocedural passes: lock-set
//! propagation (cross-function `nested-lock`), `reactor-blocking`
//! (nothing reachable from the event loop may block), and panic
//! reachability (cross-crate `panic-path`). Findings can be suppressed
//! per line with `// anomex: allow(<rule>) reason` or grandfathered in
//! the committed `analyze-baseline.txt`; `--check` fails only on *new*
//! findings, which is what CI gates on.
//!
//! Per-file work (lexing, rules, symbol extraction) is cached keyed by
//! an FNV-1a content fingerprint, so warm CI runs re-lex only changed
//! files.
//!
//! The crate deliberately has **zero dependencies** (std only): it is
//! the first thing CI builds, and it must compile in environments with
//! no registry access.

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod lock_order;
pub mod rules;
pub mod source;
pub mod symbols;
pub mod walk;

use crate::baseline::Baseline;
use crate::lock_order::LockOrder;
use crate::rules::{all_rules, Finding, Rule};
use crate::source::SourceFile;
use crate::symbols::FileSummary;
use std::path::{Path, PathBuf};

/// Outcome of analyzing a set of files, before baseline partitioning.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Active findings (test regions and suppressions already filtered).
    pub findings: Vec<Finding>,
    /// Files analyzed.
    pub files: usize,
    /// Findings dropped by `anomex: allow` directives.
    pub suppressed: usize,
    /// Files whose per-file results came from the summary cache.
    pub cache_hits: usize,
}

/// The built-in rule set against the committed lock-order manifest.
///
/// # Errors
/// When the manifest fails to parse (only possible with a broken
/// committed `lock_order.txt`, which the crate's own tests catch).
pub fn default_rules() -> Result<Vec<Box<dyn Rule>>, String> {
    let manifest = LockOrder::parse(lock_order::DEFAULT_MANIFEST).map_err(|e| e.to_string())?;
    Ok(all_rules(manifest))
}

/// Runs `rules` over an already-parsed file, applying test-region and
/// suppression filtering. Returns (findings, suppressed count).
fn run_rules(file: &SourceFile, rules: &[Box<dyn Rule>]) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for rule in rules {
        if !rule.applies_to(&file.path) {
            continue;
        }
        for f in rule.check(file) {
            if file.is_test_line(f.line) {
                continue;
            }
            if file.is_suppressed(f.rule, f.line) {
                suppressed += 1;
                continue;
            }
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (findings, suppressed)
}

/// Runs `rules` over one in-memory file, applying test-region and
/// suppression filtering. Returns (findings, suppressed count).
#[must_use]
pub fn analyze_source(path: &str, src: &str, rules: &[Box<dyn Rule>]) -> (Vec<Finding>, usize) {
    run_rules(&SourceFile::parse(path, src), rules)
}

/// Analyzes a list of (report path, filesystem path) files: the
/// per-file rules plus the interprocedural passes, checked against the
/// workspace's committed lock-order manifest, no cache.
///
/// # Errors
/// On unreadable files.
pub fn analyze_files(
    files: &[(String, PathBuf)],
    rules: &[Box<dyn Rule>],
) -> Result<Analysis, String> {
    let manifest = LockOrder::parse(lock_order::DEFAULT_MANIFEST).map_err(|e| e.to_string())?;
    analyze_workspace(files, rules, &manifest, None)
}

/// Full analysis: per-file rules + symbol extraction (cached by content
/// fingerprint when `cache_path` is given), then the interprocedural
/// passes over the linked summaries.
///
/// A stale, missing, or malformed cache degrades to a cold run; cache
/// write failures are ignored (it is only a cache).
///
/// # Errors
/// On unreadable source files.
pub fn analyze_workspace(
    files: &[(String, PathBuf)],
    rules: &[Box<dyn Rule>],
    manifest: &LockOrder,
    cache_path: Option<&Path>,
) -> Result<Analysis, String> {
    let cached: std::collections::BTreeMap<String, FileSummary> = cache_path
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|text| symbols::parse_cache(&text))
        .map(|v| v.into_iter().map(|s| (s.path.clone(), s)).collect())
        .unwrap_or_default();

    let mut out = Analysis::default();
    let mut summaries: Vec<FileSummary> = Vec::with_capacity(files.len());
    for (rel, path) in files {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let fp = symbols::fnv64(src.as_bytes());
        let summary = match cached.get(rel) {
            Some(c) if c.fingerprint == fp => {
                out.cache_hits += 1;
                c.clone()
            }
            _ => {
                let file = SourceFile::parse(rel, &src);
                let (findings, suppressed) = run_rules(&file, rules);
                if is_test_file(rel) {
                    // Integration tests and benches are test code end to
                    // end: their fns must not join the production call
                    // graph (a test harness deliberately sleeps/unwraps).
                    FileSummary {
                        path: rel.clone(),
                        fingerprint: fp,
                        findings,
                        suppressed,
                        fns: Vec::new(),
                    }
                } else {
                    symbols::extract(&file, fp, findings, suppressed)
                }
            }
        };
        out.findings.extend(summary.findings.iter().cloned());
        out.suppressed += summary.suppressed;
        out.files += 1;
        summaries.push(summary);
    }

    // The interprocedural passes and the per-file rules have disjoint
    // domains (panic reachability only fires outside the hot crates,
    // where the per-file rule never runs; lock chains fire at call
    // sites, not acquisition sites), so their findings append directly.
    out.findings
        .extend(callgraph::interprocedural(&summaries, manifest));
    out.findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    if let Some(p) = cache_path {
        if let Some(dir) = p.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(p, symbols::render_cache(&summaries));
    }
    Ok(out)
}

/// Whether a path is an integration-test or bench tree (`tests/`,
/// `benches/` next to `src/`) — entirely test code, excluded from the
/// workspace call graph.
fn is_test_file(rel: &str) -> bool {
    rel.contains("/tests/") || rel.starts_with("tests/") || rel.contains("/benches/")
}

/// Partitions an analysis against a baseline into (new, grandfathered).
#[must_use]
pub fn partition(analysis: Analysis, baseline: &Baseline) -> (Vec<Finding>, Vec<Finding>) {
    baseline.partition(analysis.findings)
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn default_rules_build() {
        let rules = default_rules().unwrap();
        assert_eq!(rules.len(), 5);
        let ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        assert_eq!(
            ids,
            vec![
                "nested-lock",
                "panic-path",
                "nondeterminism",
                "float-ordering",
                "swallowed-error"
            ]
        );
    }

    #[test]
    fn test_regions_are_filtered() {
        let rules = default_rules().unwrap();
        let src = "\
fn hot() { v.unwrap(); }

#[cfg(test)]
mod unit_tests {
    #[test]
    fn t() { v.unwrap(); }
}";
        let (findings, _) = analyze_source("crates/core/src/x.rs", src, &rules);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn suppressions_are_filtered_and_counted() {
        let rules = default_rules().unwrap();
        let src = "\
fn hot() {
    a.unwrap(); // anomex: allow(panic-path) infallible by construction
    b.unwrap();
}";
        let (findings, suppressed) = analyze_source("crates/core/src/x.rs", src, &rules);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn findings_are_sorted_by_line() {
        let rules = default_rules().unwrap();
        let src = "fn f() {\n    b.unwrap();\n    let x = scores.partial_cmp(&y);\n}";
        let (findings, _) = analyze_source("crates/core/src/x.rs", src, &rules);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
