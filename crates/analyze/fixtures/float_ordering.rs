//! Seeded `float-ordering` violations.

fn nan_unsafe_sort(scores: &mut Vec<(usize, f64)>) {
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
}

fn nan_unsafe_max(scores: &[f64]) -> Option<f64> {
    scores
        .iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).unwrap())
}
