//! Seeded `swallowed-error` violations.

fn swallow_flush(stream: &mut TcpStream) {
    let _ = stream.flush();
}

fn swallow_join(worker: JoinHandle<()>) {
    let _ = worker.join();
}
