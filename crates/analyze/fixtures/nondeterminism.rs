//! Seeded `nondeterminism` violations.

fn hash_order_iteration(scores: &HashMap<String, f64>) {
    for (name, score) in scores {
        emit(name, score);
    }
}

fn adapter_iteration() {
    let index: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    let dims: Vec<usize> = index.keys().copied().collect();
    report(dims);
}

fn wall_clock_in_compute(rows: &[f64]) -> f64 {
    let t0 = Instant::now();
    let s: f64 = rows.iter().sum();
    s / t0.elapsed().as_secs_f64()
}

fn entropy_seeded_sampling(n: usize) -> Vec<usize> {
    let mut rng = thread_rng();
    sample(&mut rng, n)
}
