//! Seeded `panic-path` violations.

fn unwrap_on_hot_path(v: Option<f64>) -> f64 {
    v.unwrap()
}

fn expect_on_hot_path(v: Result<f64, E>) -> f64 {
    v.expect("scores must exist")
}

fn macro_panics(kind: u8) {
    match kind {
        0 => panic!("boom"),
        1 => unreachable!("cannot happen"),
        2 => todo!(),
        _ => unimplemented!(),
    }
}

fn request_path_indexing(scores: &[f64], point: usize) -> f64 {
    scores[point]
}
