//! Seeded `nested-lock` violations. Not compiled — lexed by the
//! analyzer's negative tests and the CI fixtures check.

fn reversed_order(&self) {
    let s = slot.state.lock();
    let m = self.map.lock();
    use_both(s, m);
}

fn unclassified_nesting(&self) {
    let a = self.mystery.lock();
    let b = self.enigma.lock();
    use_both(a, b);
}

fn same_class_twice(&self) {
    let a = left.queue.write();
    let b = right.queue.write();
    merge(a, b);
}
