//! Seeded `reactor-blocking` violations: blocking primitives reachable
//! from the poll-loop dispatch path. Fixture reactor roots are fns
//! under `impl Reactor`. Not compiled — lexed by the analyzer's
//! negative tests and the CI fixtures check.

impl Reactor {
    fn run(&mut self) {
        loop {
            self.tick();
        }
    }

    fn tick(&mut self) {
        dispatch_ready(self);
    }
}

fn dispatch_ready(r: &mut Reactor) {
    std::thread::sleep(Duration::from_millis(5));
    println!("tick {}", r.generation);
    let cfg = File::open("reactor.cfg");
    let g = r.shared_thing.lock();
    apply(cfg, g);
    eprintln!("done"); // anomex: allow(reactor-blocking) fixture suppression probe
}

fn never_reached_from_reactor() {
    std::thread::sleep(Duration::from_millis(50));
}
