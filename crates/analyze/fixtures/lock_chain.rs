//! Seeded interprocedural `nested-lock` violation: the lock-order
//! breach only appears once the call graph propagates the callee's
//! acquisitions to the caller's live guard. Not compiled — lexed by the
//! analyzer's negative tests and the CI fixtures check.

fn drain_under_guard(&self) {
    let g = self.outer_thing.lock();
    refill_slot(g);
    finish(g);
}

fn refill_slot(g: Guard) {
    let inner = self.inner_thing.lock();
    copy_into(g, inner);
}

fn chain_is_clean_when_guard_dropped(&self) {
    let g = self.outer_thing.lock();
    drop(g);
    refill_slot(placeholder());
}
