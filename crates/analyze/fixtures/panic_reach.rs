//! Seeded interprocedural `panic-path` violation: the panic lives in a
//! helper one call away from the root, so only the call-graph pass can
//! see it. Not compiled — lexed by the analyzer's negative tests and
//! the CI fixtures check.

fn hot_entry(points: &[f64]) -> f64 {
    summarize_tail(points)
}

fn summarize_tail(points: &[f64]) -> f64 {
    let last = points.last().unwrap();
    last + 1.0
}
