//! Deliberately clean fixture: every construct the rules target, in a
//! form the analyzer must accept — suppressed with a reason, inside a
//! test region, or rewritten the recommended way. Contributes zero
//! findings to the fixtures corpus.

fn suppressed_unwrap(v: Option<f64>) -> f64 {
    v.unwrap() // anomex: allow(panic-path) checked non-empty two lines up
}

fn suppressed_discard(stream: &mut TcpStream) {
    // anomex: allow(swallowed-error) best-effort flush on the shutdown path
    let _ = stream.flush();
}

fn suppressed_clock() -> f64 {
    // anomex: allow(nondeterminism) telemetry only, never feeds results
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

fn nan_safe_sort(scores: &mut Vec<(usize, f64)>) {
    scores.sort_by(|a, b| b.1.total_cmp(&a.1));
}

fn ordered_iteration(scores: &BTreeMap<String, f64>) {
    for (name, score) in scores {
        emit(name, score);
    }
}

fn checked_indexing(scores: &[f64], point: usize) -> Option<f64> {
    scores.get(point).copied()
}

#[cfg(test)]
mod unit_tests {
    #[test]
    fn unwraps_are_fine_in_tests() {
        let v: Option<f64> = Some(1.0);
        assert_eq!(v.unwrap(), 1.0);
        let scores = vec![2.0, 1.0];
        let m = scores.iter().copied().max_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(m, Some(2.0));
    }
}
