//! Seeded `nondeterminism` violations specific to the f32 kernel path:
//! every way a reduced-precision build could stop being a pure function
//! of its inputs. The real rule is what keeps `precision=f32` results
//! reproducible run to run — the only sanctioned divergence from the
//! f64 path is the one rounding per gathered element.

fn autotuned_precision(rows: &[f64]) -> bool {
    // Timing-based precision selection: whether a build uses f32 would
    // depend on machine load, so identical inputs score differently.
    let t0 = Instant::now();
    let _warmup: f64 = rows.iter().sum();
    t0.elapsed().as_micros() > 50
}

fn sampled_ulp_audit(narrow: &[f32], wide: &[f64]) -> f64 {
    // Entropy-seeded sampling of which lanes get ULP-checked.
    let mut rng = thread_rng();
    let lane = sample_index(&mut rng, narrow.len());
    wide[lane] - f64::from(narrow[lane])
}

fn drift_report(per_kernel_drift: &HashMap<String, f64>) {
    // Hash-order iteration feeding the precision-drift report: the
    // table row order would change across runs.
    for (kernel, drift) in per_kernel_drift {
        emit(kernel, drift);
    }
}
