//! Self-hosting checks: the workspace analyzes clean against its
//! committed baseline, and the fixture corpus trips every rule.

use anomex_analyze::baseline::Baseline;
use anomex_analyze::walk::rust_files;
use anomex_analyze::{analyze_files, default_rules};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze has a workspace two levels up")
        .to_path_buf()
}

fn analyze(root: &Path, prefix: &str, skip_fixtures: bool) -> anomex_analyze::Analysis {
    let rules = default_rules().expect("committed manifest parses");
    let files: Vec<(String, PathBuf)> = rust_files(root)
        .expect("workspace walks")
        .into_iter()
        .map(|(rel, path)| (format!("{prefix}{rel}"), path))
        .filter(|(rel, _)| !skip_fixtures || !rel.contains("crates/analyze/fixtures/"))
        .collect();
    assert!(!files.is_empty(), "no .rs files under {}", root.display());
    analyze_files(&files, &rules).expect("all files readable")
}

#[test]
fn workspace_analyzes_clean_against_baseline() {
    let root = workspace_root();
    let analysis = analyze(&root, "", true);
    let baseline_path = root.join("analyze-baseline.txt");
    let baseline = Baseline::parse(
        &std::fs::read_to_string(&baseline_path)
            .expect("committed analyze-baseline.txt at the workspace root"),
    )
    .expect("baseline parses");
    let (fresh, _grandfathered) = baseline.partition(analysis.findings);
    assert!(
        fresh.is_empty(),
        "new findings not in the baseline:\n{}",
        fresh
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixture_corpus_trips_every_rule() {
    let root = workspace_root().join("crates/analyze/fixtures");
    let analysis = analyze(&root, "crates/analyze/fixtures/", false);
    let tripped: BTreeSet<&str> = analysis.findings.iter().map(|f| f.rule).collect();
    for rule in [
        "nested-lock",
        "panic-path",
        "nondeterminism",
        "float-ordering",
        "swallowed-error",
    ] {
        assert!(tripped.contains(rule), "fixtures never tripped {rule}");
    }
    assert!(
        analysis.suppressed >= 3,
        "clean.rs should exercise suppressions (saw {})",
        analysis.suppressed
    );
    let clean: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.path.ends_with("clean.rs"))
        .collect();
    assert!(clean.is_empty(), "clean.rs must not fire: {clean:?}");
}
