//! Self-hosting checks: the workspace analyzes clean against its
//! committed baseline, the fixture corpus trips every rule (including
//! the interprocedural ones, with call-chain evidence), and the
//! summary cache reproduces a cold run exactly.

use anomex_analyze::baseline::Baseline;
use anomex_analyze::lock_order::{LockOrder, DEFAULT_MANIFEST};
use anomex_analyze::walk::rust_files;
use anomex_analyze::{analyze_files, analyze_workspace, default_rules, Analysis};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze has a workspace two levels up")
        .to_path_buf()
}

fn analyze(root: &Path, prefix: &str, skip_fixtures: bool) -> anomex_analyze::Analysis {
    let rules = default_rules().expect("committed manifest parses");
    let files: Vec<(String, PathBuf)> = rust_files(root)
        .expect("workspace walks")
        .into_iter()
        .map(|(rel, path)| (format!("{prefix}{rel}"), path))
        .filter(|(rel, _)| !skip_fixtures || !rel.contains("crates/analyze/fixtures/"))
        .collect();
    assert!(!files.is_empty(), "no .rs files under {}", root.display());
    analyze_files(&files, &rules).expect("all files readable")
}

#[test]
fn workspace_analyzes_clean_against_baseline() {
    let root = workspace_root();
    let analysis = analyze(&root, "", true);
    let baseline_path = root.join("analyze-baseline.txt");
    let baseline = Baseline::parse(
        &std::fs::read_to_string(&baseline_path)
            .expect("committed analyze-baseline.txt at the workspace root"),
    )
    .expect("baseline parses");
    let (fresh, _grandfathered) = baseline.partition(analysis.findings);
    assert!(
        fresh.is_empty(),
        "new findings not in the baseline:\n{}",
        fresh
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixture_corpus_trips_every_rule() {
    let root = workspace_root().join("crates/analyze/fixtures");
    let analysis = analyze(&root, "crates/analyze/fixtures/", false);
    let tripped: BTreeSet<&str> = analysis.findings.iter().map(|f| f.rule).collect();
    for rule in [
        "nested-lock",
        "panic-path",
        "nondeterminism",
        "float-ordering",
        "swallowed-error",
        "reactor-blocking",
    ] {
        assert!(tripped.contains(rule), "fixtures never tripped {rule}");
    }
    assert!(
        analysis.suppressed >= 3,
        "clean.rs should exercise suppressions (saw {})",
        analysis.suppressed
    );
    let clean: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.path.ends_with("clean.rs"))
        .collect();
    assert!(clean.is_empty(), "clean.rs must not fire: {clean:?}");
}

/// Analyzes exactly one fixture file (interprocedural passes included).
fn analyze_fixture(name: &str) -> Analysis {
    let rel = format!("crates/analyze/fixtures/{name}");
    let path = workspace_root().join(&rel);
    let rules = default_rules().expect("committed manifest parses");
    analyze_files(&[(rel, path)], &rules).expect("fixture readable")
}

#[test]
fn lock_chain_fixture_trips_interprocedural_nested_lock() {
    let analysis = analyze_fixture("lock_chain.rs");
    let f: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "nested-lock")
        .collect();
    assert_eq!(
        f.len(),
        1,
        "exactly the seeded chain: {:?}",
        analysis.findings
    );
    assert_eq!(
        f[0].line, 8,
        "flagged at the call site, not the acquisition"
    );
    assert!(
        f[0].message.contains("chain:") && f[0].message.contains("->"),
        "call-chain evidence: {}",
        f[0].message
    );
    assert!(
        f[0].message.contains("drain_under_guard") && f[0].message.contains("refill_slot"),
        "names both ends: {}",
        f[0].message
    );
}

#[test]
fn nondet_f32_fixture_trips_every_precision_hazard() {
    let analysis = analyze_fixture("nondet_f32.rs");
    let f: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "nondeterminism")
        .collect();
    assert_eq!(
        f.len(),
        3,
        "timing-based selection, entropy-seeded audit, hash-order report: {f:?}"
    );
    let msgs: Vec<&str> = f.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("Instant")),
        "timing-based precision selection: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("thread_rng")),
        "entropy-seeded lane audit: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("per_kernel_drift")),
        "hash-order drift report: {msgs:?}"
    );
}

#[test]
fn reactor_blocking_fixture_trips_with_chain_and_respects_suppression() {
    let analysis = analyze_fixture("reactor_blocking.rs");
    let f: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "reactor-blocking")
        .collect();
    let msgs: Vec<&str> = f.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("std::thread::sleep")),
        "sleep: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("println!")),
        "stdio: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("File::open")),
        "file I/O: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("unclassified lock")),
        "unclassified lock: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .all(|m| m.contains("via Reactor::tick -> dispatch_ready")),
        "every finding carries the dispatch chain: {msgs:?}"
    );
    assert!(
        f.iter().all(|f| f.line < 28),
        "never_reached_from_reactor must stay silent: {f:?}"
    );
    assert!(
        !msgs.iter().any(|m| m.contains("eprintln!")),
        "suppressed stdio site must not fire: {msgs:?}"
    );
}

#[test]
fn panic_reach_fixture_trips_with_chain() {
    let analysis = analyze_fixture("panic_reach.rs");
    let f: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "panic-path" && f.message.contains("reachable via"))
        .collect();
    assert_eq!(f.len(), 1, "{:?}", analysis.findings);
    assert_eq!(f[0].line, 11, "the unwrap inside the helper");
    assert!(
        f[0].message.contains("hot_entry -> summarize_tail"),
        "chain evidence: {}",
        f[0].message
    );
}

#[test]
fn summary_cache_reproduces_cold_run_and_skips_relexing() {
    let root = workspace_root();
    let rules = default_rules().expect("committed manifest parses");
    let manifest = LockOrder::parse(DEFAULT_MANIFEST).expect("manifest parses");
    let files: Vec<(String, PathBuf)> = rust_files(&root)
        .expect("workspace walks")
        .into_iter()
        .filter(|(rel, _)| !rel.contains("crates/analyze/fixtures/"))
        .collect();
    let cache =
        std::env::temp_dir().join(format!("anomex-analyze-cache-{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    let cold =
        analyze_workspace(&files, &rules, &manifest, Some(&cache)).expect("cold run succeeds");
    assert_eq!(cold.cache_hits, 0, "no cache to hit on the first run");
    assert!(cache.exists(), "cold run writes the cache");
    let warm =
        analyze_workspace(&files, &rules, &manifest, Some(&cache)).expect("warm run succeeds");
    let _ = std::fs::remove_file(&cache);
    assert_eq!(
        warm.cache_hits, warm.files,
        "every unchanged file comes from cache"
    );
    assert_eq!(warm.files, cold.files);
    assert_eq!(warm.suppressed, cold.suppressed);
    assert_eq!(warm.findings, cold.findings, "warm run reproduces cold run");
}
