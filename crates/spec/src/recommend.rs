//! Rule-based pipeline recommendation.
//!
//! [`recommend`] maps a [`DatasetProfile`] and a task kind to a
//! [`PipelineSpec`], recording every rule it consulted in a
//! machine-readable [`TraceEntry`] list — fired or not — so callers
//! can audit *why* a pipeline was chosen. The rules encode the paper's
//! measured outcomes (EXPERIMENTS.md figs. 9–10): Beam dominates
//! RefOut for point explanation across the synthetic testbed, FastABOD
//! holds up better than LOF as dimensionality grows, and LookOut+LOF
//! is the strongest summarizer pairing.

use crate::backend::NeighborBackend;
use crate::detector::DetectorSpec;
use crate::explainer::ExplainerSpec;
use crate::json::Json;
use crate::pipeline::PipelineSpec;
use crate::profile::DatasetProfile;

/// The dimensionality at and above which the recommender prefers the
/// angle-based detector over the density-based one (the smallest
/// synthetic-testbed preset is 14-dimensional).
pub const HIGH_DIM_THRESHOLD: usize = 14;

/// The density-dispersion level treated as "strongly varying local
/// density" in advisory trace entries.
pub const HIGH_DENSITY_CV: f64 = 0.5;

/// Rows at and above which the measured crossovers in
/// `BENCH_knn_backends.json` make a sublinear neighbor backend worth
/// recommending (ROADMAP item 1c): at `n_rows = 10 000` the kd-tree
/// builds the k=15 table ~11× faster than the exact scan at d=2 and
/// the LSH index overtakes exact above the kd-tree dim ceiling, while
/// at `n_rows = 1 000` no backend beats one blocked pass. Below this
/// the recommender leaves the detector on the (elided) exact default so
/// wire forms, fingerprints, and registry keys match historical spec
/// strings.
pub const BACKEND_AUTO_MIN_ROWS: usize = 10_000;

/// What kind of explanation the caller wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecommendTask {
    /// Per-point subspace explanations (paper §3.1).
    Point,
    /// A shared anomaly summary (paper §3.2).
    Summary,
}

impl RecommendTask {
    /// The wire name (`"point"` / `"summary"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RecommendTask::Point => "point",
            RecommendTask::Summary => "summary",
        }
    }

    /// Parses a task name.
    ///
    /// # Errors
    /// On anything other than `point` or `summary`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.trim().to_ascii_lowercase().as_str() {
            "point" => Ok(RecommendTask::Point),
            "summary" => Ok(RecommendTask::Summary),
            other => Err(format!(
                "unknown recommendation task '{other}' (expected point or summary)"
            )),
        }
    }
}

/// One consulted rule: its stable id, whether it determined part of
/// the recommendation, and a human-readable justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Stable rule identifier (e.g. `"detector.high_dim"`).
    pub rule: String,
    /// Whether the rule's condition held and shaped the output.
    pub fired: bool,
    /// Why the rule fired (or did not).
    pub detail: String,
}

impl TraceEntry {
    fn new(rule: &str, fired: bool, detail: String) -> Self {
        TraceEntry {
            rule: rule.to_string(),
            fired,
            detail,
        }
    }

    /// The canonical JSON object form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rule".to_string(), Json::Str(self.rule.clone())),
            ("fired".to_string(), Json::Bool(self.fired)),
            ("detail".to_string(), Json::Str(self.detail.clone())),
        ])
    }
}

/// A recommendation: the chosen spec plus the full reasoning trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The recommended pipeline.
    pub spec: PipelineSpec,
    /// The task the recommendation targets.
    pub task: RecommendTask,
    /// Every rule consulted, in evaluation order.
    pub trace: Vec<TraceEntry>,
    /// The profile the rules read.
    pub profile: DatasetProfile,
}

impl Recommendation {
    /// The canonical JSON object form: pipeline (object + compact +
    /// fingerprint), task, trace, and the input profile.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("pipeline".to_string(), self.spec.to_json()),
            ("compact".to_string(), Json::Str(self.spec.canonical())),
            (
                "fingerprint".to_string(),
                Json::Str(format!("{:016x}", self.spec.fingerprint())),
            ),
            ("task".to_string(), Json::Str(self.task.name().to_string())),
            (
                "trace".to_string(),
                Json::Arr(self.trace.iter().map(TraceEntry::to_json).collect()),
            ),
            ("profile".to_string(), self.profile.to_json()),
        ])
    }
}

/// Recommends a pipeline for `task` on a dataset with `profile`.
///
/// Deterministic: the same profile and task always yield the same spec
/// and trace.
#[must_use]
pub fn recommend(profile: &DatasetProfile, task: RecommendTask) -> Recommendation {
    let mut trace = Vec::new();
    let mut spec = match task {
        RecommendTask::Point => point_pipeline(profile, &mut trace),
        RecommendTask::Summary => summary_pipeline(&mut trace),
    };
    spec.detector = backend_rule(spec.detector, profile, &mut trace);
    advisory_rules(profile, &mut trace);
    Recommendation {
        spec,
        task,
        trace,
        profile: *profile,
    }
}

fn point_pipeline(profile: &DatasetProfile, trace: &mut Vec<TraceEntry>) -> PipelineSpec {
    trace.push(TraceEntry::new(
        "explainer.point",
        true,
        "point task: Beam search dominates RefOut's random pools on the \
         synthetic testbed (fig. 9), so the explainer is Beam"
            .to_string(),
    ));
    let high_dim = profile.n_features >= HIGH_DIM_THRESHOLD;
    trace.push(TraceEntry::new(
        "detector.high_dim",
        high_dim,
        format!(
            "n_features = {} {} the threshold {HIGH_DIM_THRESHOLD}: {}",
            profile.n_features,
            if high_dim { "reaches" } else { "is below" },
            if high_dim {
                "angle-based FastABOD stays discriminative as dimensionality grows"
            } else {
                "density-based LOF suffices at low dimensionality"
            }
        ),
    ));
    let detector = if high_dim {
        DetectorSpec::fast_abod()
    } else {
        DetectorSpec::lof()
    };
    PipelineSpec::new(detector, ExplainerSpec::beam())
}

fn summary_pipeline(trace: &mut Vec<TraceEntry>) -> PipelineSpec {
    trace.push(TraceEntry::new(
        "pipeline.summary",
        true,
        "summary task: LookOut+LOF is the strongest summarizer pairing \
         on the synthetic testbed (fig. 10)"
            .to_string(),
    ));
    PipelineSpec::new(DetectorSpec::lof(), ExplainerSpec::lookout())
}

/// Switches the recommended detector to `backend=auto` once the row
/// count clears the measured sublinear-backend crossover, letting the
/// fit-time resolver pick kd-tree or LSH per projected subspace shape.
fn backend_rule(
    detector: DetectorSpec,
    profile: &DatasetProfile,
    trace: &mut Vec<TraceEntry>,
) -> DetectorSpec {
    let at_scale = profile.n_rows >= BACKEND_AUTO_MIN_ROWS;
    let fired = at_scale && detector.neighbor_backend().is_some();
    let detail = if fired {
        let resolved = NeighborBackend::Auto.resolve(profile.n_rows, profile.n_features);
        format!(
            "n_rows = {} reaches the measured backend crossover \
             {BACKEND_AUTO_MIN_ROWS} (BENCH_knn_backends.json): backend=auto \
             resolves to {resolved} for ({}, {}) at fit time",
            profile.n_rows, profile.n_rows, profile.n_features
        )
    } else if !at_scale {
        format!(
            "n_rows = {} is below the measured backend crossover \
             {BACKEND_AUTO_MIN_ROWS} (BENCH_knn_backends.json): exact blocked \
             scans still win, and the elided default keeps wire forms stable",
            profile.n_rows
        )
    } else {
        "the chosen detector builds no neighbor table, so there is \
         nothing for a sublinear backend to accelerate"
            .to_string()
    };
    trace.push(TraceEntry::new("detector.backend_auto", fired, detail));
    if fired {
        detector.with_backend(NeighborBackend::Auto)
    } else {
        detector
    }
}

fn advisory_rules(profile: &DatasetProfile, trace: &mut Vec<TraceEntry>) {
    let dense = profile.density_cv > HIGH_DENSITY_CV;
    trace.push(TraceEntry::new(
        "profile.density_cv",
        false,
        format!(
            "advisory: k-NN distance dispersion {:.3} is {} {HIGH_DENSITY_CV} \
             ({} local-density variation)",
            profile.density_cv,
            if dense { "above" } else { "at or below" },
            if dense { "strong" } else { "mild" }
        ),
    ));
    trace.push(TraceEntry::new(
        "profile.contamination",
        false,
        format!(
            "advisory: estimated contamination {:.3}; detector defaults \
             assume the paper's sparse-anomaly regime",
            profile.contamination
        ),
    ));
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn profile(n_features: usize) -> DatasetProfile {
        DatasetProfile {
            n_rows: 1000,
            n_features,
            density_cv: 0.3,
            contamination: 0.02,
        }
    }

    #[test]
    fn point_task_recommends_beam() {
        let rec = recommend(&profile(14), RecommendTask::Point);
        assert_eq!(rec.spec.explainer, ExplainerSpec::beam());
        assert_eq!(rec.spec.detector, DetectorSpec::fast_abod());
        assert!(rec
            .trace
            .iter()
            .any(|t| t.rule == "detector.high_dim" && t.fired));

        let rec = recommend(&profile(4), RecommendTask::Point);
        assert_eq!(rec.spec.detector, DetectorSpec::lof());
        assert!(rec
            .trace
            .iter()
            .any(|t| t.rule == "detector.high_dim" && !t.fired));
    }

    #[test]
    fn summary_task_recommends_lookout_lof() {
        let rec = recommend(&profile(23), RecommendTask::Summary);
        assert_eq!(rec.spec.explainer, ExplainerSpec::lookout());
        assert_eq!(rec.spec.detector, DetectorSpec::lof());
        assert!(rec.spec.is_summary());
    }

    #[test]
    fn recommendations_always_stay_full_precision() {
        // `recommend` never emits `precision=f32`: the reduced-precision
        // path is a caller opt-in, not something the rule engine may
        // choose — every profile and task must come back at the f64
        // default (elided from the canonical string).
        for n_features in [4usize, 23, 39, 70, 512] {
            for task in [RecommendTask::Point, RecommendTask::Summary] {
                let rec = recommend(&profile(n_features), task);
                if let Some(p) = rec.spec.detector.precision() {
                    assert!(p.is_default(), "{n_features} features: recommended {p}");
                }
                assert!(
                    !rec.spec.canonical().contains("precision"),
                    "{n_features} features: {}",
                    rec.spec.canonical()
                );
            }
        }
    }

    #[test]
    fn recommendation_is_deterministic() {
        let a = recommend(&profile(39), RecommendTask::Point);
        let b = recommend(&profile(39), RecommendTask::Point);
        assert_eq!(a, b);
        assert_eq!(a.to_json().emit(), b.to_json().emit());
    }

    #[test]
    fn trace_serializes_every_consulted_rule() {
        let rec = recommend(&profile(70), RecommendTask::Point);
        let json = rec.to_json();
        let trace = json.get("trace").unwrap();
        let Json::Arr(entries) = trace else {
            panic!("trace must be an array");
        };
        assert_eq!(entries.len(), rec.trace.len());
        assert!(json.get("fingerprint").is_some());
        assert_eq!(
            json.get("compact").unwrap().as_str().unwrap(),
            rec.spec.canonical()
        );
    }

    #[test]
    fn backend_auto_fires_at_the_measured_crossover() {
        let mut p = profile(4);
        p.n_rows = BACKEND_AUTO_MIN_ROWS;
        let rec = recommend(&p, RecommendTask::Point);
        assert_eq!(
            rec.spec.detector,
            DetectorSpec::lof().with_backend(NeighborBackend::Auto)
        );
        assert_eq!(rec.spec.detector.canonical(), "lof:k=15,backend=auto");
        assert!(rec
            .trace
            .iter()
            .any(|t| t.rule == "detector.backend_auto" && t.fired));

        // Summary pipelines score with a kNN detector too, so they get
        // the same treatment.
        let rec = recommend(&p, RecommendTask::Summary);
        assert_eq!(
            rec.spec.detector.neighbor_backend(),
            Some(NeighborBackend::Auto)
        );
    }

    #[test]
    fn small_datasets_keep_the_legacy_wire_form() {
        let rec = recommend(&profile(4), RecommendTask::Point);
        assert_eq!(rec.spec.detector, DetectorSpec::lof());
        assert!(!rec.spec.canonical().contains("backend"));
        assert!(rec
            .trace
            .iter()
            .any(|t| t.rule == "detector.backend_auto" && !t.fired));
    }

    #[test]
    fn task_names_round_trip() {
        assert_eq!(RecommendTask::parse("point").unwrap(), RecommendTask::Point);
        assert_eq!(
            RecommendTask::parse("SUMMARY").unwrap(),
            RecommendTask::Summary
        );
        assert!(RecommendTask::parse("both").is_err());
    }
}
