//! Neighbor-search backend selection for kNN-family detectors.
//!
//! Every kNN-family detector (LOF, FastABOD, kNN-dist) needs the same
//! artifact at fit time — a [`KnnTable`]-shaped list of each row's k
//! nearest neighbors — but the best way to *build* it depends on the
//! data shape: exact blocked scans win at small N, a kd-tree wins in
//! the low-dimensional subspaces explanations live in, and an
//! approximate hash index is the only sublinear option once the
//! dimensionality defeats space partitioning. `NeighborBackend` is the
//! canonical knob: it travels inside [`DetectorSpec`] params (elided
//! from the wire form when it is the default `Exact`, so historical
//! spec strings, fingerprints, and registry keys are unchanged), and
//! the detectors crate dispatches on it when building neighbor tables.
//!
//! [`KnnTable`]: https://docs.rs/anomex-detectors
//! [`DetectorSpec`]: crate::DetectorSpec

/// How a kNN-family detector builds its neighbor table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NeighborBackend {
    /// Exact blocked O(N²) scan (the norm-trick kernel). Always
    /// bit-identical to the reference brute-force path; the default.
    #[default]
    Exact,
    /// Exact kd-tree with largest-spread axis splits. Same neighbor
    /// *sets* as `Exact` (ties may order differently); wins when the
    /// projected dimensionality is small.
    KdTree,
    /// Approximate random-hyperplane LSH index. Deterministic
    /// (fixed-seed hyperplanes), sublinear candidate generation, with
    /// recall < 1.0 possible on adversarial data; falls back to an
    /// exact scan below [`Self::APPROX_MIN_ROWS`] rows.
    Approx,
    /// Choose per (n_rows, dim) at fit time using the same data-shape
    /// heuristics as `DatasetProfile`: kd-tree for low dims at scale,
    /// approx for high dims at scale, exact otherwise.
    Auto,
}

impl NeighborBackend {
    /// Below this row count `Approx` uses an exact scan internally:
    /// hashing overhead cannot beat one blocked pass over the data.
    pub const APPROX_MIN_ROWS: usize = 512;

    /// Rows before `Auto` leaves the exact backend for a kd-tree.
    pub const AUTO_KDTREE_MIN_ROWS: usize = 512;
    /// Largest projected dimensionality where `Auto` trusts a kd-tree.
    pub const AUTO_KDTREE_MAX_DIM: usize = 8;
    /// Rows before `Auto` accepts approximate recall at high dims.
    pub const AUTO_APPROX_MIN_ROWS: usize = 8192;

    /// Canonical lowercase wire token (`exact`, `kdtree`, `approx`,
    /// `auto`) used in `DetectorSpec` params and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            NeighborBackend::Exact => "exact",
            NeighborBackend::KdTree => "kdtree",
            NeighborBackend::Approx => "approx",
            NeighborBackend::Auto => "auto",
        }
    }

    /// Parse a wire token, case-insensitively, accepting the aliases
    /// `kd`/`kd-tree`/`kd_tree` for `kdtree` and `lsh`/`ann` for
    /// `approx`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let t = s.trim().to_ascii_lowercase();
        match t.as_str() {
            "exact" | "brute" | "bruteforce" => Ok(NeighborBackend::Exact),
            "kdtree" | "kd" | "kd-tree" | "kd_tree" => Ok(NeighborBackend::KdTree),
            "approx" | "lsh" | "ann" => Ok(NeighborBackend::Approx),
            "auto" => Ok(NeighborBackend::Auto),
            _ => Err(format!(
                "unknown neighbor backend {s:?} (expected exact, kdtree, approx, or auto)"
            )),
        }
    }

    /// Resolve `Auto` against a concrete data shape; other variants
    /// return themselves. The thresholds mirror the `DatasetProfile`
    /// size buckets: exact until a backend can amortize its build
    /// cost, kd-tree only while the dimensionality leaves axis splits
    /// selective, approx only once N is large enough that recall loss
    /// buys a real asymptotic win.
    pub fn resolve(self, n_rows: usize, dim: usize) -> Self {
        match self {
            NeighborBackend::Auto => {
                if dim <= Self::AUTO_KDTREE_MAX_DIM && n_rows >= Self::AUTO_KDTREE_MIN_ROWS {
                    NeighborBackend::KdTree
                } else if dim > Self::AUTO_KDTREE_MAX_DIM && n_rows >= Self::AUTO_APPROX_MIN_ROWS {
                    NeighborBackend::Approx
                } else {
                    NeighborBackend::Exact
                }
            }
            other => other,
        }
    }

    /// True for the default backend, whose `backend=` param is elided
    /// from canonical spec strings so historical wire forms stay
    /// byte-identical.
    pub fn is_default(self) -> bool {
        self == NeighborBackend::Exact
    }
}

impl std::fmt::Display for NeighborBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_exact() {
        assert_eq!(NeighborBackend::default(), NeighborBackend::Exact);
        assert!(NeighborBackend::Exact.is_default());
        assert!(!NeighborBackend::KdTree.is_default());
    }

    #[test]
    fn round_trips_canonical_tokens() {
        for b in [
            NeighborBackend::Exact,
            NeighborBackend::KdTree,
            NeighborBackend::Approx,
            NeighborBackend::Auto,
        ] {
            assert_eq!(NeighborBackend::parse(b.as_str()), Ok(b));
        }
    }

    #[test]
    fn parse_accepts_aliases_and_case() {
        assert_eq!(
            NeighborBackend::parse("KD-Tree"),
            Ok(NeighborBackend::KdTree)
        );
        assert_eq!(
            NeighborBackend::parse("kd_tree"),
            Ok(NeighborBackend::KdTree)
        );
        assert_eq!(NeighborBackend::parse("LSH"), Ok(NeighborBackend::Approx));
        assert_eq!(NeighborBackend::parse("ann"), Ok(NeighborBackend::Approx));
        assert_eq!(NeighborBackend::parse("Brute"), Ok(NeighborBackend::Exact));
        assert_eq!(NeighborBackend::parse(" auto "), Ok(NeighborBackend::Auto));
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = NeighborBackend::parse("ball-tree").unwrap_err();
        assert!(err.contains("ball-tree"), "{err}");
        assert!(err.contains("expected"), "{err}");
    }

    #[test]
    fn auto_resolves_by_shape() {
        use NeighborBackend::*;
        // Small data: exact regardless of dim.
        assert_eq!(Auto.resolve(100, 2), Exact);
        assert_eq!(Auto.resolve(100, 16), Exact);
        // Low-dim at scale: kd-tree.
        assert_eq!(Auto.resolve(512, 2), KdTree);
        assert_eq!(Auto.resolve(100_000, 8), KdTree);
        // High-dim: exact until the approx threshold, then approx.
        assert_eq!(Auto.resolve(4096, 16), Exact);
        assert_eq!(Auto.resolve(8192, 16), Approx);
        // Non-auto variants are fixed points.
        assert_eq!(KdTree.resolve(10, 100), KdTree);
        assert_eq!(Exact.resolve(1_000_000, 2), Exact);
        assert_eq!(Approx.resolve(10, 2), Approx);
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(NeighborBackend::KdTree.to_string(), "kdtree");
        assert_eq!(NeighborBackend::Auto.to_string(), "auto");
    }
}
