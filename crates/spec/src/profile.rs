//! Dataset profiles: the characteristics the recommender reads.
//!
//! A [`DatasetProfile`] is plain data — dimensionality, a density
//! dispersion statistic, and a contamination estimate. *Computing* one
//! from a dataset lives in `anomex-core` (`profile_dataset`), which has
//! the dataset and stats machinery; this crate only defines the shape
//! so the rule-based recommender stays std-only and dependency-free.

use crate::json::Json;

/// Characteristics of one dataset, as consumed by the recommender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetProfile {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of features (the paper's testbed spans 14–100).
    pub n_features: usize,
    /// Coefficient of variation (std/mean) of sampled k-NN distances —
    /// a scale-free dispersion measure of local density.
    pub density_cv: f64,
    /// Estimated fraction of anomalous rows, from the upper tail of the
    /// sampled k-NN distance distribution.
    pub contamination: f64,
}

impl DatasetProfile {
    /// The canonical JSON object form, keys in fixed order.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("n_rows".to_string(), Json::num_usize(self.n_rows)),
            ("n_features".to_string(), Json::num_usize(self.n_features)),
            ("density_cv".to_string(), Json::num_f64(self.density_cv)),
            (
                "contamination".to_string(),
                Json::num_f64(self.contamination),
            ),
        ])
    }

    /// Parses the JSON object form.
    ///
    /// # Errors
    /// On missing or non-numeric fields.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("profile is missing '{key}'"))
        };
        let num = |key: &str| {
            field(key)?
                .as_f64()
                .ok_or_else(|| format!("profile '{key}' must be a number"))
        };
        let count = |key: &str| {
            field(key)?
                .as_usize()
                .ok_or_else(|| format!("profile '{key}' must be a non-negative integer"))
        };
        Ok(DatasetProfile {
            n_rows: count("n_rows")?,
            n_features: count("n_features")?,
            density_cv: num("density_cv")?,
            contamination: num("contamination")?,
        })
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let p = DatasetProfile {
            n_rows: 1000,
            n_features: 23,
            density_cv: 0.35,
            contamination: 0.02,
        };
        let back = DatasetProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        let text = p.to_json().emit();
        let reparsed = DatasetProfile::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(reparsed, p);
    }

    #[test]
    fn rejects_missing_fields() {
        let v = crate::json::parse(r#"{"n_rows": 10}"#).unwrap();
        assert!(DatasetProfile::from_json(&v).is_err());
    }
}
