//! Typed explainer configurations.
//!
//! An [`ExplainerSpec`] covers the paper's four explanation algorithms:
//! the two point explainers (Beam, RefOut) and the two summarizers
//! (LookOut, HiCS retrieval). Parsing accepts every explainer string
//! `anomex-serve` has historically spoken (`"beam"`, `"refout:seed=3"`,
//! `"lookout:budget=5"`, `"hics:seed=1"`) plus the full parameter set
//! the builders in `anomex-core` expose, with defaults mirroring those
//! builders exactly.

use crate::detector::json_param;
use crate::json::Json;
use crate::params::{parse_compact, ParamReader};

/// One explainer configuration. Variants carry their complete
/// spec-visible parameter set; fields not listed here (RefOut's pool
/// dimension fraction, HiCS's `alpha` and statistical test) stay at
/// the library defaults and are deliberately outside the spec schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplainerSpec {
    /// Beam subspace search (point explainer).
    Beam {
        /// Beam width per dimensionality stage.
        width: usize,
        /// Ranked subspaces retained.
        results: usize,
        /// Restrict results to the final stage's dimensionality.
        fixed_dim: bool,
    },
    /// RefOut random-pool refinement (point explainer).
    RefOut {
        /// Random subspace pool size.
        pool: usize,
        /// Beam width for the refinement stage.
        width: usize,
        /// Ranked subspaces retained.
        results: usize,
        /// RNG seed for pool sampling.
        seed: u64,
    },
    /// LookOut budgeted plot selection (summarizer).
    LookOut {
        /// Number of feature-pair plots selected.
        budget: usize,
    },
    /// HiCS contrast-based retrieval (summarizer).
    Hics {
        /// Monte-Carlo contrast iterations.
        mc: usize,
        /// Candidate subspaces retained per stage.
        cutoff: usize,
        /// Ranked subspaces retained.
        results: usize,
        /// Restrict results to the final stage's dimensionality.
        fixed_dim: bool,
        /// RNG seed for the Monte-Carlo slices.
        seed: u64,
    },
}

impl ExplainerSpec {
    /// Paper-default Beam.
    #[must_use]
    pub fn beam() -> Self {
        ExplainerSpec::Beam {
            width: 100,
            results: 100,
            fixed_dim: true,
        }
    }

    /// Paper-default RefOut with the given seed.
    #[must_use]
    pub fn refout(seed: u64) -> Self {
        ExplainerSpec::RefOut {
            pool: 100,
            width: 100,
            results: 100,
            seed,
        }
    }

    /// Paper-default LookOut (budget 100).
    #[must_use]
    pub fn lookout() -> Self {
        ExplainerSpec::LookOut { budget: 100 }
    }

    /// Paper-default HiCS retrieval with the given seed.
    #[must_use]
    pub fn hics(seed: u64) -> Self {
        ExplainerSpec::Hics {
            mc: 100,
            cutoff: 400,
            results: 100,
            fixed_dim: true,
            seed,
        }
    }

    /// The algorithm tag used in canonical encodings.
    #[must_use]
    pub fn algorithm(&self) -> &'static str {
        match self {
            ExplainerSpec::Beam { .. } => "beam",
            ExplainerSpec::RefOut { .. } => "refout",
            ExplainerSpec::LookOut { .. } => "lookout",
            ExplainerSpec::Hics { .. } => "hics",
        }
    }

    /// Whether this explainer produces an anomaly summary (LookOut,
    /// HiCS) rather than per-point subspace explanations (Beam,
    /// RefOut). Mirrors `ExplainerKind` in `anomex-core`.
    #[must_use]
    pub fn is_summary(&self) -> bool {
        matches!(
            self,
            ExplainerSpec::LookOut { .. } | ExplainerSpec::Hics { .. }
        )
    }

    /// The canonical compact encoding: algorithm tag plus **every**
    /// spec-visible parameter in fixed order.
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            ExplainerSpec::Beam {
                width,
                results,
                fixed_dim,
            } => format!("beam:width={width},results={results},fx={fixed_dim}"),
            ExplainerSpec::RefOut {
                pool,
                width,
                results,
                seed,
            } => format!("refout:pool={pool},width={width},results={results},seed={seed}"),
            ExplainerSpec::LookOut { budget } => format!("lookout:budget={budget}"),
            ExplainerSpec::Hics {
                mc,
                cutoff,
                results,
                fixed_dim,
                seed,
            } => {
                format!("hics:mc={mc},cutoff={cutoff},results={results},fx={fixed_dim},seed={seed}")
            }
        }
    }

    /// The canonical JSON object form, keys in canonical order.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("kind".to_string(), Json::Str(self.algorithm().to_string()))];
        match self {
            ExplainerSpec::Beam {
                width,
                results,
                fixed_dim,
            } => {
                fields.push(("width".to_string(), Json::num_usize(*width)));
                fields.push(("results".to_string(), Json::num_usize(*results)));
                fields.push(("fx".to_string(), Json::Bool(*fixed_dim)));
            }
            ExplainerSpec::RefOut {
                pool,
                width,
                results,
                seed,
            } => {
                fields.push(("pool".to_string(), Json::num_usize(*pool)));
                fields.push(("width".to_string(), Json::num_usize(*width)));
                fields.push(("results".to_string(), Json::num_usize(*results)));
                fields.push(("seed".to_string(), Json::num_u64(*seed)));
            }
            ExplainerSpec::LookOut { budget } => {
                fields.push(("budget".to_string(), Json::num_usize(*budget)));
            }
            ExplainerSpec::Hics {
                mc,
                cutoff,
                results,
                fixed_dim,
                seed,
            } => {
                fields.push(("mc".to_string(), Json::num_usize(*mc)));
                fields.push(("cutoff".to_string(), Json::num_usize(*cutoff)));
                fields.push(("results".to_string(), Json::num_usize(*results)));
                fields.push(("fx".to_string(), Json::Bool(*fixed_dim)));
                fields.push(("seed".to_string(), Json::num_u64(*seed)));
            }
        }
        Json::Obj(fields)
    }

    /// The stable 64-bit fingerprint of the canonical encoding —
    /// invariant under parameter reordering and default elision.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        crate::fnv1a64(self.canonical().as_bytes())
    }

    /// Parses a compact spec (`"beam"`, `"refout:seed=3"`,
    /// `"hics:mc=50,cutoff=200"`) or, when the text starts with `{`,
    /// the JSON object form.
    ///
    /// # Errors
    /// On unknown explainers, unknown parameters, or malformed values.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        if text.starts_with('{') {
            return Self::from_json(&crate::json::parse(text)?);
        }
        let (name, params) = parse_compact(text)?;
        Self::from_parts(&name, ParamReader::new(params))
    }

    /// Parses the JSON object form (`{"kind": "beam", "width": 50}`). A
    /// bare JSON string is accepted as the compact form for symmetry.
    ///
    /// # Errors
    /// On missing/unknown `kind`, unknown fields, or malformed values.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        if let Json::Str(compact) = value {
            return Self::parse(compact);
        }
        let Json::Obj(fields) = value else {
            return Err("explainer spec must be an object or a string".to_string());
        };
        let mut kind = None;
        let mut params: Vec<(String, String)> = Vec::new();
        for (key, v) in fields {
            if key == "kind" || key == "name" {
                kind = Some(
                    v.as_str()
                        .ok_or_else(|| "explainer 'kind' must be a string".to_string())?
                        .to_string(),
                );
            } else {
                params.push((key.clone(), json_param(v)?));
            }
        }
        let kind = kind.ok_or_else(|| "explainer spec is missing 'kind'".to_string())?;
        Self::from_parts(&kind, ParamReader::new(params))
    }

    fn from_parts(name: &str, mut params: ParamReader) -> Result<Self, String> {
        let spec = match name.trim().to_ascii_lowercase().as_str() {
            "beam" => ExplainerSpec::Beam {
                width: params.take_usize(&["width", "beam_width", "w"], 100)?,
                results: params.take_usize(&["results", "result_size", "r"], 100)?,
                fixed_dim: params.take_bool(&["fx", "fixed_dim"], true)?,
            },
            "refout" => ExplainerSpec::RefOut {
                pool: params.take_usize(&["pool", "pool_size"], 100)?,
                width: params.take_usize(&["width", "beam_width", "w"], 100)?,
                results: params.take_usize(&["results", "result_size", "r"], 100)?,
                seed: params.take_u64(&["seed"], 0)?,
            },
            "lookout" => {
                let budget = params.take_usize(&["budget", "b"], 100)?;
                if budget == 0 {
                    return Err("lookout budget must be positive".to_string());
                }
                ExplainerSpec::LookOut { budget }
            }
            "hics" => ExplainerSpec::Hics {
                mc: params.take_usize(&["mc", "monte_carlo", "monte_carlo_iterations"], 100)?,
                cutoff: params.take_usize(&["cutoff", "candidate_cutoff"], 400)?,
                results: params.take_usize(&["results", "result_size", "r"], 100)?,
                fixed_dim: params.take_bool(&["fx", "fixed_dim"], true)?,
                seed: params.take_u64(&["seed"], 0)?,
            },
            other => {
                return Err(format!(
                    "unknown explainer '{other}' (expected beam, refout, lookout or hics)"
                ))
            }
        };
        params.finish(spec.algorithm())?;
        Ok(spec)
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn canonical_spells_out_every_parameter() {
        assert_eq!(
            ExplainerSpec::parse("beam").unwrap().canonical(),
            "beam:width=100,results=100,fx=true"
        );
        assert_eq!(
            ExplainerSpec::parse("refout:seed=3").unwrap().canonical(),
            "refout:pool=100,width=100,results=100,seed=3"
        );
        assert_eq!(
            ExplainerSpec::parse("lookout:budget=5")
                .unwrap()
                .canonical(),
            "lookout:budget=5"
        );
        assert_eq!(
            ExplainerSpec::parse("hics:seed=1").unwrap().canonical(),
            "hics:mc=100,cutoff=400,results=100,fx=true,seed=1"
        );
    }

    #[test]
    fn historical_serve_strings_still_parse() {
        for wire in ["beam", "refout:seed=3", "lookout:budget=3", "hics:seed=9"] {
            ExplainerSpec::parse(wire).unwrap();
        }
        assert_eq!(
            ExplainerSpec::parse("lookout:budget=0").unwrap_err(),
            "lookout budget must be positive"
        );
        assert_eq!(
            ExplainerSpec::parse("shap").unwrap_err(),
            "unknown explainer 'shap' (expected beam, refout, lookout or hics)"
        );
    }

    #[test]
    fn summary_flag_matches_algorithm_family() {
        assert!(!ExplainerSpec::beam().is_summary());
        assert!(!ExplainerSpec::refout(0).is_summary());
        assert!(ExplainerSpec::lookout().is_summary());
        assert!(ExplainerSpec::hics(0).is_summary());
    }

    #[test]
    fn aliases_and_elision_keep_the_fingerprint_stable() {
        let a = ExplainerSpec::parse("beam:beam_width=40,fx=1").unwrap();
        let b = ExplainerSpec::parse("beam:fixed_dim=true,width=40,results=100").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = ExplainerSpec::parse("beam:width=41").unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn json_form_round_trips() {
        for compact in [
            "beam:width=40,results=10,fx=false",
            "refout:pool=30,seed=7",
            "lookout:budget=4",
            "hics:mc=50,cutoff=200,seed=2",
        ] {
            let spec = ExplainerSpec::parse(compact).unwrap();
            let back = ExplainerSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec);
            let reparsed = ExplainerSpec::parse(&spec.to_json().emit()).unwrap();
            assert_eq!(reparsed, spec);
        }
    }

    #[test]
    fn rejects_unknown_parameters() {
        assert!(ExplainerSpec::parse("beam:k=1").is_err());
        assert!(ExplainerSpec::parse("lookout:width=2").is_err());
        assert!(ExplainerSpec::parse(r#"{"kind": "hics", "alpha": 0.2}"#).is_err());
    }
}
