//! Shared `key=value` parameter parsing for compact spec strings.
//!
//! The compact grammar is the one `anomex-serve` has spoken since PR 3:
//! `name[:key=value,key=value,...]`. [`ParamReader`] consumes a parsed
//! parameter list by **alias sets** (so `beam_width`, `width` and `w`
//! all address the same field), applies defaults for omitted keys, and
//! rejects leftovers with the historical error wording.

use crate::json::parse_bool_token;

/// Splits `name[:params]` and the `key=value` list.
///
/// # Errors
/// On empty names or malformed `key=value` pairs.
pub(crate) fn parse_compact(text: &str) -> Result<(String, Vec<(String, String)>), String> {
    let (name, params) = text.split_once(':').unwrap_or((text, ""));
    let name = name.trim();
    if name.is_empty() {
        return Err("spec must start with an algorithm name".to_string());
    }
    let mut kv = Vec::new();
    if !params.is_empty() {
        for pair in params.split(',') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed parameter '{pair}' (expected key=value)"))?;
            kv.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    Ok((name.to_string(), kv))
}

/// Consumes a parameter list by alias sets; see the [module docs](self).
pub(crate) struct ParamReader {
    params: Vec<(String, String)>,
    used: Vec<bool>,
}

impl ParamReader {
    pub(crate) fn new(params: Vec<(String, String)>) -> Self {
        let used = vec![false; params.len()];
        ParamReader { params, used }
    }

    /// The value of the parameter matching any alias, marking every
    /// match consumed. When a key repeats, the **last** occurrence wins
    /// — mirroring how the historical serve parser folded repeated keys.
    fn take_raw(&mut self, aliases: &[&str]) -> Option<(String, String)> {
        let mut found = None;
        for (used, (key, value)) in self.used.iter_mut().zip(&self.params) {
            if aliases.iter().any(|a| key.eq_ignore_ascii_case(a)) {
                *used = true;
                found = Some((key.clone(), value.clone()));
            }
        }
        found
    }

    /// A `usize` parameter with a default.
    pub(crate) fn take_usize(&mut self, aliases: &[&str], default: usize) -> Result<usize, String> {
        match self.take_raw(aliases) {
            None => Ok(default),
            Some((key, value)) => value.parse::<usize>().map_err(|_| {
                format!("parameter '{key}' must be a non-negative integer, got '{value}'")
            }),
        }
    }

    /// A `u64` parameter with a default.
    pub(crate) fn take_u64(&mut self, aliases: &[&str], default: u64) -> Result<u64, String> {
        match self.take_raw(aliases) {
            None => Ok(default),
            Some((key, value)) => value.parse::<u64>().map_err(|_| {
                format!("parameter '{key}' must be a non-negative integer, got '{value}'")
            }),
        }
    }

    /// A free-form token parameter (e.g. an enum spelling), returned
    /// verbatim for the caller to validate; `None` when omitted.
    pub(crate) fn take_token(&mut self, aliases: &[&str]) -> Option<String> {
        self.take_raw(aliases).map(|(_, value)| value)
    }

    /// A boolean parameter with a default (`true`/`false`/`1`/`0`).
    pub(crate) fn take_bool(&mut self, aliases: &[&str], default: bool) -> Result<bool, String> {
        match self.take_raw(aliases) {
            None => Ok(default),
            Some((key, value)) => parse_bool_token(&value)
                .ok_or_else(|| format!("parameter '{key}' must be true or false, got '{value}'")),
        }
    }

    /// Errors on any parameter no `take_*` call consumed, with the
    /// historical `unknown <algo> parameter '<key>'` wording.
    pub(crate) fn finish(self, algo: &str) -> Result<(), String> {
        for ((key, _), used) in self.params.iter().zip(&self.used) {
            if !used {
                return Err(format!("unknown {algo} parameter '{key}'"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn compact_splits_name_and_params() {
        let (name, kv) = parse_compact("lof:k=5, j = 2").unwrap();
        assert_eq!(name, "lof");
        assert_eq!(
            kv,
            vec![
                ("k".to_string(), "5".to_string()),
                ("j".to_string(), "2".to_string())
            ]
        );
        let (name, kv) = parse_compact("beam").unwrap();
        assert_eq!(name, "beam");
        assert!(kv.is_empty());
        assert!(parse_compact(":k=1").is_err());
        assert!(parse_compact("lof:k").is_err());
    }

    #[test]
    fn reader_applies_aliases_defaults_and_leftovers() {
        let (_, kv) = parse_compact("x:beam_width=7,fx=1").unwrap();
        let mut r = ParamReader::new(kv);
        assert_eq!(r.take_usize(&["width", "beam_width"], 100).unwrap(), 7);
        assert_eq!(r.take_usize(&["results"], 100).unwrap(), 100);
        assert!(r.take_bool(&["fx", "fixed_dim"], false).unwrap());
        r.finish("x").unwrap();

        let (_, kv) = parse_compact("x:oops=1").unwrap();
        let mut r = ParamReader::new(kv);
        assert_eq!(r.take_usize(&["k"], 3).unwrap(), 3);
        let err = r.finish("x").unwrap_err();
        assert_eq!(err, "unknown x parameter 'oops'");
    }

    #[test]
    fn token_returns_verbatim_or_none() {
        let (_, kv) = parse_compact("x:backend=KdTree").unwrap();
        let mut r = ParamReader::new(kv);
        assert_eq!(r.take_token(&["backend"]), Some("KdTree".to_string()));
        assert_eq!(r.take_token(&["missing"]), None);
        r.finish("x").unwrap();
    }

    #[test]
    fn last_duplicate_wins() {
        let (_, kv) = parse_compact("x:k=1,k=9").unwrap();
        let mut r = ParamReader::new(kv);
        assert_eq!(r.take_usize(&["k"], 0).unwrap(), 9);
        r.finish("x").unwrap();
    }
}
