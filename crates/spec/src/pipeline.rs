//! The canonical pipeline spec: one detector × one explainer.
//!
//! A [`PipelineSpec`] is the "pipelines as data" unit the whole
//! workspace shares: eval declares the paper's 12-pipeline grid as a
//! list of these values, serve accepts them inline on the wire, and
//! the registry keys fitted models by their canonical detector half.
//! [`DatasetRef`] is the companion dataset naming scheme covering the
//! `hicsN[@seed]` synthetic presets serve has always spoken.

use crate::detector::DetectorSpec;
use crate::explainer::ExplainerSpec;
use crate::json::Json;

/// One detector × explainer pairing, as pure data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineSpec {
    /// The anomaly detector half.
    pub detector: DetectorSpec,
    /// The explanation-algorithm half.
    pub explainer: ExplainerSpec,
}

impl PipelineSpec {
    /// Pairs a detector with an explainer.
    #[must_use]
    pub fn new(detector: DetectorSpec, explainer: ExplainerSpec) -> Self {
        PipelineSpec {
            detector,
            explainer,
        }
    }

    /// Whether the explainer half is a summarizer.
    #[must_use]
    pub fn is_summary(&self) -> bool {
        self.explainer.is_summary()
    }

    /// The canonical compact encoding `explainer+detector`, each half
    /// spelled out in full (e.g.
    /// `"beam:width=100,results=100,fx=true+lof:k=15"`).
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "{}+{}",
            self.explainer.canonical(),
            self.detector.canonical()
        )
    }

    /// The canonical JSON object form:
    /// `{"explainer": {...}, "detector": {...}}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("explainer".to_string(), self.explainer.to_json()),
            ("detector".to_string(), self.detector.to_json()),
        ])
    }

    /// The stable 64-bit fingerprint of the canonical encoding —
    /// invariant under parameter reordering, default elision, and the
    /// compact-vs-JSON choice of surface syntax.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        crate::fnv1a64(self.canonical().as_bytes())
    }

    /// Parses the compact form `explainer+detector` (either half may
    /// elide defaults, e.g. `"beam+lof"`) or, when the text starts
    /// with `{`, the JSON object form.
    ///
    /// # Errors
    /// On a missing `+` separator or an invalid half.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        if text.starts_with('{') {
            return Self::from_json(&crate::json::parse(text)?);
        }
        let (explainer, detector) = text
            .split_once('+')
            .ok_or_else(|| "pipeline spec must be 'explainer+detector'".to_string())?;
        Ok(PipelineSpec {
            detector: DetectorSpec::parse(detector)?,
            explainer: ExplainerSpec::parse(explainer)?,
        })
    }

    /// Parses the JSON object form. A bare JSON string is accepted as
    /// the compact form for symmetry.
    ///
    /// # Errors
    /// On missing `detector`/`explainer` fields or invalid halves.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        if let Json::Str(compact) = value {
            return Self::parse(compact);
        }
        let Json::Obj(_) = value else {
            return Err("pipeline spec must be an object or a string".to_string());
        };
        let detector = value
            .get("detector")
            .ok_or_else(|| "pipeline spec is missing 'detector'".to_string())?;
        let explainer = value
            .get("explainer")
            .ok_or_else(|| "pipeline spec is missing 'explainer'".to_string())?;
        Ok(PipelineSpec {
            detector: DetectorSpec::from_json(detector)?,
            explainer: ExplainerSpec::from_json(explainer)?,
        })
    }
}

/// A dataset reference: either one of the synthetic `hicsN[@seed]`
/// presets (the paper's testbed, §4.1) or a registered name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DatasetRef {
    /// A synthetic HiCS-testbed preset: `dims` ∈ {14, 23, 39, 70, 100}.
    Synthetic {
        /// Preset dimensionality.
        dims: usize,
        /// Generator seed (`42` when elided, serve's historical default).
        seed: u64,
    },
    /// Any other name, resolved against loaded datasets.
    Named(String),
}

impl DatasetRef {
    /// The preset dimensionalities of the paper's synthetic testbed.
    pub const SYNTHETIC_DIMS: [usize; 5] = [14, 23, 39, 70, 100];

    /// Parses a dataset name. `hicsN[@seed]` with a known `N` becomes
    /// [`DatasetRef::Synthetic`]; anything else is [`DatasetRef::Named`]
    /// verbatim (including unknown `hicsN` dims, which must fail at
    /// lookup time with the historical "unknown dataset" error, not at
    /// parse time).
    #[must_use]
    pub fn parse(name: &str) -> Self {
        if let Some(rest) = name.strip_prefix("hics") {
            let (dims, seed) = match rest.split_once('@') {
                Some((dims, seed)) => (dims, seed.parse::<u64>().ok()),
                None => (rest, Some(42)),
            };
            if let (Ok(dims), Some(seed)) = (dims.parse::<usize>(), seed) {
                if Self::SYNTHETIC_DIMS.contains(&dims) {
                    return DatasetRef::Synthetic { dims, seed };
                }
            }
        }
        DatasetRef::Named(name.to_string())
    }

    /// The canonical name: `hicsN` for seed-42 presets, `hicsN@seed`
    /// otherwise, the verbatim name for [`DatasetRef::Named`]. Matches
    /// the wire strings serve has always accepted.
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            DatasetRef::Synthetic { dims, seed: 42 } => format!("hics{dims}"),
            DatasetRef::Synthetic { dims, seed } => format!("hics{dims}@{seed}"),
            DatasetRef::Named(name) => name.clone(),
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn compact_form_round_trips_and_elides_defaults() {
        let spec = PipelineSpec::parse("beam+lof").unwrap();
        assert_eq!(
            spec.canonical(),
            "beam:width=100,results=100,fx=true+lof:k=15"
        );
        assert_eq!(PipelineSpec::parse(&spec.canonical()).unwrap(), spec);
        assert_eq!(
            spec.fingerprint(),
            PipelineSpec::parse("beam+lof").unwrap().fingerprint()
        );
    }

    #[test]
    fn json_form_round_trips() {
        let spec = PipelineSpec::parse("hics:seed=1+iforest:seed=7").unwrap();
        let back = PipelineSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let reparsed = PipelineSpec::parse(&spec.to_json().emit()).unwrap();
        assert_eq!(reparsed, spec);
        assert!(spec.is_summary());
    }

    #[test]
    fn json_halves_accept_compact_strings() {
        let spec = PipelineSpec::parse(r#"{"detector": "lof:k=5", "explainer": "beam"}"#).unwrap();
        assert_eq!(spec.detector, DetectorSpec::parse("lof:k=5").unwrap());
        assert_eq!(spec.explainer, ExplainerSpec::beam());
    }

    #[test]
    fn rejects_malformed_pipelines() {
        assert!(PipelineSpec::parse("beam").is_err());
        assert!(PipelineSpec::parse("beam+svm").is_err());
        assert!(PipelineSpec::parse(r#"{"detector": "lof"}"#).is_err());
    }

    #[test]
    fn dataset_refs_cover_the_preset_grammar() {
        assert_eq!(
            DatasetRef::parse("hics14"),
            DatasetRef::Synthetic { dims: 14, seed: 42 }
        );
        assert_eq!(
            DatasetRef::parse("hics23@7"),
            DatasetRef::Synthetic { dims: 23, seed: 7 }
        );
        assert_eq!(
            DatasetRef::parse("hics15"),
            DatasetRef::Named("hics15".to_string())
        );
        assert_eq!(
            DatasetRef::parse("iris"),
            DatasetRef::Named("iris".to_string())
        );
        assert_eq!(DatasetRef::parse("hics14").canonical(), "hics14");
        assert_eq!(DatasetRef::parse("hics14@42").canonical(), "hics14");
        assert_eq!(DatasetRef::parse("hics70@9").canonical(), "hics70@9");
    }
}
