//! A minimal, dependency-free JSON model for spec encoding.
//!
//! The spec layer needs exactly three things from JSON: parse a request
//! fragment into a tree, look fields up by name, and emit a **canonical**
//! rendering (fixed field order, every field spelled out) that the
//! fingerprint can hash. `serde_json` would drag a non-std dependency
//! into the one crate everything else depends on, so — like the stable
//! JSON in `anomex-obs` and the hand-rolled protocol helpers in
//! `anomex-serve` — this is written from first principles.
//!
//! Numbers keep their **lexical form** (`Json::Num` stores the validated
//! token text): `u64` seeds survive round-trips bit-exactly instead of
//! being squeezed through an `f64`, and emission is trivially stable.

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its validated lexical token (e.g. `"42"`,
    /// `"-1.5e3"`) so integer precision is never lost.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list. Order is preserved from
    /// the source on parse and fixed by the caller on emit; lookups are
    /// linear, which is fine at spec sizes (a handful of fields).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks a field up by name (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`: a JSON integer, or the strings `"7"` (some
    /// clients quote numerics).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse::<u64>().ok(),
            Json::Str(s) => s.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The value as a `usize` (via [`Json::as_u64`]).
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as an `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse::<f64>().ok(),
            Json::Str(s) => s.parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The value as a bool: JSON `true`/`false`, or the lenient forms
    /// `1`/`0` and `"true"`/`"false"` used by compact param lists.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            Json::Num(raw) if raw == "1" => Some(true),
            Json::Num(raw) if raw == "0" => Some(false),
            Json::Str(s) => parse_bool_token(s),
            _ => None,
        }
    }

    /// Renders the value as compact JSON. Objects emit their fields in
    /// stored order — canonical emitters build them in canonical order.
    #[must_use]
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// A number node from an unsigned integer.
    #[must_use]
    pub fn num_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number node from a `usize`.
    #[must_use]
    pub fn num_usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// A number node from a finite `f64`, using Rust's shortest
    /// round-trip formatting (non-finite values have no JSON rendering
    /// and become `null`).
    #[must_use]
    pub fn num_f64(v: f64) -> Json {
        if v.is_finite() {
            let mut raw = format!("{v}");
            if !raw.contains(['.', 'e', 'E']) {
                // Keep floats lexically distinct from integers so
                // round-trips preserve the canonical rendering.
                raw.push_str(".0");
            }
            Json::Num(raw)
        } else {
            Json::Null
        }
    }
}

/// `"true"`/`"false"`/`"1"`/`"0"` (ASCII case-insensitive) as a bool.
#[must_use]
pub fn parse_bool_token(s: &str) -> Option<bool> {
    if s.eq_ignore_ascii_case("true") || s == "1" {
        Some(true)
    } else if s.eq_ignore_ascii_case("false") || s == "0" {
        Some(false)
    } else {
        None
    }
}

/// Renders `s` as a JSON string literal, quotes included (the same
/// escape set as `anomex-obs`'s stable JSON).
#[must_use]
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
/// A human-readable description of the first syntax error, with its
/// byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(format!("unexpected byte '{}' at {}", b as char, *pos)),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes
        .get(*pos..)
        .is_some_and(|r| r.starts_with(word.as_bytes()))
    {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // consume '"'
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape at byte {}", *pos))?;
                        // Surrogates are replaced rather than paired: spec
                        // payloads are ASCII identifiers in practice.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = bytes.get(*pos..).unwrap_or(&[]);
                let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                if let Some(c) = s.chars().next() {
                    out.push(c);
                    *pos += c.len_utf8();
                } else {
                    return Err("unterminated string".to_string());
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0usize;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("invalid number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0usize;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0usize;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    let digits = bytes
        .get(start..*pos)
        .ok_or_else(|| format!("invalid number at byte {start}"))?;
    let raw = std::str::from_utf8(digits)
        .map_err(|_| "invalid utf-8".to_string())?
        .to_string();
    Ok(Json::Num(raw))
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num("42".into()));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num("-1.5e3".into()));
        assert_eq!(parse(r#""hi\n""#).unwrap(), Json::Str("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": true}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        let Some(Json::Arr(items)) = v.get("a") else {
            panic!("a is an array");
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].get("b").and_then(Json::as_str), Some("c"));
    }

    #[test]
    fn big_u64_survives_round_trip() {
        let raw = u64::MAX.to_string();
        let v = parse(&raw).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.emit(), raw);
    }

    #[test]
    fn emit_round_trips() {
        let src = r#"{"k":15,"kind":"lof","tags":["a","b"],"on":false}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.emit(), src);
        assert_eq!(parse(&v.emit()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "1.e", "nul", "\"x", "1 2", "{a:1}",
        ] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn float_nodes_stay_lexically_floats() {
        assert_eq!(Json::num_f64(2.0).emit(), "2.0");
        assert_eq!(Json::num_f64(0.125).emit(), "0.125");
        assert_eq!(Json::num_f64(f64::NAN).emit(), "null");
    }

    #[test]
    fn lenient_accessors() {
        assert_eq!(parse("\"7\"").unwrap().as_u64(), Some(7));
        assert_eq!(parse("1").unwrap().as_bool(), Some(true));
        assert_eq!(parse("\"false\"").unwrap().as_bool(), Some(false));
        assert_eq!(parse("0.5").unwrap().as_f64(), Some(0.5));
        assert_eq!(parse("[]").unwrap().as_u64(), None);
    }
}
