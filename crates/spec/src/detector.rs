//! Typed detector configurations.
//!
//! A [`DetectorSpec`] is the canonical, versionable description of one
//! detector configuration — the paper's three detectors (§2.1) plus the
//! kNN-distance baseline. Its [`canonical`](DetectorSpec::canonical)
//! rendering is **exactly** the wire string `anomex-serve` has always
//! used as its registry/cache key (`"lof:k=15"`,
//! `"iforest:trees=100,psi=256,reps=10,seed=0"`), so adopting the spec
//! layer changes no persisted key and no served response.

use crate::backend::NeighborBackend;
use crate::json::Json;
use crate::params::{parse_compact, ParamReader};
use crate::precision::Precision;

/// One detector configuration. Every variant spells out its complete
/// hyper-parameter set; parsing fills omitted fields with the paper's
/// defaults, so two spec texts that differ only in elided defaults or
/// parameter order canonicalize — and fingerprint — identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorSpec {
    /// Local Outlier Factor (paper default `k = 15`).
    Lof {
        /// Neighborhood size.
        k: usize,
        /// Neighbor-table construction backend (default `Exact`).
        backend: NeighborBackend,
        /// Gathered-column storage precision (default `F64`).
        precision: Precision,
    },
    /// Fast Angle-Based Outlier Detection (paper default `k = 10`).
    FastAbod {
        /// Neighborhood size.
        k: usize,
        /// Neighbor-table construction backend (default `Exact`).
        backend: NeighborBackend,
        /// Gathered-column storage precision (default `F64`).
        precision: Precision,
    },
    /// Average k-nearest-neighbor distance (default `k = 5`).
    KnnDist {
        /// Neighborhood size.
        k: usize,
        /// Neighbor-table construction backend (default `Exact`).
        backend: NeighborBackend,
        /// Gathered-column storage precision (default `F64`).
        precision: Precision,
    },
    /// Isolation Forest (paper defaults `t = 100`, `ψ = 256`, 10
    /// repetitions, seed 0).
    IsolationForest {
        /// Number of trees per repetition.
        trees: usize,
        /// Subsample size ψ per tree.
        psi: usize,
        /// Score repetitions averaged.
        reps: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl DetectorSpec {
    /// Paper-default LOF.
    #[must_use]
    pub fn lof() -> Self {
        DetectorSpec::Lof {
            k: 15,
            backend: NeighborBackend::Exact,
            precision: Precision::F64,
        }
    }

    /// Paper-default Fast ABOD.
    #[must_use]
    pub fn fast_abod() -> Self {
        DetectorSpec::FastAbod {
            k: 10,
            backend: NeighborBackend::Exact,
            precision: Precision::F64,
        }
    }

    /// Default kNN-distance detector.
    #[must_use]
    pub fn knn_dist() -> Self {
        DetectorSpec::KnnDist {
            k: 5,
            backend: NeighborBackend::Exact,
            precision: Precision::F64,
        }
    }

    /// The neighbor backend of kNN-family variants (`None` for
    /// detectors that build no neighbor table).
    #[must_use]
    pub fn neighbor_backend(&self) -> Option<NeighborBackend> {
        match self {
            DetectorSpec::Lof { backend, .. }
            | DetectorSpec::FastAbod { backend, .. }
            | DetectorSpec::KnnDist { backend, .. } => Some(*backend),
            DetectorSpec::IsolationForest { .. } => None,
        }
    }

    /// A copy with the neighbor backend replaced on kNN-family
    /// variants; a no-op on `IsolationForest`.
    #[must_use]
    pub fn with_backend(self, new: NeighborBackend) -> Self {
        match self {
            DetectorSpec::Lof { k, precision, .. } => DetectorSpec::Lof {
                k,
                backend: new,
                precision,
            },
            DetectorSpec::FastAbod { k, precision, .. } => DetectorSpec::FastAbod {
                k,
                backend: new,
                precision,
            },
            DetectorSpec::KnnDist { k, precision, .. } => DetectorSpec::KnnDist {
                k,
                backend: new,
                precision,
            },
            other @ DetectorSpec::IsolationForest { .. } => other,
        }
    }

    /// The storage precision of kNN-family variants (`None` for
    /// detectors whose kernels have no precision knob).
    #[must_use]
    pub fn precision(&self) -> Option<Precision> {
        match self {
            DetectorSpec::Lof { precision, .. }
            | DetectorSpec::FastAbod { precision, .. }
            | DetectorSpec::KnnDist { precision, .. } => Some(*precision),
            DetectorSpec::IsolationForest { .. } => None,
        }
    }

    /// A copy with the storage precision replaced on kNN-family
    /// variants; a no-op on `IsolationForest`.
    #[must_use]
    pub fn with_precision(self, new: Precision) -> Self {
        match self {
            DetectorSpec::Lof { k, backend, .. } => DetectorSpec::Lof {
                k,
                backend,
                precision: new,
            },
            DetectorSpec::FastAbod { k, backend, .. } => DetectorSpec::FastAbod {
                k,
                backend,
                precision: new,
            },
            DetectorSpec::KnnDist { k, backend, .. } => DetectorSpec::KnnDist {
                k,
                backend,
                precision: new,
            },
            other @ DetectorSpec::IsolationForest { .. } => other,
        }
    }

    /// Paper-default Isolation Forest with the given seed.
    #[must_use]
    pub fn iforest(seed: u64) -> Self {
        DetectorSpec::IsolationForest {
            trees: 100,
            psi: 256,
            reps: 10,
            seed,
        }
    }

    /// The algorithm tag used in canonical encodings.
    #[must_use]
    pub fn algorithm(&self) -> &'static str {
        match self {
            DetectorSpec::Lof { .. } => "lof",
            DetectorSpec::FastAbod { .. } => "abod",
            DetectorSpec::KnnDist { .. } => "knndist",
            DetectorSpec::IsolationForest { .. } => "iforest",
        }
    }

    /// The canonical compact encoding: algorithm tag plus **every**
    /// hyper-parameter in fixed order — byte-identical to the registry
    /// key strings `anomex-serve` has used since PR 3. The one
    /// exception to "every" is `backend=`, which is elided when it is
    /// the default `Exact` so historical wire strings, fingerprints,
    /// and registry keys are unchanged by the backend knob.
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            DetectorSpec::Lof {
                k,
                backend,
                precision,
            } => format!(
                "lof:k={k}{}{}",
                backend_suffix(*backend),
                precision_suffix(*precision)
            ),
            DetectorSpec::FastAbod {
                k,
                backend,
                precision,
            } => format!(
                "abod:k={k}{}{}",
                backend_suffix(*backend),
                precision_suffix(*precision)
            ),
            DetectorSpec::KnnDist {
                k,
                backend,
                precision,
            } => format!(
                "knndist:k={k}{}{}",
                backend_suffix(*backend),
                precision_suffix(*precision)
            ),
            DetectorSpec::IsolationForest {
                trees,
                psi,
                reps,
                seed,
            } => {
                format!("iforest:trees={trees},psi={psi},reps={reps},seed={seed}")
            }
        }
    }

    /// The canonical JSON object form, keys in canonical order.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("kind".to_string(), Json::Str(self.algorithm().to_string()))];
        match self {
            DetectorSpec::Lof {
                k,
                backend,
                precision,
            }
            | DetectorSpec::FastAbod {
                k,
                backend,
                precision,
            }
            | DetectorSpec::KnnDist {
                k,
                backend,
                precision,
            } => {
                fields.push(("k".to_string(), Json::num_usize(*k)));
                if !backend.is_default() {
                    fields.push((
                        "backend".to_string(),
                        Json::Str(backend.as_str().to_string()),
                    ));
                }
                if !precision.is_default() {
                    fields.push((
                        "precision".to_string(),
                        Json::Str(precision.as_str().to_string()),
                    ));
                }
            }
            DetectorSpec::IsolationForest {
                trees,
                psi,
                reps,
                seed,
            } => {
                fields.push(("trees".to_string(), Json::num_usize(*trees)));
                fields.push(("psi".to_string(), Json::num_usize(*psi)));
                fields.push(("reps".to_string(), Json::num_usize(*reps)));
                fields.push(("seed".to_string(), Json::num_u64(*seed)));
            }
        }
        Json::Obj(fields)
    }

    /// The stable 64-bit fingerprint of the canonical encoding —
    /// invariant under parameter reordering and default elision.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        crate::fnv1a64(self.canonical().as_bytes())
    }

    /// Parses a compact spec (`"lof"`, `"LOF:k=5"`,
    /// `"iforest:seed=7,trees=50"`) or, when the text starts with `{`,
    /// the JSON object form. Accepted algorithm aliases match the
    /// historical serve wire: `fastabod` → `abod`, `knn` → `knndist`.
    ///
    /// # Errors
    /// On unknown algorithms, unknown parameters, or malformed values.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        if text.starts_with('{') {
            return Self::from_json(&crate::json::parse(text)?);
        }
        let (name, params) = parse_compact(text)?;
        Self::from_parts(&name, ParamReader::new(params))
    }

    /// Parses the JSON object form (`{"kind": "lof", "k": 5}`). A bare
    /// JSON string is accepted as the compact form for symmetry.
    ///
    /// # Errors
    /// On missing/unknown `kind`, unknown fields, or malformed values.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        if let Json::Str(compact) = value {
            return Self::parse(compact);
        }
        let Json::Obj(fields) = value else {
            return Err("detector spec must be an object or a string".to_string());
        };
        let mut kind = None;
        let mut params: Vec<(String, String)> = Vec::new();
        for (key, v) in fields {
            if key == "kind" || key == "name" {
                kind = Some(
                    v.as_str()
                        .ok_or_else(|| "detector 'kind' must be a string".to_string())?
                        .to_string(),
                );
            } else {
                params.push((key.clone(), json_param(v)?));
            }
        }
        let kind = kind.ok_or_else(|| "detector spec is missing 'kind'".to_string())?;
        Self::from_parts(&kind, ParamReader::new(params))
    }

    fn from_parts(name: &str, mut params: ParamReader) -> Result<Self, String> {
        let spec = match name.trim().to_ascii_lowercase().as_str() {
            "lof" => DetectorSpec::Lof {
                k: params.take_usize(&["k"], 15)?,
                backend: take_backend(&mut params)?,
                precision: take_precision(&mut params)?,
            },
            "abod" | "fastabod" => DetectorSpec::FastAbod {
                k: params.take_usize(&["k"], 10)?,
                backend: take_backend(&mut params)?,
                precision: take_precision(&mut params)?,
            },
            "knndist" | "knn" => DetectorSpec::KnnDist {
                k: params.take_usize(&["k"], 5)?,
                backend: take_backend(&mut params)?,
                precision: take_precision(&mut params)?,
            },
            "iforest" => DetectorSpec::IsolationForest {
                trees: params.take_usize(&["trees"], 100)?,
                psi: params.take_usize(&["psi"], 256)?,
                reps: params.take_usize(&["reps"], 10)?,
                seed: params.take_u64(&["seed"], 0)?,
            },
            other => {
                return Err(format!(
                    "unknown detector '{other}' (expected lof, abod, iforest or knndist)"
                ))
            }
        };
        params.finish(spec.algorithm())?;
        Ok(spec)
    }
}

/// The `,backend=<tok>` canonical suffix — empty for the default.
fn backend_suffix(backend: NeighborBackend) -> String {
    if backend.is_default() {
        String::new()
    } else {
        format!(",backend={}", backend.as_str())
    }
}

/// Consumes the optional `backend=` param (alias `nn`).
fn take_backend(params: &mut ParamReader) -> Result<NeighborBackend, String> {
    match params.take_token(&["backend", "nn"]) {
        None => Ok(NeighborBackend::Exact),
        Some(token) => NeighborBackend::parse(&token)
            .map_err(|e| format!("parameter 'backend' is invalid: {e}")),
    }
}

/// The `,precision=<tok>` canonical suffix — empty for the default.
fn precision_suffix(precision: Precision) -> String {
    if precision.is_default() {
        String::new()
    } else {
        format!(",precision={}", precision.as_str())
    }
}

/// Consumes the optional `precision=` param (alias `prec`).
fn take_precision(params: &mut ParamReader) -> Result<Precision, String> {
    match params.take_token(&["precision", "prec"]) {
        None => Ok(Precision::F64),
        Some(token) => {
            Precision::parse(&token).map_err(|e| format!("parameter 'precision' is invalid: {e}"))
        }
    }
}

/// Renders one JSON parameter value back to compact-token text.
pub(crate) fn json_param(v: &Json) -> Result<String, String> {
    match v {
        Json::Num(raw) => Ok(raw.clone()),
        Json::Str(s) => Ok(s.clone()),
        Json::Bool(b) => Ok(b.to_string()),
        other => Err(format!("unsupported parameter value {}", other.emit())),
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn canonical_matches_historical_wire_strings() {
        assert_eq!(DetectorSpec::parse("lof").unwrap().canonical(), "lof:k=15");
        assert_eq!(
            DetectorSpec::parse("LOF:k=5").unwrap().canonical(),
            "lof:k=5"
        );
        assert_eq!(
            DetectorSpec::parse("fastabod").unwrap().canonical(),
            "abod:k=10"
        );
        assert_eq!(
            DetectorSpec::parse("knn:k=3").unwrap().canonical(),
            "knndist:k=3"
        );
        assert_eq!(
            DetectorSpec::parse("iforest:trees=50,seed=7")
                .unwrap()
                .canonical(),
            "iforest:trees=50,psi=256,reps=10,seed=7"
        );
    }

    #[test]
    fn param_order_and_elision_do_not_change_the_fingerprint() {
        let a = DetectorSpec::parse("iforest:seed=7,trees=50").unwrap();
        let b = DetectorSpec::parse("iforest:trees=50,psi=256,reps=10,seed=7").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = DetectorSpec::parse("iforest:seed=8,trees=50").unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn json_form_round_trips() {
        for compact in [
            "lof:k=15",
            "abod:k=10",
            "knndist:k=5",
            "iforest:trees=100,psi=256,reps=10,seed=0",
        ] {
            let spec = DetectorSpec::parse(compact).unwrap();
            let back = DetectorSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec);
            let reparsed = DetectorSpec::parse(&spec.to_json().emit()).unwrap();
            assert_eq!(reparsed, spec);
        }
    }

    #[test]
    fn json_field_order_is_irrelevant() {
        let a = DetectorSpec::parse(r#"{"kind": "iforest", "seed": 7, "trees": 50}"#).unwrap();
        let b = DetectorSpec::parse(r#"{"trees": 50, "seed": 7, "kind": "iforest"}"#).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn rejects_unknowns() {
        assert!(DetectorSpec::parse("svm").is_err());
        assert!(DetectorSpec::parse("lof:q=1").is_err());
        assert!(DetectorSpec::parse("lof:k=nope").is_err());
        assert!(DetectorSpec::parse(r#"{"k": 5}"#).is_err());
        assert!(DetectorSpec::parse(r#"{"kind": "lof", "q": 1}"#).is_err());
        assert!(DetectorSpec::parse("lof:backend=ball-tree").is_err());
        assert!(DetectorSpec::parse("iforest:backend=kdtree").is_err());
    }

    #[test]
    fn exact_backend_is_elided_from_canonical_forms() {
        // Historical wire strings are byte-identical: an explicit
        // backend=exact canonicalizes to the pre-backend spelling.
        let spec = DetectorSpec::parse("lof:k=15,backend=exact").unwrap();
        assert_eq!(spec, DetectorSpec::lof());
        assert_eq!(spec.canonical(), "lof:k=15");
        assert_eq!(spec.fingerprint(), DetectorSpec::lof().fingerprint());
        assert_eq!(spec.to_json().emit(), r#"{"kind":"lof","k":15}"#);
    }

    #[test]
    fn non_default_backend_round_trips_everywhere() {
        let spec = DetectorSpec::parse("lof:k=15,backend=kdtree").unwrap();
        assert_eq!(
            spec,
            DetectorSpec::Lof {
                k: 15,
                backend: NeighborBackend::KdTree,
                precision: Precision::F64
            }
        );
        assert_eq!(spec.canonical(), "lof:k=15,backend=kdtree");
        assert_ne!(spec.fingerprint(), DetectorSpec::lof().fingerprint());
        // Compact → JSON → compact round trip preserves the backend.
        let back = DetectorSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let reparsed = DetectorSpec::parse(&spec.canonical()).unwrap();
        assert_eq!(reparsed, spec);
        // Aliases and case fold to the same canonical form.
        let aliased = DetectorSpec::parse("LOF:k=15,nn=KD-Tree").unwrap();
        assert_eq!(aliased, spec);
        // Approx and auto spell out too.
        assert_eq!(
            DetectorSpec::parse("knn:backend=lsh").unwrap().canonical(),
            "knndist:k=5,backend=approx"
        );
        assert_eq!(
            DetectorSpec::parse("abod:backend=auto")
                .unwrap()
                .canonical(),
            "abod:k=10,backend=auto"
        );
    }

    #[test]
    fn default_precision_is_elided_from_canonical_forms() {
        // An explicit precision=f64 canonicalizes to the historical
        // spelling, so pre-precision wire strings, fingerprints, and
        // registry keys are all unchanged.
        let spec = DetectorSpec::parse("lof:k=15,precision=f64").unwrap();
        assert_eq!(spec, DetectorSpec::lof());
        assert_eq!(spec.canonical(), "lof:k=15");
        assert_eq!(spec.fingerprint(), DetectorSpec::lof().fingerprint());
        assert_eq!(spec.to_json().emit(), r#"{"kind":"lof","k":15}"#);
    }

    #[test]
    fn f32_precision_round_trips_everywhere() {
        let spec = DetectorSpec::parse("lof:k=15,precision=f32").unwrap();
        assert_eq!(
            spec,
            DetectorSpec::Lof {
                k: 15,
                backend: NeighborBackend::Exact,
                precision: Precision::F32
            }
        );
        assert_eq!(spec.canonical(), "lof:k=15,precision=f32");
        assert_ne!(spec.fingerprint(), DetectorSpec::lof().fingerprint());
        let back = DetectorSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let reparsed = DetectorSpec::parse(&spec.canonical()).unwrap();
        assert_eq!(reparsed, spec);
        // Aliases and case fold to the same canonical form.
        let aliased = DetectorSpec::parse("LOF:k=15,prec=Single").unwrap();
        assert_eq!(aliased, spec);
        // Backend and precision compose, in fixed canonical order.
        let both = DetectorSpec::parse("knn:prec=f32,nn=kdtree").unwrap();
        assert_eq!(both.canonical(), "knndist:k=5,backend=kdtree,precision=f32");
        assert_eq!(
            both.to_json().emit(),
            r#"{"kind":"knndist","k":5,"backend":"kdtree","precision":"f32"}"#
        );
        // iforest has no precision knob.
        assert!(DetectorSpec::parse("iforest:precision=f32").is_err());
        assert!(DetectorSpec::parse("lof:precision=f16").is_err());
    }

    #[test]
    fn with_precision_and_accessor() {
        let spec = DetectorSpec::fast_abod().with_precision(Precision::F32);
        assert_eq!(spec.precision(), Some(Precision::F32));
        assert_eq!(spec.canonical(), "abod:k=10,precision=f32");
        // with_backend preserves precision and vice versa.
        let moved = spec.with_backend(NeighborBackend::Auto);
        assert_eq!(moved.precision(), Some(Precision::F32));
        assert_eq!(
            moved.with_precision(Precision::F64).canonical(),
            "abod:k=10,backend=auto"
        );
        let forest = DetectorSpec::iforest(0).with_precision(Precision::F32);
        assert_eq!(forest, DetectorSpec::iforest(0));
        assert_eq!(forest.precision(), None);
    }

    #[test]
    fn with_backend_and_accessor() {
        let spec = DetectorSpec::lof().with_backend(NeighborBackend::Auto);
        assert_eq!(spec.neighbor_backend(), Some(NeighborBackend::Auto));
        assert_eq!(spec.canonical(), "lof:k=15,backend=auto");
        let forest = DetectorSpec::iforest(0).with_backend(NeighborBackend::KdTree);
        assert_eq!(forest, DetectorSpec::iforest(0));
        assert_eq!(forest.neighbor_backend(), None);
    }
}
