//! Canonical pipeline specifications for the anomex workspace —
//! "pipelines as data" (ROADMAP item 4).
//!
//! Every layer of the workspace describes the same 12-pipeline grid
//! (the paper's Beam/RefOut/LookOut/HiCS × LOF/FastABOD/iForest study)
//! but historically re-encoded it per layer: constructor calls in
//! `anomex-core`, grid loops in `anomex-eval`, string parsers in
//! `anomex-serve`. This crate is the single typed source of truth:
//!
//! * [`DetectorSpec`] / [`ExplainerSpec`] / [`PipelineSpec`] — typed
//!   configurations with a **canonical** compact encoding (the exact
//!   wire strings serve has always spoken, defaults spelled out) and a
//!   hand-rolled stable JSON form ([`json::Json`], obs-style, no
//!   external deps).
//! * [`PipelineSpec::fingerprint`] — an FNV-1a 64 hash of the
//!   canonical form, invariant under parameter reordering, default
//!   elision, and compact-vs-JSON surface syntax. Registry keys and
//!   caches key on this, so semantically equal configs share slots.
//! * [`DatasetProfile`] + [`recommend`] — dataset characteristics and
//!   a deterministic rule-based recommender mapping profile + task to
//!   a spec with a machine-readable reasoning trace, including the
//!   measured-crossover rule that switches kNN detectors to
//!   `backend=auto` at scale (ROADMAP item 1c).
//! * [`ServeSpec`] — the serving stack's configuration as data (front
//!   edge, registry shards, batcher shape, queue-wait SLO), consumed
//!   by the `anomex_serve` binary's `--config`.
//!
//! The crate is deliberately `std`-only and dependency-free so every
//! other crate (core, eval, serve) can depend on it without cycles.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod backend;
pub mod detector;
pub mod explainer;
pub mod json;
mod params;
pub mod pipeline;
pub mod precision;
pub mod profile;
pub mod recommend;
pub mod serve;

pub use backend::NeighborBackend;
pub use detector::DetectorSpec;
pub use explainer::ExplainerSpec;
pub use json::Json;
pub use pipeline::{DatasetRef, PipelineSpec};
pub use precision::Precision;
pub use profile::DatasetProfile;
pub use recommend::{recommend, RecommendTask, Recommendation, TraceEntry};
pub use serve::{FrontEdge, ServeSpec, SloSpec};

/// FNV-1a 64-bit hash — the workspace's stable fingerprint function.
/// Stable across platforms and releases by construction (pure integer
/// arithmetic over bytes), unlike `std`'s randomized hashers.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crate_surface_is_wired_together() {
        let spec = PipelineSpec::parse("beam+lof").unwrap();
        assert_eq!(spec.fingerprint(), fnv1a64(spec.canonical().as_bytes()));
    }
}
