//! Storage-precision selection for kNN-family detector kernels.
//!
//! The distance kernels are memory-bound: at the sizes the comparative
//! grid sweeps, every blocked pass streams the gathered column matrix
//! through the cache, so halving the element width nearly halves the
//! traffic. `Precision` is the canonical knob for that trade: `F64`
//! (the default) keeps the bit-exact double-precision reference path,
//! `F32` stores gathered columns as `f32` while **accumulating in
//! `f64`** — each `f32` operand widens exactly to `f64` before any
//! multiply, so the only error is the one rounding at gather time.
//!
//! Like [`NeighborBackend`], the knob travels inside `DetectorSpec`
//! params and is elided from canonical strings, JSON, and fingerprints
//! when it is the default `F64`, so historical wire forms, registry
//! keys, and golden artifacts are unchanged.
//!
//! [`NeighborBackend`]: crate::NeighborBackend

/// How a kNN-family detector stores gathered feature columns when
/// building its neighbor table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full double-precision storage and accumulation; bit-identical
    /// to the reference scalar kernel. The default.
    #[default]
    F64,
    /// Single-precision storage with double-precision accumulation.
    /// Halves kernel memory traffic; squared distances differ from the
    /// reference only through the one `f64 → f32` rounding per gathered
    /// element, and duplicate rows still measure exactly `0.0`.
    F32,
}

impl Precision {
    /// Canonical lowercase wire token (`f64`, `f32`) used in
    /// `DetectorSpec` params and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }

    /// Parse a wire token, case-insensitively, accepting the aliases
    /// `double`/`full` for `f64` and `single`/`half-width` spelling
    /// `float` for `f32`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let t = s.trim().to_ascii_lowercase();
        match t.as_str() {
            "f64" | "double" | "full" => Ok(Precision::F64),
            "f32" | "single" | "float" => Ok(Precision::F32),
            _ => Err(format!("unknown precision {s:?} (expected f64 or f32)")),
        }
    }

    /// True for the default precision, whose `precision=` param is
    /// elided from canonical spec strings so historical wire forms
    /// stay byte-identical.
    pub fn is_default(self) -> bool {
        self == Precision::F64
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_f64() {
        assert_eq!(Precision::default(), Precision::F64);
        assert!(Precision::F64.is_default());
        assert!(!Precision::F32.is_default());
    }

    #[test]
    fn round_trips_canonical_tokens() {
        for p in [Precision::F64, Precision::F32] {
            assert_eq!(Precision::parse(p.as_str()), Ok(p));
        }
    }

    #[test]
    fn parse_accepts_aliases_and_case() {
        assert_eq!(Precision::parse("Double"), Ok(Precision::F64));
        assert_eq!(Precision::parse("full"), Ok(Precision::F64));
        assert_eq!(Precision::parse("SINGLE"), Ok(Precision::F32));
        assert_eq!(Precision::parse(" float "), Ok(Precision::F32));
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = Precision::parse("f16").unwrap_err();
        assert!(err.contains("f16"), "{err}");
        assert!(err.contains("expected"), "{err}");
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(Precision::F64.to_string(), "f64");
        assert_eq!(Precision::F32.to_string(), "f32");
    }
}
