//! Typed serve configuration — the spec-layer surface for the serving
//! stack (ROADMAP item 2).
//!
//! The `anomex_serve` binary historically took its shape from CLI flags
//! alone; a [`ServeSpec`] is the same configuration as data, with the
//! crate's usual stable JSON form, so deployments can be checked in,
//! diffed, and fingerprinted like pipelines. The spec crate cannot
//! depend on `anomex-serve` (the dependency points the other way), so
//! the defaults here deliberately mirror the binary's: reactor edge,
//! 8 registry shards, a 1024-deep queue cut into batches of 32 after at
//! most 2 ms, 2 workers, no deadline, no SLO.
//!
//! Parsing is lenient about *missing* keys (they take defaults, so a
//! checked-in config can name only what it overrides) and strict about
//! *invalid* values ([`ServeSpec::validate`] runs on every parse).

use crate::json::Json;

/// Which TCP edge accepts connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrontEdge {
    /// The non-blocking `anomex-reactor` poll loop — one thread
    /// multiplexing every connection; the default.
    #[default]
    Reactor,
    /// The legacy thread-per-connection edge.
    Threaded,
}

impl FrontEdge {
    /// Canonical lowercase wire token (`reactor` / `threaded`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FrontEdge::Reactor => "reactor",
            FrontEdge::Threaded => "threaded",
        }
    }

    /// Parses a wire token, case-insensitively.
    ///
    /// # Errors
    /// On anything other than `reactor` or `threaded`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reactor" => Ok(FrontEdge::Reactor),
            "threaded" => Ok(FrontEdge::Threaded),
            other => Err(format!(
                "unknown front edge '{other}' (expected reactor or threaded)"
            )),
        }
    }
}

/// A queue-wait service-level objective: shed new requests with a typed
/// `overloaded` error while `quantile` of recent queue waits exceeds
/// `limit_ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// The queue-wait budget in milliseconds.
    pub limit_ms: u64,
    /// The quantile held to the budget (e.g. 0.99 for p99).
    pub quantile: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            limit_ms: 50,
            quantile: 0.99,
        }
    }
}

/// The full serving configuration, as data.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// Which TCP edge accepts connections.
    pub front: FrontEdge,
    /// Model-registry shard count (rounded up to a power of two by the
    /// registry).
    pub shards: usize,
    /// Request-queue capacity before backpressure rejects.
    pub queue: usize,
    /// Maximum requests coalesced into one batch.
    pub batch: usize,
    /// Maximum batch-coalescing delay in milliseconds.
    pub delay_ms: u64,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Per-request deadline in milliseconds (`None` = wait forever).
    pub deadline_ms: Option<u64>,
    /// Queue-wait SLO arming load shedding (`None` = queue-full
    /// backpressure only).
    pub slo: Option<SloSpec>,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            front: FrontEdge::Reactor,
            shards: 8,
            queue: 1024,
            batch: 32,
            delay_ms: 2,
            workers: 2,
            deadline_ms: None,
            slo: None,
        }
    }
}

impl ServeSpec {
    /// The canonical JSON object form, keys in fixed order; `None`
    /// fields are elided.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "front".to_string(),
                Json::Str(self.front.as_str().to_string()),
            ),
            ("shards".to_string(), Json::num_usize(self.shards)),
            ("queue".to_string(), Json::num_usize(self.queue)),
            ("batch".to_string(), Json::num_usize(self.batch)),
            ("delay_ms".to_string(), Json::num_u64(self.delay_ms)),
            ("workers".to_string(), Json::num_usize(self.workers)),
        ];
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Json::num_u64(ms)));
        }
        if let Some(slo) = &self.slo {
            fields.push((
                "slo".to_string(),
                Json::Obj(vec![
                    ("limit_ms".to_string(), Json::num_u64(slo.limit_ms)),
                    ("quantile".to_string(), Json::num_f64(slo.quantile)),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// Parses the JSON object form. Missing keys take their defaults,
    /// so a config may name only what it overrides; the result is
    /// validated.
    ///
    /// # Errors
    /// On non-object input, mistyped fields, or values
    /// [`ServeSpec::validate`] rejects.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        if !matches!(value, Json::Obj(_)) {
            return Err("serve spec must be a JSON object".to_string());
        }
        let mut spec = ServeSpec::default();
        let count = |key: &str, default: usize| match value.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_usize()
                .ok_or_else(|| format!("serve spec '{key}' must be a non-negative integer")),
        };
        let millis = |key: &str| match value.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("serve spec '{key}' must be a non-negative integer")),
        };
        if let Some(front) = value.get("front") {
            let token = front
                .as_str()
                .ok_or_else(|| "serve spec 'front' must be a string".to_string())?;
            spec.front = FrontEdge::parse(token)?;
        }
        spec.shards = count("shards", spec.shards)?;
        spec.queue = count("queue", spec.queue)?;
        spec.batch = count("batch", spec.batch)?;
        spec.delay_ms = millis("delay_ms")?.unwrap_or(spec.delay_ms);
        spec.workers = count("workers", spec.workers)?;
        spec.deadline_ms = millis("deadline_ms")?;
        if let Some(slo) = value.get("slo") {
            if !matches!(slo, Json::Obj(_)) {
                return Err("serve spec 'slo' must be a JSON object".to_string());
            }
            let mut parsed = SloSpec::default();
            if let Some(v) = slo.get("limit_ms") {
                parsed.limit_ms = v
                    .as_u64()
                    .ok_or_else(|| "serve spec 'slo.limit_ms' must be a non-negative integer")?;
            }
            if let Some(v) = slo.get("quantile") {
                parsed.quantile = v
                    .as_f64()
                    .ok_or_else(|| "serve spec 'slo.quantile' must be a number")?;
            }
            spec.slo = Some(parsed);
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Parses JSON text (convenience over [`Self::from_json`]).
    ///
    /// # Errors
    /// On malformed JSON or invalid fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&crate::json::parse(text)?)
    }

    /// Checks the invariants the serving stack assumes.
    ///
    /// # Errors
    /// On a zero shard/queue/batch/worker count, a zero deadline or SLO
    /// budget, or an SLO quantile outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        let positive = |name: &str, v: usize| {
            if v == 0 {
                Err(format!("serve spec '{name}' must be at least 1"))
            } else {
                Ok(())
            }
        };
        positive("shards", self.shards)?;
        positive("queue", self.queue)?;
        positive("batch", self.batch)?;
        positive("workers", self.workers)?;
        if self.deadline_ms == Some(0) {
            return Err("serve spec 'deadline_ms' must be at least 1".to_string());
        }
        if let Some(slo) = &self.slo {
            if slo.limit_ms == 0 {
                return Err("serve spec 'slo.limit_ms' must be at least 1".to_string());
            }
            if !(0.0..=1.0).contains(&slo.quantile) {
                return Err(format!(
                    "serve spec 'slo.quantile' must be in [0, 1], got {}",
                    slo.quantile
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn defaults_round_trip() {
        let spec = ServeSpec::default();
        let back = ServeSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(spec.front, FrontEdge::Reactor);
        assert!(spec.slo.is_none());
    }

    #[test]
    fn full_config_round_trips_through_text() {
        let spec = ServeSpec {
            front: FrontEdge::Threaded,
            shards: 16,
            queue: 64,
            batch: 8,
            delay_ms: 1,
            workers: 4,
            deadline_ms: Some(250),
            slo: Some(SloSpec {
                limit_ms: 20,
                quantile: 0.95,
            }),
        };
        let text = spec.to_json().emit();
        assert_eq!(ServeSpec::parse(&text).unwrap(), spec);
    }

    #[test]
    fn partial_configs_take_defaults() {
        let spec = ServeSpec::parse(r#"{"shards": 4, "slo": {"limit_ms": 10}}"#).unwrap();
        assert_eq!(spec.shards, 4);
        assert_eq!(spec.queue, ServeSpec::default().queue);
        let slo = spec.slo.unwrap();
        assert_eq!(slo.limit_ms, 10);
        assert!((slo.quantile - 0.99).abs() < 1e-12, "default quantile");
    }

    #[test]
    fn invalid_values_are_rejected_with_field_names() {
        let err = ServeSpec::parse(r#"{"queue": 0}"#).unwrap_err();
        assert!(err.contains("queue"), "{err}");
        let err = ServeSpec::parse(r#"{"slo": {"quantile": 1.5}}"#).unwrap_err();
        assert!(err.contains("quantile"), "{err}");
        let err = ServeSpec::parse(r#"{"front": "forked"}"#).unwrap_err();
        assert!(err.contains("forked"), "{err}");
        assert!(ServeSpec::parse("[]").is_err());
    }

    #[test]
    fn front_edge_tokens_round_trip() {
        assert_eq!(FrontEdge::parse("Reactor").unwrap(), FrontEdge::Reactor);
        assert_eq!(FrontEdge::parse(" threaded ").unwrap(), FrontEdge::Threaded);
        assert!(FrontEdge::parse("epoll").is_err());
        assert_eq!(FrontEdge::default().as_str(), "reactor");
    }
}
