//! Property tests for spec round-tripping (hand-rolled, seeded).
//!
//! No external property-testing dependency: a SplitMix64 generator
//! drives a few hundred random specs per property, so failures are
//! reproducible from the fixed seed.

use anomex_spec::{DetectorSpec, ExplainerSpec, Json, NeighborBackend, PipelineSpec, Precision};

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn arbitrary_backend(rng: &mut SplitMix64) -> NeighborBackend {
    match rng.below(4) {
        0 => NeighborBackend::Exact,
        1 => NeighborBackend::KdTree,
        2 => NeighborBackend::Approx,
        _ => NeighborBackend::Auto,
    }
}

fn arbitrary_precision(rng: &mut SplitMix64) -> Precision {
    if rng.bool() {
        Precision::F64
    } else {
        Precision::F32
    }
}

fn arbitrary_detector(rng: &mut SplitMix64) -> DetectorSpec {
    match rng.below(4) {
        0 => DetectorSpec::Lof {
            k: rng.usize_in(1, 200),
            backend: arbitrary_backend(rng),
            precision: arbitrary_precision(rng),
        },
        1 => DetectorSpec::FastAbod {
            k: rng.usize_in(1, 200),
            backend: arbitrary_backend(rng),
            precision: arbitrary_precision(rng),
        },
        2 => DetectorSpec::KnnDist {
            k: rng.usize_in(1, 200),
            backend: arbitrary_backend(rng),
            precision: arbitrary_precision(rng),
        },
        _ => DetectorSpec::IsolationForest {
            trees: rng.usize_in(1, 300),
            psi: rng.usize_in(2, 1024),
            reps: rng.usize_in(1, 20),
            seed: rng.next(),
        },
    }
}

fn arbitrary_explainer(rng: &mut SplitMix64) -> ExplainerSpec {
    match rng.below(4) {
        0 => ExplainerSpec::Beam {
            width: rng.usize_in(1, 500),
            results: rng.usize_in(1, 500),
            fixed_dim: rng.bool(),
        },
        1 => ExplainerSpec::RefOut {
            pool: rng.usize_in(1, 500),
            width: rng.usize_in(1, 500),
            results: rng.usize_in(1, 500),
            seed: rng.next(),
        },
        2 => ExplainerSpec::LookOut {
            budget: rng.usize_in(1, 200),
        },
        _ => ExplainerSpec::Hics {
            mc: rng.usize_in(1, 500),
            cutoff: rng.usize_in(1, 1000),
            results: rng.usize_in(1, 500),
            fixed_dim: rng.bool(),
            seed: rng.next(),
        },
    }
}

fn arbitrary_pipeline(rng: &mut SplitMix64) -> PipelineSpec {
    PipelineSpec::new(arbitrary_detector(rng), arbitrary_explainer(rng))
}

/// Shuffles an object's fields in place (Fisher–Yates), recursing into
/// nested objects — exercising the order-invariance of `from_json`.
fn shuffle_fields(value: &mut Json, rng: &mut SplitMix64) {
    if let Json::Obj(fields) = value {
        for (_, v) in fields.iter_mut() {
            shuffle_fields(v, rng);
        }
        for i in (1..fields.len()).rev() {
            let j = rng.below((i + 1) as u64) as usize;
            fields.swap(i, j);
        }
    }
}

#[test]
fn parse_encode_is_identity_on_compact_form() {
    let mut rng = SplitMix64(0xA5A5_0001);
    for _ in 0..300 {
        let spec = arbitrary_pipeline(&mut rng);
        let compact = spec.canonical();
        let reparsed = PipelineSpec::parse(&compact).expect("canonical form must parse");
        assert_eq!(reparsed, spec, "compact round-trip failed for {compact}");
        assert_eq!(reparsed.canonical(), compact);
    }
}

#[test]
fn parse_encode_is_identity_on_json_form() {
    let mut rng = SplitMix64(0xA5A5_0002);
    for _ in 0..300 {
        let spec = arbitrary_pipeline(&mut rng);
        let text = spec.to_json().emit();
        let reparsed = PipelineSpec::parse(&text).expect("JSON form must parse");
        assert_eq!(reparsed, spec, "JSON round-trip failed for {text}");
    }
}

#[test]
fn fingerprint_is_invariant_under_json_field_reordering() {
    let mut rng = SplitMix64(0xA5A5_0003);
    for _ in 0..300 {
        let spec = arbitrary_pipeline(&mut rng);
        let mut json = spec.to_json();
        shuffle_fields(&mut json, &mut rng);
        let reparsed = PipelineSpec::from_json(&json).expect("shuffled JSON must parse");
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.fingerprint(), spec.fingerprint());
    }
}

#[test]
fn fingerprint_is_invariant_under_default_elision() {
    // Every default-valued parameter dropped from the compact text must
    // parse back to the same spec and fingerprint.
    let cases = [
        ("beam+lof", "beam:width=100,results=100,fx=true+lof:k=15"),
        (
            "refout:seed=9+iforest:seed=9",
            "refout:pool=100,width=100,results=100,seed=9+iforest:trees=100,psi=256,reps=10,seed=9",
        ),
        ("lookout+abod", "lookout:budget=100+abod:k=10"),
        (
            "hics+knndist",
            "hics:mc=100,cutoff=400,results=100,fx=true,seed=0+knndist:k=5",
        ),
    ];
    for (elided, full) in cases {
        let a = PipelineSpec::parse(elided).unwrap();
        let b = PipelineSpec::parse(full).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.canonical(), full);
    }
}

#[test]
fn distinct_specs_get_distinct_fingerprints() {
    // Not a cryptographic guarantee, but over a few hundred random
    // specs FNV-1a collisions would indicate a canonicalization bug
    // (e.g. two different specs rendering the same canonical text).
    let mut rng = SplitMix64(0xA5A5_0004);
    let mut seen: Vec<(u64, PipelineSpec)> = Vec::new();
    for _ in 0..300 {
        let spec = arbitrary_pipeline(&mut rng);
        let fp = spec.fingerprint();
        for (other_fp, other) in &seen {
            if spec == *other {
                assert_eq!(fp, *other_fp);
            } else {
                assert_ne!(
                    fp,
                    *other_fp,
                    "collision between {} and {}",
                    spec.canonical(),
                    other.canonical()
                );
            }
        }
        seen.push((fp, spec));
    }
}
