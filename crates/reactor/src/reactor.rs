//! The event loop: accept, frame, dispatch, drain, flush, reap.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::conn::{Connection, Pending};
use crate::sys;

/// An in-flight response the loop polls without blocking.
///
/// Implementations wrap whatever the backend hands out for asynchronous
/// work — in `anomex-serve`, a batcher `Ticket` plus its serializer.
/// `try_take` must be cheap and non-blocking; it is called once per loop
/// iteration while the completion is at the front of its connection's
/// FIFO, and must return `Some` exactly once.
pub trait Completion {
    /// Return the finished response line, or `None` while still running.
    fn try_take(&mut self) -> Option<String>;
}

/// What a [`LineHandler`] produced for one request line.
pub enum Submission {
    /// The response is already known (fast path, or a typed error such
    /// as a shed/overload rejection).
    Done(String),
    /// Work was queued; the loop polls the completion for the response.
    Pending(Box<dyn Completion + Send>),
    /// The line owes no response (e.g. whitespace-only input).
    Skip,
}

/// Maps one request line to a response, synchronously or not.
///
/// Called on the reactor thread, so implementations must not block:
/// either answer immediately or enqueue into a bounded queue and return
/// [`Submission::Pending`]. A full queue should be answered with a typed
/// error via [`Submission::Done`] — backpressure belongs on the wire,
/// not in the loop.
pub trait LineHandler {
    /// Handle one framed request line (newline already stripped).
    fn handle_line(&self, line: &str) -> Submission;
}

/// Tunables for the loop; `Default` matches the serve binary's defaults.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Longest accepted request line in bytes; longer lines terminate
    /// the connection (after `overflow_response`, if configured).
    pub max_line: usize,
    /// Unanswered requests a single connection may pipeline before the
    /// loop stops reading from it (flow control, bounded memory).
    pub max_pipeline: usize,
    /// Concurrent connections; beyond this, accepts pause (the listen
    /// backlog absorbs the burst).
    pub max_conns: usize,
    /// Idle poll timeout in milliseconds — the latency of noticing the
    /// stop flag when nothing else is happening.
    pub poll_timeout_ms: i32,
    /// Response line sent before closing a connection that overflowed
    /// `max_line`, so clients see a typed error instead of a bare reset.
    pub overflow_response: Option<String>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_line: 1 << 20,
            max_pipeline: 64,
            max_conns: 1024,
            poll_timeout_ms: 20,
            overflow_response: None,
        }
    }
}

/// Counters the loop maintains; returned by [`Reactor::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Connections accepted over the loop's lifetime.
    pub accepted: u64,
    /// Request lines framed and dispatched to the handler.
    pub lines_in: u64,
    /// Response lines handed to write buffers.
    pub responses_out: u64,
    /// Connections terminated for oversized request lines.
    pub overflows: u64,
}

/// A single-threaded poll loop serving `H` over newline-framed TCP.
pub struct Reactor<H: LineHandler> {
    listener: TcpListener,
    handler: H,
    config: ReactorConfig,
    stop: Arc<AtomicBool>,
    conns: Vec<Connection>,
    stats: ReactorStats,
}

#[cfg(unix)]
fn fd_of<T: std::os::fd::AsRawFd>(t: &T) -> sys::Fd {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of<T>(_t: &T) -> sys::Fd {
    0
}

impl<H: LineHandler> Reactor<H> {
    /// Bind a non-blocking listener on `addr` and prepare the loop.
    pub fn bind(addr: impl ToSocketAddrs, handler: H, config: ReactorConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Reactor {
            listener,
            handler,
            config,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Vec::new(),
            stats: ReactorStats::default(),
        })
    }

    /// The bound address (useful with port 0 in tests).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that stops the loop from another thread; `run` notices it
    /// within one poll timeout.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Drive the loop until the stop flag is raised, then return the
    /// lifetime counters. Open connections are dropped on stop — serving
    /// processes stop only at shutdown, where in-flight pipelines are
    /// forfeit anyway.
    pub fn run(mut self) -> io::Result<ReactorStats> {
        while !self.stop.load(Ordering::Relaxed) {
            self.tick()?;
        }
        Ok(self.stats)
    }

    /// One iteration: drain completions, poll, accept, read+dispatch,
    /// flush, reap. Public only through `run`; kept separate so the
    /// steps read in order.
    fn tick(&mut self) -> io::Result<()> {
        // 1. Move finished work onto the wire buffers.
        let mut any_waiting = false;
        for conn in &mut self.conns {
            self.stats.responses_out += conn.drain_pending();
            if conn.has_waiting() {
                any_waiting = true;
            }
        }

        // 2. Declare interests. A connection at its pipeline cap is not
        //    readable-interesting (flow control); one with a drained
        //    write buffer is not writable-interesting (else poll spins).
        let accepting = self.conns.len() < self.config.max_conns;
        let mut fds = Vec::with_capacity(1 + self.conns.len());
        fds.push((
            fd_of(&self.listener),
            sys::Interest {
                readable: accepting,
                writable: false,
            },
        ));
        for conn in &self.conns {
            fds.push((
                fd_of(&conn.stream),
                sys::Interest {
                    readable: !conn.eof && conn.pending.len() < self.config.max_pipeline,
                    writable: conn.wants_write(),
                },
            ));
        }

        // While completions are in flight nothing will mark a descriptor
        // ready when they finish, so poll with a short tick instead of
        // the idle timeout.
        let timeout = if any_waiting {
            1
        } else {
            self.config.poll_timeout_ms
        };
        let ready = sys::wait(&fds, timeout)?;

        // 3. Accept every pending connection (level-triggered: drain).
        if ready.first().is_some_and(|r| r.readable) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(true)?;
                        let _ = stream.set_nodelay(true);
                        self.conns.push(Connection::new(stream));
                        self.stats.accepted += 1;
                        if self.conns.len() >= self.config.max_conns {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    // Per-connection accept failures (e.g. the peer reset
                    // while queued) must not take down the loop.
                    Err(_) => break,
                }
            }
        }

        // 4. Read, frame, dispatch; then flush whatever is writable.
        //    `ready[1 + i]` is index-aligned with `self.conns[i]` from
        //    step 2; connections accepted in step 3 sit past `ready.len()`
        //    and simply wait for the next tick.
        for i in 0..self.conns.len() {
            let Some(r) = ready.get(1 + i) else { break };
            let Some(conn) = self.conns.get_mut(i) else {
                break;
            };
            if r.readable && !conn.eof {
                match conn.fill(self.config.max_line) {
                    Ok(lines) => {
                        for line in lines {
                            self.stats.lines_in += 1;
                            match self.handler.handle_line(&line) {
                                Submission::Done(s) => conn.pending.push_back(Pending::Ready(s)),
                                Submission::Pending(c) => {
                                    conn.pending.push_back(Pending::Waiting(c));
                                }
                                Submission::Skip => {}
                            }
                        }
                        if conn.overflowed {
                            self.stats.overflows += 1;
                            if let Some(msg) = &self.config.overflow_response {
                                conn.pending.push_back(Pending::Ready(msg.clone()));
                            }
                        }
                    }
                    Err(_) => conn.dead = true,
                }
                // Answer fast-path responses in the same tick: drain what
                // the dispatch just made ready so a synchronous handler
                // costs one poll round-trip, not two.
                self.stats.responses_out += conn.drain_pending();
            }
            if (r.writable || conn.wants_write()) && !conn.dead && conn.flush().is_err() {
                conn.dead = true;
            }
        }

        // 5. Reap: errored connections immediately, finished ones after
        //    their last byte flushed.
        self.conns.retain(|c| !c.dead && !c.finished());
        Ok(())
    }
}
