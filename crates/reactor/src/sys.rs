//! Readiness notification: a minimal `poll(2)` shim.
//!
//! The reactor needs exactly one OS facility — "which of these sockets
//! can make progress?" — and `poll(2)` answers it portably across unix
//! with a single C call and no descriptor-count limit, so the shim is a
//! `#[repr(C)]` struct, five flag constants and one `extern` function.
//! On non-unix targets (where std exposes no raw descriptors) the
//! fallback sleeps briefly and optimistically reports every interest as
//! ready; this stays *correct* because every reactor socket is
//! non-blocking — a spurious "ready" costs one `WouldBlock` read, never
//! a stall — it merely degrades the idle loop to a bounded busy-wait.

// The FFI surface below is the crate's only unsafe code: one foreign
// call whose contract (valid pointer + matching length, both from a
// live `Vec`) is local to `wait`.
#![allow(unsafe_code)]

use std::io;

/// A raw socket descriptor, as handed to `poll(2)`.
///
/// On non-unix targets descriptors are synthetic (the fallback never
/// dereferences them) but the type is kept identical so the reactor
/// compiles unchanged.
pub type Fd = i32;

/// What a caller wants to know about one descriptor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Interest {
    /// Wake when a read would make progress (data, EOF, or error).
    pub readable: bool,
    /// Wake when a write would make progress.
    pub writable: bool,
}

/// What the kernel reported for one descriptor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Readiness {
    /// A read would make progress. Errors and hangups are folded in so
    /// the read path observes EOF/reset instead of spinning.
    pub readable: bool,
    /// A write would make progress (or would fail fast — errors fold in).
    pub writable: bool,
    /// The peer hung up or the descriptor is invalid.
    pub hangup: bool,
}

/// Block until at least one interest is ready or `timeout_ms` elapses.
///
/// Returns one [`Readiness`] per input descriptor, index-aligned.
/// `EINTR` is retried internally; a zero result (timeout) yields
/// all-false readiness, which callers treat as an idle tick.
pub fn wait(fds: &[(Fd, Interest)], timeout_ms: i32) -> io::Result<Vec<Readiness>> {
    imp::wait(fds, timeout_ms)
}

#[cfg(unix)]
mod imp {
    use super::{Fd, Interest, Readiness};
    use std::io;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[cfg(target_os = "linux")]
    type NfdsT = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::ffi::c_uint;

    unsafe extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: std::ffi::c_int) -> std::ffi::c_int;
    }

    pub fn wait(fds: &[(Fd, Interest)], timeout_ms: i32) -> io::Result<Vec<Readiness>> {
        let mut pfds: Vec<PollFd> = fds
            .iter()
            .map(|&(fd, want)| PollFd {
                fd,
                events: if want.readable { POLLIN } else { 0 }
                    | if want.writable { POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        loop {
            // SAFETY: `pfds` is a live Vec for the duration of the call;
            // the pointer and length describe exactly its initialized
            // elements, which is the whole `poll(2)` contract.
            let rc = unsafe { poll(pfds.as_mut_ptr(), pfds.len() as NfdsT, timeout_ms) };
            if rc >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
        Ok(pfds
            .iter()
            .map(|p| Readiness {
                readable: p.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0,
                writable: p.revents & (POLLOUT | POLLERR | POLLNVAL) != 0,
                hangup: p.revents & (POLLHUP | POLLNVAL) != 0,
            })
            .collect())
    }
}

#[cfg(not(unix))]
mod imp {
    use super::{Fd, Interest, Readiness};
    use std::io;
    use std::time::Duration;

    pub fn wait(fds: &[(Fd, Interest)], timeout_ms: i32) -> io::Result<Vec<Readiness>> {
        // Bounded optimistic tick: every socket is non-blocking, so
        // reporting each interest as ready is safe (WouldBlock, not a
        // stall) — cap the sleep so the loop stays responsive.
        std::thread::sleep(Duration::from_millis(timeout_ms.clamp(0, 5) as u64));
        Ok(fds
            .iter()
            .map(|&(_, want)| Readiness {
                readable: want.readable,
                writable: want.writable,
                hangup: false,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[cfg(unix)]
    fn fd_of<T: std::os::fd::AsRawFd>(t: &T) -> Fd {
        t.as_raw_fd()
    }

    #[cfg(unix)]
    #[test]
    fn timeout_reports_nothing_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let ready = wait(
            &[(
                fd_of(&listener),
                Interest {
                    readable: true,
                    writable: false,
                },
            )],
            10,
        )
        .unwrap();
        assert_eq!(ready.len(), 1);
        assert!(!ready[0].readable && !ready[0].writable && !ready[0].hangup);
    }

    #[cfg(unix)]
    #[test]
    fn pending_connection_wakes_listener_and_data_wakes_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();

        let ready = wait(
            &[(
                fd_of(&listener),
                Interest {
                    readable: true,
                    writable: false,
                },
            )],
            1000,
        )
        .unwrap();
        assert!(ready[0].readable, "pending accept must report readable");

        let (server_side, _) = listener.accept().unwrap();
        client.write_all(b"ping\n").unwrap();
        let ready = wait(
            &[
                (
                    fd_of(&server_side),
                    Interest {
                        readable: true,
                        writable: true,
                    },
                ),
                (
                    fd_of(&listener),
                    Interest {
                        readable: true,
                        writable: false,
                    },
                ),
            ],
            1000,
        )
        .unwrap();
        assert!(ready[0].readable, "buffered bytes must report readable");
        assert!(
            ready[0].writable,
            "empty socket buffer must report writable"
        );
        assert!(!ready[1].readable, "listener has no second pending accept");
    }

    #[cfg(unix)]
    #[test]
    fn peer_close_reports_readable_for_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        drop(client);
        let ready = wait(
            &[(
                fd_of(&server_side),
                Interest {
                    readable: true,
                    writable: false,
                },
            )],
            1000,
        )
        .unwrap();
        assert!(ready[0].readable, "EOF must surface as readable");
    }
}
