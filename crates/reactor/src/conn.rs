//! Per-connection state: read-side line framing, write-side buffering,
//! and the FIFO of in-flight responses that preserves pipelining order.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::reactor::Completion;

/// One response slot in a connection's FIFO. Responses are emitted
/// strictly front-to-back, so a slow request parks every response queued
/// behind it — exactly the ordering a pipelining client expects.
pub(crate) enum Pending {
    /// The response line is ready to serialize onto the wire.
    Ready(String),
    /// The work is still in flight; the loop polls `try_take`.
    Waiting(Box<dyn Completion + Send>),
}

pub(crate) struct Connection {
    pub(crate) stream: TcpStream,
    /// Bytes read but not yet framed into a complete line.
    rbuf: Vec<u8>,
    /// Serialized responses not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// How much of `wbuf` has already been written.
    wpos: usize,
    /// In-flight responses, submission order.
    pub(crate) pending: VecDeque<Pending>,
    /// Peer closed its write half; no further requests will arrive.
    pub(crate) eof: bool,
    /// Unrecoverable I/O or framing error; reap without flushing.
    pub(crate) dead: bool,
    /// A request line exceeded `max_line`; close after the (optional)
    /// overflow response flushes.
    pub(crate) overflowed: bool,
}

impl Connection {
    pub(crate) fn new(stream: TcpStream) -> Self {
        Connection {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            eof: false,
            dead: false,
            overflowed: false,
        }
    }

    /// Drain the socket's readable bytes and return every complete line.
    ///
    /// Lines are `\n`-delimited; a trailing `\r` is stripped so both
    /// `\n` and `\r\n` clients work. Invalid UTF-8 is replaced rather
    /// than rejected — the handler decides what a malformed request
    /// means. A line (complete or still unterminated) longer than
    /// `max_line` marks the connection overflowed: framing can no longer
    /// be trusted, so reading stops for good.
    pub(crate) fn fill(&mut self, max_line: usize) -> io::Result<Vec<String>> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    // anomex: allow(panic-path) Read's contract bounds n by chunk.len()
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    // Keep draining until WouldBlock so level-triggered
                    // poll never strands buffered bytes.
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }

        let mut lines = Vec::new();
        let mut start = 0usize;
        while let Some(rel) = self
            .rbuf
            .get(start..)
            .and_then(|tail| tail.iter().position(|&b| b == b'\n'))
        {
            let end = start + rel;
            let mut line = self.rbuf.get(start..end).unwrap_or(&[]);
            if let Some((&b'\r', rest)) = line.split_last() {
                line = rest;
            }
            if line.len() > max_line {
                self.overflowed = true;
            } else if !line.is_empty() {
                lines.push(String::from_utf8_lossy(line).into_owned());
            }
            start = end + 1;
            if self.overflowed {
                break;
            }
        }
        self.rbuf.drain(..start);
        if self.rbuf.len() > max_line {
            // An unterminated line already past the cap can never frame.
            self.overflowed = true;
        }
        if self.overflowed {
            self.rbuf.clear();
            self.eof = true; // stop reading; flush whatever is owed, then close
        }
        Ok(lines)
    }

    /// Queue one response line (newline appended) for the wire.
    pub(crate) fn queue_response(&mut self, line: &str) {
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
    }

    /// Move completed responses from the pending FIFO to the write
    /// buffer, stopping at the first still-waiting slot so per-connection
    /// response order always matches request order. Returns how many
    /// responses became wire-ready.
    pub(crate) fn drain_pending(&mut self) -> u64 {
        let mut drained = 0;
        while let Some(front) = self.pending.front_mut() {
            let line = match front {
                Pending::Ready(s) => std::mem::take(s),
                Pending::Waiting(c) => match c.try_take() {
                    Some(s) => s,
                    None => break,
                },
            };
            self.pending.pop_front();
            self.queue_response(&line);
            drained += 1;
        }
        drained
    }

    /// True while any slot in the FIFO is still waiting on work.
    pub(crate) fn has_waiting(&self) -> bool {
        matches!(self.pending.front(), Some(Pending::Waiting(_)))
    }

    /// Write as much of the buffered output as the socket accepts.
    pub(crate) fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(self.wbuf.get(self.wpos..).unwrap_or(&[])) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(())
    }

    /// Unflushed output remains.
    pub(crate) fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Nothing left to read, compute, or flush — reap the connection.
    pub(crate) fn finished(&self) -> bool {
        self.eof && self.pending.is_empty() && !self.wants_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, Connection) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, Connection::new(server))
    }

    #[test]
    fn frames_lines_and_strips_carriage_returns() {
        let (mut client, mut conn) = pair();
        client.write_all(b"alpha\r\nbeta\ngam").unwrap();
        // Allow the loopback to deliver.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let lines = conn.fill(1 << 20).unwrap();
        assert_eq!(lines, vec!["alpha".to_string(), "beta".to_string()]);
        assert!(!conn.eof, "partial line keeps the connection open");

        client.write_all(b"ma\n").unwrap();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let lines = conn.fill(1 << 20).unwrap();
        assert_eq!(lines, vec!["gamma".to_string()]);
        assert!(conn.eof, "peer close must surface as EOF");
    }

    #[test]
    fn blank_lines_are_ignored() {
        let (mut client, mut conn) = pair();
        client.write_all(b"\n\r\nreal\n").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let lines = conn.fill(1 << 20).unwrap();
        assert_eq!(lines, vec!["real".to_string()]);
    }

    #[test]
    fn oversized_line_marks_overflow_and_stops_reading() {
        let (mut client, mut conn) = pair();
        client.write_all(&[b'x'; 256]).unwrap();
        client.write_all(b"\nafter\n").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let lines = conn.fill(64).unwrap();
        assert!(lines.is_empty(), "overflowed line must not be delivered");
        assert!(conn.overflowed);
        assert!(conn.eof, "overflow terminates the read side");
    }

    #[test]
    fn unterminated_line_past_cap_overflows() {
        let (mut client, mut conn) = pair();
        client.write_all(&[b'y'; 300]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let lines = conn.fill(64).unwrap();
        assert!(lines.is_empty());
        assert!(conn.overflowed, "an unframeable prefix can never recover");
    }

    #[test]
    fn drain_preserves_submission_order_across_mixed_readiness() {
        struct Now(Option<String>);
        impl Completion for Now {
            fn try_take(&mut self) -> Option<String> {
                self.0.take()
            }
        }
        struct Never;
        impl Completion for Never {
            fn try_take(&mut self) -> Option<String> {
                None
            }
        }

        let (_client, mut conn) = pair();
        conn.pending.push_back(Pending::Ready("first".into()));
        conn.pending.push_back(Pending::Waiting(Box::new(Never)));
        conn.pending
            .push_back(Pending::Waiting(Box::new(Now(Some("third".into())))));

        assert_eq!(conn.drain_pending(), 1, "stop at the waiting slot");
        assert!(conn.has_waiting());
        assert_eq!(conn.pending.len(), 2, "third stays queued behind second");
    }
}
