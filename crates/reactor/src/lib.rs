//! A dependency-free event-loop front end for line-oriented protocols.
//!
//! `anomex-reactor` replaces the thread-per-connection TCP path in
//! `anomex-serve` with a single-threaded readiness loop: one thread
//! multiplexes every connection through `poll(2)` (a ~30-line FFI shim —
//! see [`sys`]), framing newline-delimited requests out of per-connection
//! read buffers and flushing responses through per-connection write
//! buffers. Concurrency in the *work* stays where it already lives — the
//! `Batcher` worker pool behind `ServeHandle` — the reactor only moves
//! the *I/O* off the thread-per-connection model so idle connections cost
//! a pollfd, not a stack.
//!
//! The crate knows nothing about JSON or anomex: a [`LineHandler`] maps
//! one request line to a [`Submission`] — either an immediate response
//! line or a boxed [`Completion`] the loop polls for the finished
//! response. Responses leave each connection in exactly the order their
//! requests arrived (pipelining preserves order), enforced by a
//! per-connection FIFO of pending submissions.
//!
//! Determinism and bounds:
//! - no timers besides the poll timeout, no randomness, no allocation
//!   beyond the per-connection buffers;
//! - a connection with `max_pipeline` unanswered requests stops being
//!   polled for readability until responses drain (flow control, bounded
//!   memory);
//! - request lines longer than `max_line` bytes terminate the connection
//!   after an optional configured overflow response (bounded framing).
//!
//! The loop is single-threaded and lock-free by construction: the only
//! shared state is the stop flag (an `AtomicBool`) and whatever the
//! injected `Completion`s guard internally.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod conn;
mod reactor;
pub mod sys;

pub use reactor::{Completion, LineHandler, Reactor, ReactorConfig, ReactorStats, Submission};
