//! End-to-end loop tests over real loopback sockets: framing, pipelining
//! order, slow completions, overflow handling, and stop semantics.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use anomex_reactor::{Completion, LineHandler, Reactor, ReactorConfig, Submission};

/// Immediate handler: upper-cases the request.
struct Upper;

impl LineHandler for Upper {
    fn handle_line(&self, line: &str) -> Submission {
        Submission::Done(line.to_uppercase())
    }
}

/// Deferred handler: a worker thread finishes each request after a
/// per-request delay, so completions resolve *out of* submission order
/// while responses must still leave in submission order.
struct Delayed;

struct Slot(Arc<Mutex<Option<String>>>);

impl Completion for Slot {
    fn try_take(&mut self) -> Option<String> {
        self.0.lock().unwrap().take()
    }
}

impl LineHandler for Delayed {
    fn handle_line(&self, line: &str) -> Submission {
        let slot = Arc::new(Mutex::new(None));
        let fill = Arc::clone(&slot);
        // Later requests finish *sooner*: index 0 sleeps longest.
        let delay = 40u64.saturating_sub(10 * line.len().min(4) as u64);
        let line = line.to_string();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(delay));
            *fill.lock().unwrap() = Some(format!("done:{line}"));
        });
        Submission::Pending(Box::new(Slot(slot)))
    }
}

fn spawn_reactor<H: LineHandler + Send + 'static>(
    handler: H,
    config: ReactorConfig,
) -> (
    std::net::SocketAddr,
    Arc<std::sync::atomic::AtomicBool>,
    thread::JoinHandle<anomex_reactor::ReactorStats>,
) {
    let reactor = Reactor::bind("127.0.0.1:0", handler, config).expect("bind");
    let addr = reactor.local_addr().expect("addr");
    let stop = reactor.stop_handle();
    let join = thread::spawn(move || reactor.run().expect("run"));
    (addr, stop, join)
}

#[test]
fn eight_pipelining_clients_get_ordered_echoes() {
    let (addr, stop, join) = spawn_reactor(Upper, ReactorConfig::default());
    const CLIENTS: usize = 8;
    const LINES: usize = 50;

    let done = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let done = Arc::clone(&done);
        handles.push(thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            // Pipeline the whole batch before reading anything back.
            let mut blob = String::new();
            for j in 0..LINES {
                blob.push_str(&format!("client{c}-line{j}\n"));
            }
            stream.write_all(blob.as_bytes()).expect("write");
            let mut reader = BufReader::new(stream);
            for j in 0..LINES {
                let mut resp = String::new();
                reader.read_line(&mut resp).expect("read");
                assert_eq!(
                    resp.trim_end(),
                    format!("CLIENT{c}-LINE{j}"),
                    "responses must preserve per-connection request order"
                );
            }
            done.fetch_add(1, Ordering::SeqCst);
        }));
    }
    for h in handles {
        h.join().expect("client");
    }
    assert_eq!(done.load(Ordering::SeqCst), CLIENTS);

    stop.store(true, Ordering::SeqCst);
    let stats = join.join().expect("reactor");
    assert_eq!(stats.accepted, CLIENTS as u64);
    assert_eq!(stats.lines_in, (CLIENTS * LINES) as u64);
    assert_eq!(stats.responses_out, (CLIENTS * LINES) as u64);
    assert_eq!(stats.overflows, 0);
}

#[test]
fn out_of_order_completions_respond_in_submission_order() {
    let (addr, stop, join) = spawn_reactor(Delayed, ReactorConfig::default());
    // "a" (len 1, 30ms) before "abcd" (len 4, 0ms): the second request
    // finishes first, but must be answered second.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"a\nabcd\n").expect("write");
    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).expect("read");
    let mut second = String::new();
    reader.read_line(&mut second).expect("read");
    assert_eq!(first.trim_end(), "done:a");
    assert_eq!(second.trim_end(), "done:abcd");

    stop.store(true, Ordering::SeqCst);
    join.join().expect("reactor");
}

#[test]
fn oversized_line_gets_typed_response_then_close() {
    let config = ReactorConfig {
        max_line: 64,
        overflow_response: Some("{\"ok\":false,\"code\":\"bad_request\"}".to_string()),
        ..ReactorConfig::default()
    };
    let (addr, stop, join) = spawn_reactor(Upper, config);

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&[b'x'; 4096]).expect("write");
    stream.write_all(b"\n").expect("write");
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read overflow response");
    assert_eq!(resp.trim_end(), "{\"ok\":false,\"code\":\"bad_request\"}");
    // After the typed response the reactor closes: next read sees EOF.
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read to eof");
    assert!(rest.is_empty(), "no bytes may follow the overflow response");

    stop.store(true, Ordering::SeqCst);
    let stats = join.join().expect("reactor");
    assert_eq!(stats.overflows, 1);
}

#[test]
fn pipeline_cap_throttles_but_loses_nothing() {
    // A cap of 4 with 32 pipelined requests forces several read pauses;
    // every response must still arrive, in order.
    let config = ReactorConfig {
        max_pipeline: 4,
        ..ReactorConfig::default()
    };
    let (addr, stop, join) = spawn_reactor(Upper, config);

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut blob = String::new();
    for j in 0..32 {
        blob.push_str(&format!("req{j}\n"));
    }
    stream.write_all(blob.as_bytes()).expect("write");
    let mut reader = BufReader::new(stream);
    for j in 0..32 {
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read");
        assert_eq!(resp.trim_end(), format!("REQ{j}"));
    }

    stop.store(true, Ordering::SeqCst);
    let stats = join.join().expect("reactor");
    assert_eq!(stats.lines_in, 32);
    assert_eq!(stats.responses_out, 32);
}

#[test]
fn stop_flag_halts_an_idle_loop_promptly() {
    let (_addr, stop, join) = spawn_reactor(Upper, ReactorConfig::default());
    thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::SeqCst);
    let start = std::time::Instant::now();
    join.join().expect("reactor");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "stop must be honored within a few poll timeouts"
    );
}
