//! # anomex-parallel
//!
//! Minimal fork-join parallel map over a slice, built on scoped threads
//! and `crossbeam` queues/channels.
//!
//! Subspace search is embarrassingly parallel at the candidate level
//! (each candidate is scored independently), and the detectors'
//! per-row loops (kNN scans, ABOD variance, iForest path lengths) are
//! embarrassingly parallel at the row level — so a chunked
//! work-stealing map is all the framework needs, with no external
//! thread-pool dependency. The crate sits below both `anomex-core`
//! (explainer fan-out) and `anomex-detectors` (per-row kernels) so the
//! two layers share one [`is_nested`] oversubscription guard: a
//! detector row loop running inside an explainer's per-point fan-out
//! automatically degrades to sequential instead of spawning
//! workers × workers threads.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use crossbeam::channel;
use crossbeam::queue::SegQueue;
use std::cell::Cell;

thread_local! {
    /// Set for the lifetime of a [`par_map`] worker thread. A nested
    /// `par_map` call from such a thread would spawn workers × workers
    /// threads (e.g. `score_batch` inside an explainer that is itself
    /// fanned out per point, or a detector's row loop inside either),
    /// so nested calls detect the flag and run sequentially on the
    /// worker instead.
    static INSIDE_PAR_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is already a [`par_map`] worker — i.e. a
/// `par_map` call here would nest.
#[must_use]
pub fn is_nested() -> bool {
    INSIDE_PAR_WORKER.with(Cell::get)
}

/// Number of worker threads used by [`par_map`]: all available cores,
/// capped at the item count.
fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    cores.min(items).max(1)
}

/// Applies `f` to every item, in parallel, preserving input order in the
/// output. `f` runs on multiple threads, so it must be `Sync`.
///
/// Items are pulled in small batches from a shared queue, which balances
/// workloads whose per-item cost varies wildly (e.g. scoring 2d vs 5d
/// subspaces).
///
/// ```
/// use anomex_parallel::par_map;
/// let squares = par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n);
    if workers == 1 || n == 1 || is_nested() {
        return items.iter().map(&f).collect();
    }

    // Chunked index queue: batches amortize queue traffic while keeping
    // load balance.
    let batch = (n / (workers * 8)).max(1);
    let queue: SegQueue<std::ops::Range<usize>> = SegQueue::new();
    let mut start = 0;
    while start < n {
        let end = (start + batch).min(n);
        queue.push(start..end);
        start = end;
    }

    let (tx, rx) = channel::unbounded::<Vec<(usize, U)>>();
    let queue_ref = &queue;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                INSIDE_PAR_WORKER.with(|flag| flag.set(true));
                let mut local: Vec<(usize, U)> = Vec::new();
                while let Some(range) = queue_ref.pop() {
                    for i in range {
                        local.push((i, f_ref(&items[i])));
                    }
                }
                // A disconnected receiver is impossible here: `rx` lives
                // until after the scope joins.
                let _ = tx.send(local);
            });
        }
        drop(tx);
    });

    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for local in rx.try_iter() {
        for (i, v) in local {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(v);
        }
    }
    out.into_iter()
        // anomex: allow(panic-path) the chunk split covers 0..n exactly once by construction
        .map(|o| o.expect("every index produced exactly once"))
        .collect()
}

/// Applies `f` to every row chunk `[start, end)` of `0..n_rows`, in
/// parallel, and concatenates the per-chunk outputs in row order.
///
/// This is the shape of the detectors' per-row loops: each chunk owns
/// its scratch buffers (allocated once per chunk, not once per row) and
/// emits one output per row. `chunk_rows` trades scratch reuse against
/// load balance; the row order of the concatenated output is identical
/// to the sequential loop's.
///
/// ```
/// use anomex_parallel::par_chunk_flat_map;
/// let doubled = par_chunk_flat_map(5, 2, |start, end| {
///     (start..end).map(|i| i * 2).collect::<Vec<_>>()
/// });
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
/// ```
pub fn par_chunk_flat_map<U, F>(n_rows: usize, chunk_rows: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, usize) -> Vec<U> + Sync,
{
    let chunk = chunk_rows.max(1);
    let ranges: Vec<(usize, usize)> = (0..n_rows)
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(n_rows)))
        .collect();
    let parts = par_map(&ranges, |&(start, end)| f(start, end));
    let mut out = Vec::with_capacity(n_rows);
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..357).collect();
        let out = par_map(&items, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 357);
        assert_eq!(out.len(), 357);
    }

    #[test]
    fn works_with_non_default_types() {
        #[derive(Debug, PartialEq)]
        struct NoDefault(String);
        let items = vec![1, 2, 3];
        let out = par_map(&items, |&x| NoDefault(format!("v{x}")));
        assert_eq!(out[2], NoDefault("v3".into()));
    }

    #[test]
    fn nested_par_map_runs_sequentially() {
        // Each inner par_map must stay on the worker thread that called
        // it — nesting would otherwise oversubscribe the machine with
        // workers × workers threads.
        let outer: Vec<usize> = (0..4).collect();
        let reports = par_map(&outer, |_| {
            let inner: Vec<usize> = (0..16).collect();
            let ids = par_map(&inner, |_| std::thread::current().id());
            let first = ids[0];
            ids.iter().all(|&id| id == first)
        });
        assert!(
            reports.iter().all(|&on_one_thread| on_one_thread),
            "inner par_map escaped its worker thread"
        );
    }

    #[test]
    fn nesting_flag_is_only_set_on_workers() {
        assert!(!is_nested(), "caller thread must not be marked as worker");
        let observed = par_map(&[0usize, 1, 2, 3], |_| is_nested());
        // On a multi-core machine the items run on flagged workers; on a
        // single core par_map degenerates to the caller's thread.
        let multicore = std::thread::available_parallelism().map_or(1, |n| n.get()) > 1;
        if multicore {
            assert!(observed.iter().all(|&flagged| flagged));
        }
        assert!(!is_nested(), "flag must not leak back to the caller");
    }

    #[test]
    fn uneven_workloads_balance() {
        // Mix trivially cheap and artificially expensive items.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            if x % 7 == 0 {
                (0..50_000u64).fold(x, |a, b| a.wrapping_add(b % 13))
            } else {
                x
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn chunked_map_concatenates_in_order() {
        let out = par_chunk_flat_map(103, 7, |start, end| {
            (start..end).map(|i| i + 1).collect::<Vec<_>>()
        });
        assert_eq!(out, (1..=103).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_map_handles_empty_and_oversized_chunks() {
        let empty = par_chunk_flat_map(0, 4, |_, _| Vec::<usize>::new());
        assert!(empty.is_empty());
        let one_chunk = par_chunk_flat_map(3, 100, |start, end| {
            assert_eq!((start, end), (0, 3));
            vec![start, end]
        });
        assert_eq!(one_chunk, vec![0, 3]);
    }
}
