//! Property-based tests for the explanation framework.

use anomex_core::explainer::{PointExplainer, RankedSubspaces, SummaryExplainer};
use anomex_core::parallel::par_map;
use anomex_core::scoring::SubspaceScorer;
use anomex_core::{Beam, LookOut, RefOut};
use anomex_dataset::{Dataset, Subspace};
use anomex_detectors::Lof;
use proptest::prelude::*;

/// Strategy: a small random dataset (rows × features) of finite values.
fn small_dataset() -> impl Strategy<Value = Dataset> {
    (20usize..60, 3usize..7).prop_flat_map(|(r, c)| {
        prop::collection::vec(prop::collection::vec(0.0f64..1.0, c..=c), r..=r)
            .prop_map(|rows| Dataset::from_rows(rows).expect("well-formed"))
    })
}

fn scored_entries() -> impl Strategy<Value = Vec<(Subspace, f64)>> {
    prop::collection::vec(
        (prop::collection::vec(0usize..8, 1..4), -10.0f64..10.0)
            .prop_map(|(fs, v)| (Subspace::new(fs), v)),
        0..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Beam always returns non-empty rankings of exactly the requested
    /// dimensionality, with finite scores, for any dataset and any point.
    #[test]
    fn beam_output_invariants(ds in small_dataset(), pt in 0usize..20, dim in 1usize..4) {
        let lof = Lof::new(5).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let dim = dim.min(ds.n_features());
        let ranked = Beam::new().beam_width(5).result_size(10).explain(&scorer, pt, dim);
        prop_assert!(!ranked.is_empty());
        prop_assert!(ranked.len() <= 10);
        for (s, v) in ranked.entries() {
            prop_assert_eq!(s.dim(), dim);
            prop_assert!(v.is_finite());
        }
        // Scores sorted descending.
        for w in ranked.entries().windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    /// RefOut honours the same output contract.
    #[test]
    fn refout_output_invariants(ds in small_dataset(), pt in 0usize..20, dim in 1usize..4) {
        let lof = Lof::new(5).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let dim = dim.min(ds.n_features());
        let ranked = RefOut::new().pool_size(10).beam_width(5).result_size(10)
            .explain(&scorer, pt, dim);
        prop_assert!(!ranked.is_empty());
        for (s, v) in ranked.entries() {
            prop_assert_eq!(s.dim(), dim);
            prop_assert!(v.is_finite());
        }
    }

    /// LookOut's summary never exceeds the budget, never repeats a
    /// subspace, and its marginal gains are non-increasing (the
    /// submodularity witness).
    #[test]
    fn lookout_output_invariants(ds in small_dataset(), budget in 1usize..6) {
        let lof = Lof::new(5).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let pois = vec![0usize, 1, 2];
        let summary = LookOut::new().budget(budget).summarize(&scorer, &pois, 2);
        prop_assert!(summary.len() <= budget);
        let mut seen = std::collections::HashSet::new();
        for (s, _) in summary.entries() {
            prop_assert!(seen.insert(s.clone()));
        }
        for w in summary.entries().windows(2) {
            prop_assert!(w[0].1 >= w[1].1 - 1e-9);
        }
    }

    /// The ranking container keeps its sort/dedup invariants under any
    /// input.
    #[test]
    fn ranked_subspaces_invariants(entries in scored_entries()) {
        let r = RankedSubspaces::from_scored(entries.clone());
        // Deduplicated.
        let mut seen = std::collections::HashSet::new();
        for (s, _) in r.entries() {
            prop_assert!(seen.insert(s.clone()));
        }
        // Sorted descending.
        for w in r.entries().windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        // Best score survived for each subspace.
        for (s, v) in r.entries() {
            let max_in = entries.iter().filter(|(e, _)| e == s).map(|(_, x)| *x)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(*v, max_in);
        }
    }

    /// The scorer cache is score-transparent: cached and uncached
    /// scorers agree bit-for-bit.
    #[test]
    fn cache_transparency(ds in small_dataset()) {
        let lof = Lof::new(5).unwrap();
        let cached = SubspaceScorer::new(&ds, &lof);
        let uncached = SubspaceScorer::without_cache(&ds, &lof);
        let s = Subspace::new([0usize, 1]);
        prop_assert_eq!(&*cached.scores(&s), &*uncached.scores(&s));
        prop_assert_eq!(&*cached.scores(&s), &*uncached.scores(&s)); // repeat hits cache
    }

    /// par_map equals the sequential map for arbitrary inputs.
    #[test]
    fn par_map_equals_map(xs in prop::collection::vec(-1e3f64..1e3, 0..200)) {
        let par = par_map(&xs, |&x| (x * 1.5).sin());
        let seq: Vec<f64> = xs.iter().map(|&x| (x * 1.5).sin()).collect();
        prop_assert_eq!(par, seq);
    }
}
