//! # anomex-core
//!
//! The primary contribution of the reproduced paper: a detector-agnostic
//! framework for **outlier explanation**, implementing the four subspace
//! search algorithms the paper evaluates (§2.2–§2.3):
//!
//! * [`beam::Beam`] — stage-wise greedy *point explanation*
//!   (Nguyen et al., DAMI 2016), including the paper's `Beam_FX`
//!   fixed-dimensionality variant;
//! * [`refout::RefOut`] — random-subspace-pool *point explanation*
//!   (Keller et al., CIKM 2013);
//! * [`lookout::LookOut`] — submodular-greedy *explanation
//!   summarization* (Gupta et al., ECML/PKDD 2018);
//! * [`hics::Hics`] — high-contrast-subspace *explanation
//!   summarization* (Keller et al., ICDE 2012), including `HiCS_FX`.
//!
//! Every algorithm consumes outlyingness scores through a shared
//! [`scoring::SubspaceScorer`], which projects the dataset onto candidate
//! subspaces, runs any [`anomex_detectors::Detector`], standardizes the
//! scores per subspace (paper §2.2) and memoizes the results in a
//! sharded, `Arc`-shareable [`cache::ScoreCache`] — so any detector ×
//! explainer pairing forms a [`pipeline::Pipeline`], exactly like the
//! paper's 12-pipeline testbed (Figure 7). The
//! [`engine::ExplanationEngine`] keeps one cache alive across runs,
//! explanation dimensionalities and explainers sharing a (dataset,
//! detector) pair, and fans per-point explanation out across cores.
//!
//! ```
//! use anomex_core::beam::Beam;
//! use anomex_core::explainer::PointExplainer;
//! use anomex_core::scoring::SubspaceScorer;
//! use anomex_dataset::gen::hics::{generate_hics, HicsPreset};
//! use anomex_detectors::Lof;
//!
//! let g = generate_hics(HicsPreset::D14, 42);
//! let outlier = g.ground_truth.outliers()[0];
//! let lof = Lof::new(15).unwrap();
//! let scorer = SubspaceScorer::new(&g.dataset, &lof);
//! let ranked = Beam::default().explain(&scorer, outlier, 2);
//! assert!(!ranked.is_empty());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod beam;
pub mod cache;
pub mod engine;
pub mod explainer;
pub mod fxhash;
pub mod hics;
pub mod lookout;
pub mod parallel;
pub mod pipeline;
pub mod profile;
pub mod refout;
pub mod scoring;
pub mod surrogate;

pub use beam::Beam;
pub use cache::{CacheStats, ScoreCache};
pub use engine::{DimRun, EngineRun, ExplanationEngine, RunSpec, RunStats};
pub use explainer::{PointExplainer, RankedSubspaces, SummaryExplainer};
pub use hics::Hics;
pub use lookout::LookOut;
pub use pipeline::{ExplainerKind, Pipeline, PipelineOutput};
pub use profile::profile_dataset;
pub use refout::RefOut;
pub use scoring::SubspaceScorer;
pub use surrogate::Surrogate;
