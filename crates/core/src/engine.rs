//! The reusable explanation engine: one (dataset, detector) pair, one
//! persistent [`ScoreCache`], many runs.
//!
//! [`crate::pipeline::Pipeline::run`] is the one-shot entry point: build
//! a scorer, explain, throw the cache away. That is wasteful for the
//! paper's real workloads — a Figure 9/11-style sweep explains the same
//! points at dimensionalities 2→5 against the *same* detector, and every
//! dimensionality revisits the subspaces the previous one already scored.
//! [`ExplanationEngine`] keeps the cache alive across those runs:
//!
//! ```
//! use anomex_core::engine::{ExplanationEngine, RunSpec};
//! use anomex_core::pipeline::ExplainerKind;
//! use anomex_core::Beam;
//! use anomex_dataset::gen::hics::{generate_hics, HicsPreset};
//! use anomex_detectors::Lof;
//!
//! let g = generate_hics(HicsPreset::D14, 42);
//! let lof = Lof::new(15).unwrap();
//! let engine = ExplanationEngine::new(&g.dataset, &lof);
//! let beam = ExplainerKind::Point(Box::new(Beam::new()));
//!
//! let points = g.ground_truth.points_explained_at_dim(2);
//! let run = engine.run(&beam, &RunSpec::new(&points[..1], [2usize, 3]));
//! // The 3d pass re-uses every 2d subspace the 2d pass scored:
//! assert!(run.dims[1].stats.cache_hits > 0);
//! ```
//!
//! Per-point explanation fans out through [`crate::parallel::par_map`]
//! (explainer-internal `score_batch` parallelism automatically degrades
//! to sequential inside the fan-out, so the machine is never
//! oversubscribed), and every per-dimension pass returns a [`RunStats`]
//! telemetry record: wall time, detector evaluations, cache hits and
//! peak cache residency.

use crate::cache::ScoreCache;
use crate::explainer::RankedSubspaces;
use crate::parallel::par_map;
use crate::pipeline::ExplainerKind;
use crate::scoring::SubspaceScorer;
use anomex_dataset::{Dataset, IncrementalDistances};
use anomex_detectors::Detector;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide run/pass meters (see `core.scorer.*` in
/// [`crate::scoring`] for the companion evaluation counters). Spans in
/// this crate are logical-sequence only: wall clocks stay confined to
/// `RunStats` telemetry and the serving layer.
fn obs_dim_passes() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("core.engine.dim_passes"))
}

fn obs_dims_skipped() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("core.engine.dims_skipped"))
}

fn obs_points_explained() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("core.engine.points_explained"))
}

/// What one engine run should do: which points, which explanation
/// dimensionalities, and under what execution policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Points of interest (row indices) to explain.
    pub points: Vec<usize>,
    /// Target explanation dimensionalities, executed in order against
    /// the same warm cache.
    pub dims: Vec<usize>,
    /// Fan per-point explanation out across cores (default). Summary
    /// explainers are unaffected (they already parallelize internally
    /// via `score_batch`).
    pub parallel_points: bool,
    /// Optional cap on detector evaluations: once the run has spent this
    /// many, remaining dimensionalities are skipped (marked in their
    /// [`DimRun::skipped`]) rather than started.
    pub eval_budget: Option<usize>,
}

impl RunSpec {
    /// A spec explaining `points` at each of `dims`, parallel points,
    /// no evaluation budget.
    #[must_use]
    pub fn new(points: impl Into<Vec<usize>>, dims: impl Into<Vec<usize>>) -> Self {
        RunSpec {
            points: points.into(),
            dims: dims.into(),
            parallel_points: true,
            eval_budget: None,
        }
    }

    /// Explains the points serially instead of fanning out per point.
    /// Results are identical either way; this exists for debugging and
    /// for the determinism tests that prove it.
    #[must_use]
    pub fn sequential_points(mut self) -> Self {
        self.parallel_points = false;
        self
    }

    /// Caps the run's detector evaluations (see [`RunSpec::eval_budget`]).
    #[must_use]
    pub fn with_eval_budget(mut self, budget: usize) -> Self {
        self.eval_budget = Some(budget);
        self
    }
}

/// Telemetry of one per-dimension pass. Serializable so serving-layer
/// responses and experiment logs can carry it verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Wall-clock time of the pass.
    pub elapsed: Duration,
    /// Detector invocations the pass performed (unique subspaces; the
    /// in-flight guard keeps this exact under concurrent misses).
    pub evaluations: usize,
    /// Requests served from cache — including entries left warm by
    /// earlier dimensionalities or earlier runs on the same engine.
    pub cache_hits: usize,
    /// Peak number of score vectors resident in the engine's cache at
    /// the end of the pass (cumulative over the cache's lifetime).
    pub peak_cache_entries: usize,
}

impl RunStats {
    /// Fraction of subspace-score requests served from cache, in `[0,1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.evaluations + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The output of one per-dimension pass.
#[derive(Debug, Clone)]
pub struct DimRun {
    /// The explanation dimensionality of this pass.
    pub dim: usize,
    /// Per-point ranked explanations (`EXP_a(p)`), keyed by point id.
    /// Summary explainers assign every point the shared summary.
    pub explanations: BTreeMap<usize, RankedSubspaces>,
    /// Telemetry of the pass.
    pub stats: RunStats,
    /// True when the pass was skipped because the spec's evaluation
    /// budget was already spent; `explanations` is then empty.
    pub skipped: bool,
}

/// The output of a whole engine run: one [`DimRun`] per requested
/// dimensionality, in spec order.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Per-dimensionality outputs, in the order the spec listed them.
    pub dims: Vec<DimRun>,
}

impl EngineRun {
    /// The pass for one dimensionality, if it was requested.
    #[must_use]
    pub fn for_dim(&self, dim: usize) -> Option<&DimRun> {
        self.dims.iter().find(|d| d.dim == dim)
    }

    /// Total detector evaluations across every pass.
    #[must_use]
    pub fn total_evaluations(&self) -> usize {
        self.dims.iter().map(|d| d.stats.evaluations).sum()
    }

    /// Total cache hits across every pass.
    #[must_use]
    pub fn total_cache_hits(&self) -> usize {
        self.dims.iter().map(|d| d.stats.cache_hits).sum()
    }

    /// Consumes a single-dimensionality run.
    ///
    /// # Panics
    /// Panics when the run holds more than one pass.
    #[must_use]
    pub fn into_single(mut self) -> DimRun {
        assert_eq!(self.dims.len(), 1, "run holds more than one dim pass");
        self.dims.pop().expect("one pass") // anomex: allow(panic-path) guarded by the assert above
    }
}

/// A reusable execution engine binding one dataset to one detector, with
/// a persistent, shareable score cache — see the [module docs](self).
pub struct ExplanationEngine<'a> {
    dataset: &'a Dataset,
    detector: &'a dyn Detector,
    cache: Arc<ScoreCache>,
    incremental: Option<Arc<IncrementalDistances>>,
}

impl<'a> ExplanationEngine<'a> {
    /// An engine with a fresh, unbounded, sharded cache.
    #[must_use]
    pub fn new(dataset: &'a Dataset, detector: &'a dyn Detector) -> Self {
        Self::with_cache(dataset, detector, Arc::new(ScoreCache::new()))
    }

    /// An engine over an existing cache — the handle that lets several
    /// engines (e.g. one per explainer) share the score vectors of one
    /// (dataset, detector) pair. The caller is responsible for only
    /// pairing a cache with the dataset and detector it was filled from.
    #[must_use]
    pub fn with_cache(
        dataset: &'a Dataset,
        detector: &'a dyn Detector,
        cache: Arc<ScoreCache>,
    ) -> Self {
        ExplanationEngine {
            dataset,
            detector,
            cache,
            incremental: None,
        }
    }

    /// Enables the incremental pairwise-distance memo for score-cache
    /// misses ([`IncrementalDistances`]): distance-based detectors (LOF,
    /// kNN-distance, Fast ABOD) then score stage-wise candidates
    /// `S ∪ {f}` by adding one per-feature distance plane to the parent's
    /// memoized matrix — O(N²) per miss instead of O(N²·|S|) — while
    /// coordinate-based detectors fall back transparently. `capacity`
    /// bounds residency: at most `capacity` subspace matrices plus
    /// `capacity` feature planes, each `n² × 8` bytes.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    #[must_use]
    pub fn with_incremental_distances(mut self, capacity: usize) -> Self {
        self.incremental = Some(Arc::new(IncrementalDistances::new(capacity)));
        self
    }

    /// The engine's incremental-distance memo, when enabled.
    #[must_use]
    pub fn incremental_distances(&self) -> Option<&Arc<IncrementalDistances>> {
        self.incremental.as_ref()
    }

    /// The engine's dataset.
    #[must_use]
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The engine's detector.
    #[must_use]
    pub fn detector(&self) -> &'a dyn Detector {
        self.detector
    }

    /// The engine's persistent cache handle.
    #[must_use]
    pub fn cache(&self) -> &Arc<ScoreCache> {
        &self.cache
    }

    /// A scorer over the engine's dataset, detector and shared cache.
    /// Useful for driving explainers directly while still contributing
    /// to (and profiting from) the engine's cache.
    #[must_use]
    pub fn scorer(&self) -> SubspaceScorer<'a> {
        let scorer =
            SubspaceScorer::with_cache(self.dataset, self.detector, Arc::clone(&self.cache));
        match &self.incremental {
            Some(inc) => scorer.with_incremental(Arc::clone(inc)),
            None => scorer,
        }
    }

    /// Executes `spec` with `explainer`: one pass per requested
    /// dimensionality, all passes sharing the engine's warm cache.
    ///
    /// Results are deterministic: identical to the serial, cold-cache
    /// run of the same spec (parallel fan-out preserves per-point
    /// outputs, and cached score vectors are bit-identical to recomputed
    /// ones).
    ///
    /// # Panics
    /// Panics when the spec has no points or no dims, or when a point /
    /// dimensionality is out of range for the dataset (propagated from
    /// the explainer).
    #[must_use]
    pub fn run(&self, explainer: &ExplainerKind, spec: &RunSpec) -> EngineRun {
        assert!(
            !spec.points.is_empty(),
            "engine run needs at least one point of interest"
        );
        assert!(
            !spec.dims.is_empty(),
            "engine run needs at least one target dim"
        );
        let _run_span = anomex_obs::span!(
            "core.engine.run",
            points = spec.points.len(),
            dims = spec.dims.len()
        );
        let scorer = self.scorer();
        let mut dims = Vec::with_capacity(spec.dims.len());
        let mut spent = 0usize;
        for &dim in &spec.dims {
            if spec.eval_budget.is_some_and(|budget| spent >= budget) {
                obs_dims_skipped().incr();
                dims.push(DimRun {
                    dim,
                    explanations: BTreeMap::new(),
                    stats: RunStats::default(),
                    skipped: true,
                });
                continue;
            }
            let _dim_span = anomex_obs::span!("core.engine.dim_pass", dim = dim);
            let evals_before = scorer.evaluations();
            let hits_before = scorer.cache_hits();
            // anomex: allow(nondeterminism) RunStats telemetry; never feeds scores or rankings
            let start = Instant::now();
            let explanations = self.explain_at(explainer, &scorer, spec, dim);
            obs_dim_passes().incr();
            obs_points_explained().add(spec.points.len() as u64);
            let stats = RunStats {
                elapsed: start.elapsed(),
                evaluations: scorer.evaluations() - evals_before,
                cache_hits: scorer.cache_hits() - hits_before,
                peak_cache_entries: self.cache.stats().peak_entries,
            };
            spent += stats.evaluations;
            dims.push(DimRun {
                dim,
                explanations,
                stats,
                skipped: false,
            });
        }
        EngineRun { dims }
    }

    fn explain_at(
        &self,
        explainer: &ExplainerKind,
        scorer: &SubspaceScorer<'a>,
        spec: &RunSpec,
        dim: usize,
    ) -> BTreeMap<usize, RankedSubspaces> {
        match explainer {
            ExplainerKind::Point(e) => {
                let ranked: Vec<RankedSubspaces> = if spec.parallel_points && spec.points.len() > 1
                {
                    par_map(&spec.points, |&p| e.explain(scorer, p, dim))
                } else {
                    spec.points
                        .iter()
                        .map(|&p| e.explain(scorer, p, dim))
                        .collect()
                };
                spec.points.iter().copied().zip(ranked).collect()
            }
            ExplainerKind::Summary(e) => {
                let summary = e.summarize(scorer, &spec.points, dim);
                spec.points.iter().map(|&p| (p, summary.clone())).collect()
            }
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use crate::beam::Beam;
    use crate::lookout::LookOut;
    use anomex_detectors::Lof;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted() -> (Dataset, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 150;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n + 2);
        for _ in 0..n {
            let t: f64 = rng.gen_range(0.1..0.9);
            rows.push(vec![
                t + rng.gen_range(-0.02..0.02),
                t + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ]);
        }
        let a = rows.len();
        rows.push(vec![0.3, 0.7, 0.5, 0.5]);
        let b = rows.len();
        rows.push(vec![0.7, 0.3, 0.5, 0.5]);
        (Dataset::from_rows(rows).unwrap(), vec![a, b])
    }

    fn beam() -> ExplainerKind {
        ExplainerKind::Point(Box::new(Beam::new()))
    }

    #[test]
    fn multi_dim_sweep_reuses_the_cache() {
        let (ds, pois) = planted();
        let lof = Lof::new(10).unwrap();
        let engine = ExplanationEngine::new(&ds, &lof);
        let run = engine.run(&beam(), &RunSpec::new(pois.clone(), [2usize, 3]));
        assert_eq!(run.dims.len(), 2);
        // The 2d pass computes all C(4,2) pairs once.
        assert_eq!(run.dims[0].stats.evaluations, 6);
        // The 3d pass re-enumerates the 2d stage purely from cache.
        assert!(run.dims[1].stats.cache_hits >= 6);

        // Two independent single-dim engines must spend strictly more.
        let cold2 =
            ExplanationEngine::new(&ds, &lof).run(&beam(), &RunSpec::new(pois.clone(), [2usize]));
        let cold3 = ExplanationEngine::new(&ds, &lof).run(&beam(), &RunSpec::new(pois, [3usize]));
        assert!(
            run.total_evaluations() < cold2.total_evaluations() + cold3.total_evaluations(),
            "sweep must evaluate strictly less than independent runs"
        );
    }

    #[test]
    fn run_stats_serialize_round_trip() {
        let stats = RunStats {
            elapsed: Duration::from_micros(1234),
            evaluations: 6,
            cache_hits: 9,
            peak_cache_entries: 6,
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: RunStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        assert!((back.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn parallel_and_serial_points_agree() {
        let (ds, pois) = planted();
        let lof = Lof::new(10).unwrap();
        let par =
            ExplanationEngine::new(&ds, &lof).run(&beam(), &RunSpec::new(pois.clone(), [2usize]));
        let ser = ExplanationEngine::new(&ds, &lof)
            .run(&beam(), &RunSpec::new(pois, [2usize]).sequential_points());
        assert_eq!(par.dims[0].explanations, ser.dims[0].explanations);
        assert_eq!(par.dims[0].stats.evaluations, ser.dims[0].stats.evaluations);
    }

    #[test]
    fn warm_cache_preserves_results() {
        let (ds, pois) = planted();
        let lof = Lof::new(10).unwrap();
        let engine = ExplanationEngine::new(&ds, &lof);
        let spec = RunSpec::new(pois, [2usize]);
        let cold = engine.run(&beam(), &spec);
        let warm = engine.run(&beam(), &spec);
        assert_eq!(cold.dims[0].explanations, warm.dims[0].explanations);
        assert_eq!(
            warm.dims[0].stats.evaluations, 0,
            "warm run must be all hits"
        );
        assert!(warm.dims[0].stats.cache_hits > 0);
    }

    #[test]
    fn engines_share_an_external_cache() {
        let (ds, pois) = planted();
        let lof = Lof::new(10).unwrap();
        let cache = Arc::new(ScoreCache::new());
        let first = ExplanationEngine::with_cache(&ds, &lof, Arc::clone(&cache));
        let _ = first.run(&beam(), &RunSpec::new(pois.clone(), [2usize]));
        // A different explainer over the same (dataset, detector) pair
        // profits from the same cache.
        let lookout = ExplainerKind::Summary(Box::new(LookOut::new().budget(3)));
        let second = ExplanationEngine::with_cache(&ds, &lof, Arc::clone(&cache));
        let run = second.run(&lookout, &RunSpec::new(pois, [2usize]));
        assert_eq!(run.dims[0].stats.evaluations, 0);
        assert!(run.dims[0].stats.cache_hits >= 6);
    }

    #[test]
    fn summary_explainer_shares_one_summary() {
        let (ds, pois) = planted();
        let lof = Lof::new(10).unwrap();
        let engine = ExplanationEngine::new(&ds, &lof);
        let lookout = ExplainerKind::Summary(Box::new(LookOut::new().budget(5)));
        let run = engine.run(&lookout, &RunSpec::new(pois.clone(), [2usize]));
        assert_eq!(
            run.dims[0].explanations[&pois[0]],
            run.dims[0].explanations[&pois[1]]
        );
    }

    #[test]
    fn eval_budget_skips_remaining_dims() {
        let (ds, pois) = planted();
        let lof = Lof::new(10).unwrap();
        let engine = ExplanationEngine::new(&ds, &lof);
        // Budget of 1: the first pass runs (budget is checked before a
        // pass starts), the second must be skipped.
        let run = engine.run(
            &beam(),
            &RunSpec::new(pois, [2usize, 3]).with_eval_budget(1),
        );
        assert!(!run.dims[0].skipped);
        assert!(run.dims[1].skipped);
        assert!(run.dims[1].explanations.is_empty());
        assert_eq!(run.for_dim(3).map(|d| d.skipped), Some(true));
    }

    #[test]
    fn run_stats_telemetry_is_consistent() {
        let (ds, pois) = planted();
        let lof = Lof::new(10).unwrap();
        let engine = ExplanationEngine::new(&ds, &lof);
        let run = engine.run(&beam(), &RunSpec::new(pois, [2usize]));
        let stats = run.dims[0].stats;
        assert_eq!(stats.evaluations, 6);
        assert!(stats.hit_rate() > 0.0, "second point must hit the cache");
        assert_eq!(stats.peak_cache_entries, 6);
        assert_eq!(engine.cache().stats().evaluations, 6);
        assert_eq!(run.total_evaluations(), 6);
    }

    #[test]
    fn incremental_distances_preserve_explanations() {
        let (ds, pois) = planted();
        let lof = Lof::new(10).unwrap();
        let base = ExplanationEngine::new(&ds, &lof)
            .run(&beam(), &RunSpec::new(pois.clone(), [2usize, 3]));
        let engine = ExplanationEngine::new(&ds, &lof).with_incremental_distances(16);
        let fast = engine.run(&beam(), &RunSpec::new(pois, [2usize, 3]));
        // Distance-path scores agree with the projection path to rounding
        // (the blocked kernel reassociates arithmetic), so the *selected*
        // subspaces — the explanation — must be identical.
        for (a, b) in base.dims.iter().zip(&fast.dims) {
            for (p, ranked) in &a.explanations {
                assert_eq!(ranked.subspaces(), b.explanations[p].subspaces());
            }
        }
        let inc = engine.incremental_distances().expect("memo enabled");
        let stats = inc.stats();
        assert!(
            stats.incremental_builds > 0,
            "beam's stage-wise extensions must hit the incremental path: {stats:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty_points() {
        let (ds, _) = planted();
        let lof = Lof::new(10).unwrap();
        let _ = ExplanationEngine::new(&ds, &lof)
            .run(&beam(), &RunSpec::new(Vec::<usize>::new(), [2usize]));
    }

    #[test]
    #[should_panic(expected = "at least one target dim")]
    fn rejects_empty_dims() {
        let (ds, pois) = planted();
        let lof = Lof::new(10).unwrap();
        let _ = ExplanationEngine::new(&ds, &lof)
            .run(&beam(), &RunSpec::new(pois, Vec::<usize>::new()));
    }
}
