//! LookOut — explanation summarization by submodular maximization
//! (Gupta, Eswaran, Shah, Akoglu, Faloutsos — ECML/PKDD 2018; paper
//! §2.3).
//!
//! LookOut enumerates **every** subspace of the requested dimensionality,
//! scores all points of interest in each, and greedily selects a
//! `budget`-sized list maximizing the concise-summary objective
//!
//! `f(S) = Σ_{p ∈ P} max_{s ∈ S} score(p, s)`
//!
//! which is non-negative, non-decreasing and submodular, so the greedy
//! algorithm enjoys the classic `1 − 1/e ≈ 63 %` approximation guarantee
//! (Nemhauser & Wolsey 1978). The selection order *is* the output
//! ranking; each subspace carries its marginal gain as score.
//!
//! Standardized scores can be negative; the objective clamps them at 0
//! (a subspace in which a point looks perfectly normal contributes
//! nothing) to preserve the submodularity preconditions.

use crate::explainer::{RankedSubspaces, SummaryExplainer};
use crate::scoring::SubspaceScorer;
use anomex_dataset::subspace::enumerate_subspaces;
use anomex_dataset::Subspace;

/// The LookOut summarizer. Defaults to the paper's `budget = 100`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookOut {
    budget: usize,
}

impl Default for LookOut {
    fn default() -> Self {
        LookOut { budget: 100 }
    }
}

impl LookOut {
    /// Paper-default LookOut (budget 100).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of subspaces in the summary.
    ///
    /// # Panics
    /// Panics when `b == 0`.
    #[must_use]
    pub fn budget(mut self, b: usize) -> Self {
        assert!(b > 0, "budget must be positive");
        self.budget = b;
        self
    }
}

impl SummaryExplainer for LookOut {
    fn summarize(
        &self,
        scorer: &SubspaceScorer<'_>,
        points: &[usize],
        target_dim: usize,
    ) -> RankedSubspaces {
        let d = scorer.n_features();
        assert!(
            !points.is_empty(),
            "LookOut needs at least one point of interest"
        );
        assert!(
            points.iter().all(|&p| p < scorer.n_rows()),
            "point of interest out of range"
        );
        assert!(
            (1..=d).contains(&target_dim),
            "target dimensionality {target_dim} out of range 1..={d}"
        );

        // Exhaustive enumeration + scoring of all C(d, target_dim)
        // subspaces at the points of interest only (clamped at 0).
        let candidates: Vec<Subspace> = enumerate_subspaces(d, target_dim).collect();
        let score_rows: Vec<Vec<f64>> = scorer
            .point_scores_batch(&candidates, points)
            .into_iter()
            .map(|row| row.into_iter().map(|v| v.max(0.0)).collect())
            .collect();

        // Greedy max-coverage: `best[j]` is the current objective
        // contribution of point j.
        let mut best = vec![0.0f64; points.len()];
        let mut selected: Vec<(Subspace, f64)> = Vec::new();
        let mut used = vec![false; candidates.len()];
        for _ in 0..self.budget.min(candidates.len()) {
            let mut arg = usize::MAX;
            let mut top_gain = 0.0f64;
            for (i, row) in score_rows.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let gain: f64 = row.iter().zip(&best).map(|(&v, &b)| (v - b).max(0.0)).sum();
                if gain > top_gain
                    || (gain == top_gain && arg != usize::MAX && candidates[i] < candidates[arg])
                {
                    top_gain = gain;
                    arg = i;
                }
            }
            if arg == usize::MAX || top_gain <= 0.0 {
                break; // every remaining subspace is redundant
            }
            used[arg] = true;
            for (b, &v) in best.iter_mut().zip(&score_rows[arg]) {
                *b = b.max(v);
            }
            selected.push((candidates[arg].clone(), top_gain));
        }
        RankedSubspaces::from_ordered(selected)
    }

    fn name(&self) -> &'static str {
        "LookOut"
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;
    use anomex_detectors::Lof;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 6-feature dataset with two planted outliers in different 2d tubes:
    /// point A deviates in {0, 1}, point B in {3, 4}.
    fn planted_two() -> (Dataset, usize, usize, Subspace, Subspace) {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 250;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n + 2);
        for _ in 0..n {
            let t1: f64 = rng.gen_range(0.1..0.9);
            let t2: f64 = rng.gen_range(0.1..0.9);
            rows.push(vec![
                t1 + rng.gen_range(-0.02..0.02),
                t1 + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.0..1.0),
                t2 + rng.gen_range(-0.02..0.02),
                t2 + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.0..1.0),
            ]);
        }
        let a = rows.len();
        rows.push(vec![0.25, 0.75, 0.5, 0.5, 0.52, 0.5]); // breaks {0,1}
        let b = rows.len();
        rows.push(vec![0.5, 0.52, 0.5, 0.3, 0.8, 0.5]); // breaks {3,4}
        (
            Dataset::from_rows(rows).unwrap(),
            a,
            b,
            Subspace::new([0usize, 1]),
            Subspace::new([3usize, 4]),
        )
    }

    #[test]
    fn summary_covers_both_outliers() {
        let (ds, a, b, sa, sb) = planted_two();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let summary = LookOut::new().budget(2).summarize(&scorer, &[a, b], 2);
        let subs: Vec<&Subspace> = summary.subspaces();
        assert_eq!(subs.len(), 2);
        assert!(subs.contains(&&sa), "missing {sa}: {subs:?}");
        assert!(subs.contains(&&sb), "missing {sb}: {subs:?}");
    }

    #[test]
    fn first_pick_maximizes_total_score() {
        let (ds, a, b, ..) = planted_two();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let summary = LookOut::new().budget(5).summarize(&scorer, &[a, b], 2);
        // Marginal gains must be non-increasing (submodularity).
        let gains: Vec<f64> = summary.entries().iter().map(|(_, g)| *g).collect();
        for w in gains.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "gains must not increase: {gains:?}");
        }
    }

    #[test]
    fn stops_early_when_gains_vanish() {
        let (ds, a, ..) = planted_two();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        // A single point is fully covered by its best subspace; further
        // picks add nothing, so the summary stays short of the budget.
        let summary = LookOut::new().budget(100).summarize(&scorer, &[a], 2);
        assert!(summary.len() < 15, "summary length {}", summary.len());
    }

    #[test]
    fn single_point_summary_contains_its_subspace() {
        let (ds, a, _, sa, _) = planted_two();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let summary = LookOut::new().budget(3).summarize(&scorer, &[a], 2);
        assert_eq!(summary.best(), Some(&sa));
    }

    #[test]
    fn deterministic() {
        let (ds, a, b, ..) = planted_two();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let x = LookOut::new().budget(4).summarize(&scorer, &[a, b], 2);
        let y = LookOut::new().budget(4).summarize(&scorer, &[a, b], 2);
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty_point_set() {
        let (ds, ..) = planted_two();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let _ = LookOut::new().summarize(&scorer, &[], 2);
    }
}
