//! Re-export of the [`anomex_parallel`] fork-join map.
//!
//! The implementation used to live here; it moved into its own
//! bottom-layer crate so the detectors' per-row kernels (kNN scans,
//! ABOD variance, iForest path lengths) can share the same worker pool
//! discipline — and, crucially, the same [`is_nested`] guard — as the
//! explainer-level fan-out in this crate. Existing `anomex_core::parallel`
//! paths keep working unchanged.

pub use anomex_parallel::{is_nested, par_chunk_flat_map, par_map};
