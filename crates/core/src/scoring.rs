//! The shared subspace-scoring engine: project → detect → standardize →
//! memoize.
//!
//! Every explainer evaluates the same primitive thousands to millions of
//! times: *"how outlying is point p (or point set P) in subspace s
//! according to detector D?"*. [`SubspaceScorer`] centralizes that
//! primitive, applying the paper's per-subspace z-score standardization
//! (§2.2) and memoizing full score vectors in a [`ScoreCache`] so
//! stage-wise searches never re-run the detector on a subspace they have
//! already visited.
//!
//! The cache is a separate, `Arc`-shared [`ScoreCache`]: a scorer built
//! with [`SubspaceScorer::new`] owns a private one (the old per-run
//! behaviour), while [`SubspaceScorer::with_cache`] attaches an external
//! cache that outlives the run — the mechanism behind
//! [`crate::engine::ExplanationEngine`]'s cross-dimension reuse.

use crate::cache::{Fetch, ScoreCache};
use crate::parallel::par_map;
use anomex_dataset::{Dataset, IncrementalDistances, Subspace};
use anomex_detectors::zscore::standardize_scores;
use anomex_detectors::Detector;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-wide work meters, in addition to the per-scorer counters: the
/// scorer is the sole owner of the hit/miss classification, so the
/// global `core.scorer.*` counters reconcile exactly with every
/// [`crate::engine::RunStats`] summed over a region (the obs test suite
/// pins this). Handles are cached so the hot path pays one relaxed
/// `fetch_add`, never a registry lookup.
fn obs_evaluations() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("core.scorer.evaluations"))
}

fn obs_cache_hits() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("core.scorer.cache_hits"))
}

/// Tri-state memo of whether the scorer's detector supports the
/// distance-only scoring path (`score_from_sq_dists`).
const DIST_UNKNOWN: u8 = 0;
const DIST_SUPPORTED: u8 = 1;
const DIST_UNSUPPORTED: u8 = 2;

/// Caching subspace scorer binding one dataset to one detector.
///
/// Cheap to share by reference across threads; all interior mutability is
/// synchronized. The `evaluations` / `cache_hits` counters are **local to
/// this scorer** (they meter one run even when the underlying cache is
/// shared across many).
pub struct SubspaceScorer<'a> {
    dataset: &'a Dataset,
    detector: &'a dyn Detector,
    cache: Option<Arc<ScoreCache>>,
    /// Optional incremental pairwise-distance memo (see
    /// [`SubspaceScorer::with_incremental`]).
    incremental: Option<Arc<IncrementalDistances>>,
    /// Whether `detector` accepts the distance-only path; discovered on
    /// the first miss so unsupported detectors (iForest, LODA) pay the
    /// O(N²) matrix build at most once.
    dist_support: AtomicU8,
    evaluations: AtomicUsize,
    cache_hits: AtomicUsize,
    standardize: bool,
}

impl<'a> SubspaceScorer<'a> {
    /// Creates a scorer with a private, unbounded cache.
    #[must_use]
    pub fn new(dataset: &'a Dataset, detector: &'a dyn Detector) -> Self {
        Self::with_cache(dataset, detector, Arc::new(ScoreCache::new()))
    }

    /// Creates a scorer backed by an external, shareable cache. The cache
    /// outlives the scorer, so score vectors computed here are visible to
    /// every later scorer attached to the same cache.
    ///
    /// Only share a cache between scorers with identical score semantics:
    /// same dataset, same detector (same configuration and seed), same
    /// standardization setting.
    #[must_use]
    pub fn with_cache(
        dataset: &'a Dataset,
        detector: &'a dyn Detector,
        cache: Arc<ScoreCache>,
    ) -> Self {
        SubspaceScorer {
            dataset,
            detector,
            cache: Some(cache),
            incremental: None,
            dist_support: AtomicU8::new(DIST_UNKNOWN),
            evaluations: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            standardize: true,
        }
    }

    /// Attaches an incremental pairwise-distance memo
    /// ([`IncrementalDistances`]): score-cache misses on detectors that
    /// support the distance-only path (LOF, kNN-distance, Fast ABOD)
    /// then reuse memoized per-feature distance contributions instead of
    /// re-scanning coordinates — a stage-wise search extending `S` to
    /// `S ∪ {f}` pays O(N²) per miss instead of O(N²·|S|). Detectors
    /// that need raw coordinates fall back to the projection path
    /// transparently. The memo may be shared by several scorers over the
    /// **same dataset** (it stores distances, which are
    /// detector-independent).
    #[must_use]
    pub fn with_incremental(mut self, distances: Arc<IncrementalDistances>) -> Self {
        self.incremental = Some(distances);
        self
    }

    /// Disables the per-subspace z-score standardization (paper §2.2),
    /// exposing the detector's raw scores. Exists for the ablation
    /// benches that quantify how much the standardization matters;
    /// production explainers should keep it on.
    #[must_use]
    pub fn with_raw_scores(mut self) -> Self {
        self.standardize = false;
        self
    }

    /// Creates a scorer that never caches — appropriate for exhaustive
    /// single-pass enumerations (LookOut over millions of subspaces)
    /// where a cache would only consume memory. (A bounded shared cache
    /// — [`ScoreCache::with_capacity`] — is the middle ground.)
    #[must_use]
    pub fn without_cache(dataset: &'a Dataset, detector: &'a dyn Detector) -> Self {
        SubspaceScorer {
            dataset,
            detector,
            cache: None,
            incremental: None,
            dist_support: AtomicU8::new(DIST_UNKNOWN),
            evaluations: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            standardize: true,
        }
    }

    /// The underlying dataset.
    #[must_use]
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The underlying detector.
    #[must_use]
    pub fn detector(&self) -> &'a dyn Detector {
        self.detector
    }

    /// The backing cache, when caching is enabled.
    #[must_use]
    pub fn cache(&self) -> Option<&Arc<ScoreCache>> {
        self.cache.as_ref()
    }

    /// Number of features of the underlying dataset.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.dataset.n_features()
    }

    /// Number of rows of the underlying dataset.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.dataset.n_rows()
    }

    /// Detector invocations performed *through this scorer* (unique
    /// cache misses; concurrent misses of the same subspace count once).
    #[must_use]
    pub fn evaluations(&self) -> usize {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Cache hits observed by this scorer — including requests served by
    /// entries a previous run left in a shared cache.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Computes (or retrieves) the **standardized** score vector of every
    /// row in `subspace`: detector scores z-scored against the subspace's
    /// own score population.
    #[must_use]
    pub fn scores(&self, subspace: &Subspace) -> Arc<Vec<f64>> {
        assert!(!subspace.is_empty(), "cannot score the empty subspace");
        match &self.cache {
            Some(cache) => {
                let (scores, fetch) = cache.get_or_compute(subspace, || self.compute(subspace));
                match fetch {
                    Fetch::Computed => {
                        self.evaluations.fetch_add(1, Ordering::Relaxed);
                        obs_evaluations().incr();
                    }
                    Fetch::Hit => {
                        self.cache_hits.fetch_add(1, Ordering::Relaxed);
                        obs_cache_hits().incr();
                    }
                }
                scores
            }
            None => {
                self.evaluations.fetch_add(1, Ordering::Relaxed);
                obs_evaluations().incr();
                Arc::new(self.compute(subspace))
            }
        }
    }

    /// The standardized score of one point in one subspace — the
    /// `score(p_s)'` of the paper's §2.2.
    #[must_use]
    pub fn point_score(&self, subspace: &Subspace, point: usize) -> f64 {
        self.scores(subspace)[point]
    }

    /// Scores a batch of subspaces in parallel (order preserved). The
    /// parallelism lives here, at the candidate level, so detectors and
    /// explainers stay single-threaded and simple. When invoked from
    /// inside another [`par_map`] region (an explainer already fanned out
    /// per point), the batch falls back to the sequential path instead of
    /// oversubscribing the machine.
    #[must_use]
    pub fn score_batch(&self, subspaces: &[Subspace]) -> Vec<Arc<Vec<f64>>> {
        par_map(subspaces, |s| self.scores(s))
    }

    /// Convenience: the standardized scores of a fixed set of points in a
    /// batch of subspaces — `out[i][j]` is the score of `points[j]` in
    /// `subspaces[i]`. Uses the parallel batch path.
    #[must_use]
    pub fn point_scores_batch(&self, subspaces: &[Subspace], points: &[usize]) -> Vec<Vec<f64>> {
        self.score_batch(subspaces)
            .into_iter()
            .map(|v| points.iter().map(|&p| v[p]).collect())
            .collect()
    }

    fn compute(&self, subspace: &Subspace) -> Vec<f64> {
        let raw = self
            .compute_from_distances(subspace)
            .unwrap_or_else(|| self.detector.score_all(&self.dataset.project(subspace)));
        debug_assert_eq!(raw.len(), self.dataset.n_rows());
        if self.standardize {
            standardize_scores(&raw)
        } else {
            raw
        }
    }

    /// The distance-only scoring path: `Some(raw scores)` when an
    /// incremental memo is attached and the detector supports scoring
    /// from pairwise distances, `None` otherwise.
    fn compute_from_distances(&self, subspace: &Subspace) -> Option<Vec<f64>> {
        let incremental = self.incremental.as_ref()?;
        if self.dist_support.load(Ordering::Relaxed) == DIST_UNSUPPORTED {
            return None;
        }
        if self.dataset.n_rows() < 2 {
            return None; // kNN-style detectors need ≥ 2 rows either way
        }
        let dists = incremental.sq_dists(self.dataset, subspace);
        let raw = self.detector.score_from_sq_dists(&dists);
        self.dist_support.store(
            if raw.is_some() {
                DIST_SUPPORTED
            } else {
                DIST_UNSUPPORTED
            },
            Ordering::Relaxed,
        );
        raw
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;
    use anomex_detectors::Lof;

    fn toy() -> Dataset {
        // A tight cluster with one planted outlier in feature pair {0,1};
        // feature 2 is uniform noise.
        let mut rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let t = i as f64 / 30.0;
                vec![t * 0.01, t * 0.01, t]
            })
            .collect();
        rows.push(vec![0.8, 0.9, 0.5]);
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn scores_are_standardized() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let z = scorer.scores(&Subspace::new([0usize, 1]));
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-9);
        // Planted outlier dominates.
        let top = (0..z.len()).max_by(|&a, &b| z[a].total_cmp(&z[b])).unwrap();
        assert_eq!(top, 30);
    }

    #[test]
    fn caching_avoids_recomputation() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let s = Subspace::new([0usize, 2]);
        let a = scorer.scores(&s);
        let b = scorer.scores(&s);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(scorer.evaluations(), 1);
        assert_eq!(scorer.cache_hits(), 1);
    }

    #[test]
    fn uncached_scorer_recomputes() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let scorer = SubspaceScorer::without_cache(&ds, &lof);
        let s = Subspace::new([1usize, 2]);
        let a = scorer.scores(&s);
        let b = scorer.scores(&s);
        assert_eq!(*a, *b); // same values
        assert_eq!(scorer.evaluations(), 2); // but computed twice
        assert_eq!(scorer.cache_hits(), 0);
        assert!(scorer.cache().is_none());
    }

    #[test]
    fn shared_cache_is_warm_for_the_next_scorer() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let cache = Arc::new(ScoreCache::new());
        let s = Subspace::new([0usize, 1]);

        let first = SubspaceScorer::with_cache(&ds, &lof, Arc::clone(&cache));
        let a = first.scores(&s);
        assert_eq!(first.evaluations(), 1);

        // A second run over the same (dataset, detector) reuses the work.
        let second = SubspaceScorer::with_cache(&ds, &lof, Arc::clone(&cache));
        let b = second.scores(&s);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(second.evaluations(), 0);
        assert_eq!(second.cache_hits(), 1);
        assert_eq!(cache.stats().evaluations, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn batch_matches_sequential() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let subs: Vec<Subspace> = vec![
            Subspace::new([0usize]),
            Subspace::new([1usize]),
            Subspace::new([0usize, 1]),
            Subspace::new([0usize, 1, 2]),
        ];
        let batch = scorer.score_batch(&subs);
        for (s, b) in subs.iter().zip(&batch) {
            let direct = scorer.scores(s);
            assert_eq!(**b, *direct);
        }
    }

    #[test]
    fn concurrent_misses_count_one_evaluation() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let s = Subspace::new([0usize, 1, 2]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let _ = scorer.scores(&s);
                });
            }
        });
        assert_eq!(scorer.evaluations(), 1, "duplicated detector work");
        assert_eq!(scorer.cache_hits(), 7);
    }

    #[test]
    fn point_scores_batch_shape() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let subs = vec![Subspace::new([0usize, 1]), Subspace::new([2usize])];
        let pts = vec![30usize, 0];
        let m = scorer.point_scores_batch(&subs, &pts);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].len(), 2);
        assert_eq!(m[0][0], scorer.point_score(&subs[0], 30));
    }

    #[test]
    fn raw_scores_skip_standardization() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let raw = SubspaceScorer::new(&ds, &lof).with_raw_scores();
        let s = Subspace::new([0usize, 1]);
        let v = raw.scores(&s);
        // Raw LOF scores hover around 1, never zero-mean.
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean > 0.5, "raw LOF mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "empty subspace")]
    fn rejects_empty_subspace() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let _ = scorer.scores(&Subspace::new(Vec::<usize>::new()));
    }

    #[test]
    fn incremental_distance_path_matches_projection_path() {
        // Continuous random data: no distance near-ties, so both paths
        // select identical neighbours and scores agree to rounding.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let ds = Dataset::from_rows(
            (0..120)
                .map(|_| (0..3).map(|_| rng.gen::<f64>()).collect())
                .collect::<Vec<Vec<f64>>>(),
        )
        .unwrap();
        let lof = Lof::new(5).unwrap();
        let plain = SubspaceScorer::new(&ds, &lof);
        let inc = Arc::new(IncrementalDistances::new(8));
        let fast = SubspaceScorer::new(&ds, &lof).with_incremental(Arc::clone(&inc));
        // A stage-wise chain: each child extends its parent by the
        // highest feature, so the memo serves it incrementally.
        for s in [
            Subspace::new([0usize]),
            Subspace::new([0usize, 1]),
            Subspace::new([0usize, 1, 2]),
        ] {
            let a = plain.scores(&s);
            let b = fast.scores(&s);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-6, "{s}: {x} vs {y}");
            }
        }
        assert!(
            inc.stats().incremental_builds >= 1,
            "chain must reuse the parent matrix"
        );
    }

    #[test]
    fn incremental_scorer_falls_back_for_coordinate_detectors() {
        use anomex_detectors::IsolationForest;
        let ds = toy();
        let forest = IsolationForest::builder()
            .trees(10)
            .repetitions(1)
            .seed(1)
            .build()
            .unwrap();
        let plain = SubspaceScorer::new(&ds, &forest);
        let inc = Arc::new(IncrementalDistances::new(4));
        let fast = SubspaceScorer::new(&ds, &forest).with_incremental(Arc::clone(&inc));
        let s = Subspace::new([0usize, 1]);
        assert_eq!(*plain.scores(&s), *fast.scores(&s));
        let _ = fast.scores(&Subspace::new([1usize, 2]));
        // iForest needs coordinates: only the probing first miss builds a
        // distance matrix; later misses skip the memo entirely.
        let stats = inc.stats();
        assert_eq!(stats.full_builds + stats.incremental_builds, 1);
    }
}
