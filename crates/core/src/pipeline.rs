//! Detector × explainer pipelines — the paper's Figure 7.
//!
//! A [`Pipeline`] binds one detector to one explanation algorithm and
//! runs it over a dataset and a set of points of interest at a requested
//! explanation dimensionality, producing per-point ranked subspace lists
//! (`EXP_a(p)`). Point explainers run once per point; summarizers run
//! once and their summary stands as the explanation of *every* point —
//! exactly how the paper evaluates them with the same per-point MAP.

use crate::beam::Beam;
use crate::cache::ScoreCache;
use crate::engine::{ExplanationEngine, RunSpec};
use crate::explainer::{PointExplainer, RankedSubspaces, SummaryExplainer};
use crate::hics::Hics;
use crate::lookout::LookOut;
use crate::refout::RefOut;
use anomex_dataset::Dataset;
use anomex_detectors::Detector;
use anomex_spec::{ExplainerSpec, PipelineSpec};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// The explanation side of a pipeline.
pub enum ExplainerKind {
    /// A per-point explainer (Beam, RefOut).
    Point(Box<dyn PointExplainer>),
    /// A set-level summarizer (LookOut, HiCS).
    Summary(Box<dyn SummaryExplainer>),
}

impl ExplainerKind {
    /// The explainer's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ExplainerKind::Point(e) => e.name(),
            ExplainerKind::Summary(e) => e.name(),
        }
    }

    /// Builds the explainer an [`ExplainerSpec`] describes, validating
    /// the spec's numeric ranges up front so builder assertions never
    /// fire on wire-supplied values.
    ///
    /// # Errors
    /// When a count parameter is out of range (zero width/results/
    /// budget, RefOut pool below 4).
    pub fn from_spec(spec: &ExplainerSpec) -> Result<Self, String> {
        match *spec {
            ExplainerSpec::Beam {
                width,
                results,
                fixed_dim,
            } => {
                require(width > 0, "beam width must be positive")?;
                require(results > 0, "beam results must be positive")?;
                Ok(ExplainerKind::Point(Box::new(
                    Beam::new()
                        .beam_width(width)
                        .result_size(results)
                        .fixed_dim(fixed_dim),
                )))
            }
            ExplainerSpec::RefOut {
                pool,
                width,
                results,
                seed,
            } => {
                require(pool >= 4, "refout pool must be at least 4")?;
                require(width > 0, "refout width must be positive")?;
                require(results > 0, "refout results must be positive")?;
                Ok(ExplainerKind::Point(Box::new(
                    RefOut::new()
                        .pool_size(pool)
                        .beam_width(width)
                        .result_size(results)
                        .seed(seed),
                )))
            }
            ExplainerSpec::LookOut { budget } => {
                require(budget > 0, "lookout budget must be positive")?;
                Ok(ExplainerKind::Summary(Box::new(
                    LookOut::new().budget(budget),
                )))
            }
            ExplainerSpec::Hics {
                mc,
                cutoff,
                results,
                fixed_dim,
                seed,
            } => {
                require(mc > 0, "hics mc must be positive")?;
                require(cutoff > 0, "hics cutoff must be positive")?;
                require(results > 0, "hics results must be positive")?;
                Ok(ExplainerKind::Summary(Box::new(
                    Hics::new()
                        .monte_carlo_iterations(mc)
                        .candidate_cutoff(cutoff)
                        .result_size(results)
                        .fixed_dim(fixed_dim)
                        .seed(seed),
                )))
            }
        }
    }
}

fn require(ok: bool, message: &str) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(message.to_string())
    }
}

/// One detector × explainer pairing.
pub struct Pipeline {
    detector: Box<dyn Detector>,
    explainer: ExplainerKind,
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutput {
    /// Per-point ranked explanations (`EXP_a(p)`), keyed by point id.
    pub explanations: BTreeMap<usize, RankedSubspaces>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Number of detector invocations (subspace evaluations).
    pub subspace_evaluations: usize,
    /// Score-cache hits during the run.
    pub cache_hits: usize,
}

impl Pipeline {
    /// Builds a pipeline from a detector and a point explainer.
    #[must_use]
    pub fn point<D, E>(detector: D, explainer: E) -> Self
    where
        D: Detector + 'static,
        E: PointExplainer + 'static,
    {
        Pipeline {
            detector: Box::new(detector),
            explainer: ExplainerKind::Point(Box::new(explainer)),
        }
    }

    /// Builds a pipeline from a detector and a summarizer.
    #[must_use]
    pub fn summary<D, E>(detector: D, explainer: E) -> Self
    where
        D: Detector + 'static,
        E: SummaryExplainer + 'static,
    {
        Pipeline {
            detector: Box::new(detector),
            explainer: ExplainerKind::Summary(Box::new(explainer)),
        }
    }

    /// Builds the pipeline a canonical [`PipelineSpec`] describes —
    /// the single constructor core, eval and serve all share, so a
    /// spec means the same live pipeline everywhere.
    ///
    /// # Errors
    /// When the detector or explainer half carries an out-of-range
    /// hyper-parameter.
    pub fn from_spec(spec: &PipelineSpec) -> Result<Self, String> {
        let detector =
            anomex_detectors::build_detector(&spec.detector).map_err(|e| e.to_string())?;
        let explainer = ExplainerKind::from_spec(&spec.explainer)?;
        Ok(Pipeline {
            detector,
            explainer,
        })
    }

    /// The detector's display name.
    #[must_use]
    pub fn detector_name(&self) -> &'static str {
        self.detector.name()
    }

    /// The explainer's display name.
    #[must_use]
    pub fn explainer_name(&self) -> &'static str {
        self.explainer.name()
    }

    /// A `"Explainer+Detector"` label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}+{}", self.explainer_name(), self.detector_name())
    }

    /// The pipeline's explainer.
    #[must_use]
    pub fn explainer(&self) -> &ExplainerKind {
        &self.explainer
    }

    /// The pipeline's detector.
    #[must_use]
    pub fn detector(&self) -> &dyn Detector {
        self.detector.as_ref()
    }

    /// An [`ExplanationEngine`] binding this pipeline's detector to
    /// `dataset`, with a fresh cache.
    #[must_use]
    pub fn engine<'a>(&'a self, dataset: &'a Dataset) -> ExplanationEngine<'a> {
        ExplanationEngine::new(dataset, self.detector.as_ref())
    }

    /// An [`ExplanationEngine`] over an existing shared cache — the hook
    /// the evaluation harness uses to reuse one cache across every
    /// pipeline pairing the same (dataset, detector).
    #[must_use]
    pub fn engine_with_cache<'a>(
        &'a self,
        dataset: &'a Dataset,
        cache: Arc<ScoreCache>,
    ) -> ExplanationEngine<'a> {
        ExplanationEngine::with_cache(dataset, self.detector.as_ref(), cache)
    }

    /// Runs the pipeline: explains every point of interest at
    /// `target_dim`.
    ///
    /// This is a compatibility wrapper over [`ExplanationEngine`]: one
    /// single-dimensionality engine run with a throwaway cache, points
    /// explained in parallel. Use [`Pipeline::engine`] directly to keep
    /// the cache warm across dimensionalities or runs.
    ///
    /// # Panics
    /// Panics when `points` is empty or out of range, or `target_dim` is
    /// invalid for the dataset (propagated from the explainer).
    #[must_use]
    pub fn run(&self, dataset: &Dataset, points: &[usize], target_dim: usize) -> PipelineOutput {
        assert!(
            !points.is_empty(),
            "pipeline needs at least one point of interest"
        );
        let engine = self.engine(dataset);
        let run = engine.run(&self.explainer, &RunSpec::new(points, [target_dim]));
        let pass = run.into_single();
        PipelineOutput {
            explanations: pass.explanations,
            elapsed: pass.stats.elapsed,
            subspace_evaluations: pass.stats.evaluations,
            cache_hits: pass.stats.cache_hits,
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use crate::beam::Beam;
    use crate::lookout::LookOut;
    use anomex_detectors::Lof;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted() -> (Dataset, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 150;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n + 2);
        for _ in 0..n {
            let t: f64 = rng.gen_range(0.1..0.9);
            rows.push(vec![
                t + rng.gen_range(-0.02..0.02),
                t + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ]);
        }
        let a = rows.len();
        rows.push(vec![0.3, 0.7, 0.5, 0.5]);
        let b = rows.len();
        rows.push(vec![0.7, 0.3, 0.5, 0.5]);
        (Dataset::from_rows(rows).unwrap(), vec![a, b])
    }

    #[test]
    fn point_pipeline_explains_each_point() {
        let (ds, pois) = planted();
        let pipe = Pipeline::point(Lof::new(10).unwrap(), Beam::new());
        let out = pipe.run(&ds, &pois, 2);
        assert_eq!(out.explanations.len(), 2);
        for p in &pois {
            assert!(!out.explanations[p].is_empty());
        }
        assert!(out.subspace_evaluations > 0);
        assert_eq!(pipe.label(), "Beam_FX+LOF");
    }

    #[test]
    fn summary_pipeline_shares_one_summary() {
        let (ds, pois) = planted();
        let pipe = Pipeline::summary(Lof::new(10).unwrap(), LookOut::new().budget(5));
        let out = pipe.run(&ds, &pois, 2);
        assert_eq!(out.explanations[&pois[0]], out.explanations[&pois[1]]);
        assert_eq!(pipe.label(), "LookOut+LOF");
    }

    #[test]
    fn point_pipeline_caches_across_points() {
        let (ds, pois) = planted();
        let pipe = Pipeline::point(Lof::new(10).unwrap(), Beam::new());
        let out = pipe.run(&ds, &pois, 2);
        // Stage-1 enumeration is identical for both points: the second
        // point must be served entirely from cache.
        assert_eq!(out.subspace_evaluations, 6); // C(4,2)
        assert!(out.cache_hits >= 6);
    }

    #[test]
    fn wrapper_matches_direct_engine_run() {
        let (ds, pois) = planted();
        let pipe = Pipeline::point(Lof::new(10).unwrap(), Beam::new());
        let out = pipe.run(&ds, &pois, 2);
        let direct = pipe
            .engine(&ds)
            .run(pipe.explainer(), &RunSpec::new(pois.as_slice(), [2usize]))
            .into_single();
        assert_eq!(out.explanations, direct.explanations);
        assert_eq!(out.subspace_evaluations, direct.stats.evaluations);
    }

    #[test]
    fn spec_built_pipeline_matches_hand_built_output() {
        let (ds, pois) = planted();
        let hand = Pipeline::point(Lof::new(10).unwrap(), Beam::new());
        let spec = Pipeline::from_spec(&PipelineSpec::parse("beam+lof:k=10").unwrap()).unwrap();
        assert_eq!(spec.label(), hand.label());
        let out_hand = hand.run(&ds, &pois, 2);
        let out_spec = spec.run(&ds, &pois, 2);
        assert_eq!(out_spec.explanations, out_hand.explanations);
    }

    #[test]
    fn spec_built_summary_pipeline_matches_hand_built_output() {
        let (ds, pois) = planted();
        let hand = Pipeline::summary(Lof::new(10).unwrap(), LookOut::new().budget(5));
        let spec = Pipeline::from_spec(&PipelineSpec::parse("lookout:budget=5+lof:k=10").unwrap())
            .unwrap();
        assert_eq!(spec.label(), hand.label());
        let out_hand = hand.run(&ds, &pois, 2);
        let out_spec = spec.run(&ds, &pois, 2);
        assert_eq!(out_spec.explanations, out_hand.explanations);
    }

    #[test]
    fn from_spec_rejects_out_of_range_parameters() {
        use anomex_spec::{DetectorSpec, ExplainerSpec};
        let bad = PipelineSpec::new(
            DetectorSpec::Lof {
                k: 0,
                backend: anomex_spec::NeighborBackend::Exact,
                precision: anomex_spec::Precision::F64,
            },
            ExplainerSpec::beam(),
        );
        assert!(Pipeline::from_spec(&bad).is_err());
        let bad = PipelineSpec::new(
            DetectorSpec::lof(),
            ExplainerSpec::Beam {
                width: 0,
                results: 100,
                fixed_dim: true,
            },
        );
        assert!(Pipeline::from_spec(&bad).is_err());
        let bad = PipelineSpec::new(
            DetectorSpec::lof(),
            ExplainerSpec::RefOut {
                pool: 3,
                width: 100,
                results: 100,
                seed: 0,
            },
        );
        assert!(Pipeline::from_spec(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty_poi_set() {
        let (ds, _) = planted();
        let pipe = Pipeline::point(Lof::new(10).unwrap(), Beam::new());
        let _ = pipe.run(&ds, &[], 2);
    }
}
