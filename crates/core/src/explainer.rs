//! The explanation interfaces: point explainers, summarizers, and their
//! ranked-subspace results.

use crate::scoring::SubspaceScorer;
use anomex_dataset::Subspace;

/// A ranked list of subspaces, best first, each with the score the
/// explainer assigned it. This is the universal output type of the
/// framework (`EXP_a(p)` in the paper's §3.3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankedSubspaces {
    entries: Vec<(Subspace, f64)>,
}

impl RankedSubspaces {
    /// Builds a ranking from `(subspace, score)` pairs, sorting by score
    /// descending (ties broken by subspace order for determinism) and
    /// deduplicating subspaces (keeping the best score of each).
    #[must_use]
    pub fn from_scored(mut entries: Vec<(Subspace, f64)>) -> Self {
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut seen = crate::fxhash::FxHashSet::default();
        entries.retain(|(s, _)| seen.insert(s.clone()));
        RankedSubspaces { entries }
    }

    /// Builds a ranking that preserves the given order (for algorithms
    /// like LookOut whose greedy selection order *is* the ranking).
    #[must_use]
    pub fn from_ordered(entries: Vec<(Subspace, f64)>) -> Self {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut out = Vec::with_capacity(entries.len());
        for (s, v) in entries {
            if seen.insert(s.clone()) {
                out.push((s, v));
            }
        }
        RankedSubspaces { entries: out }
    }

    /// The ranked `(subspace, score)` pairs, best first.
    #[must_use]
    pub fn entries(&self) -> &[(Subspace, f64)] {
        &self.entries
    }

    /// The ranked subspaces only, best first.
    #[must_use]
    pub fn subspaces(&self) -> Vec<&Subspace> {
        self.entries.iter().map(|(s, _)| s).collect()
    }

    /// Number of ranked subspaces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ranking is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The best-ranked subspace, if any.
    #[must_use]
    pub fn best(&self) -> Option<&Subspace> {
        self.entries.first().map(|(s, _)| s)
    }

    /// Truncates to the `k` best entries.
    #[must_use]
    pub fn truncated(mut self, k: usize) -> Self {
        self.entries.truncate(k);
        self
    }

    /// Zero-based rank of `subspace`, if present.
    #[must_use]
    pub fn rank_of(&self, subspace: &Subspace) -> Option<usize> {
        self.entries.iter().position(|(s, _)| s == subspace)
    }
}

/// An algorithm that explains the outlyingness of **one point** by
/// ranking subspaces (paper §2.2: Beam, RefOut).
pub trait PointExplainer: Send + Sync {
    /// Ranks subspaces of exactly `target_dim` features that best explain
    /// why `point` is outlying, best first.
    ///
    /// # Panics
    /// Implementations panic when `point` is out of range or
    /// `target_dim` is 0 or exceeds the dataset dimensionality.
    fn explain(
        &self,
        scorer: &SubspaceScorer<'_>,
        point: usize,
        target_dim: usize,
    ) -> RankedSubspaces;

    /// Short identifier used in reports (e.g. `"Beam"`).
    fn name(&self) -> &'static str;
}

/// An algorithm that **summarizes** the outlyingness of a *set* of points
/// with a single ranked subspace list (paper §2.3: LookOut, HiCS).
pub trait SummaryExplainer: Send + Sync {
    /// Ranks subspaces of exactly `target_dim` features that collectively
    /// separate as many of `points` from the inliers as possible.
    ///
    /// # Panics
    /// Implementations panic when `points` is empty or out of range, or
    /// `target_dim` is 0 or exceeds the dataset dimensionality.
    fn summarize(
        &self,
        scorer: &SubspaceScorer<'_>,
        points: &[usize],
        target_dim: usize,
    ) -> RankedSubspaces;

    /// Short identifier used in reports (e.g. `"LookOut"`).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn s(fs: &[usize]) -> Subspace {
        Subspace::new(fs.to_vec())
    }

    #[test]
    fn from_scored_sorts_descending() {
        let r = RankedSubspaces::from_scored(vec![(s(&[0]), 1.0), (s(&[1]), 3.0), (s(&[2]), 2.0)]);
        assert_eq!(r.best(), Some(&s(&[1])));
        assert_eq!(r.entries()[2].0, s(&[0]));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn from_scored_dedupes_keeping_best() {
        let r = RankedSubspaces::from_scored(vec![
            (s(&[0, 1]), 1.0),
            (s(&[1, 0]), 5.0), // same canonical subspace
            (s(&[2]), 3.0),
        ]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.entries()[0], (s(&[0, 1]), 5.0));
    }

    #[test]
    fn ties_break_deterministically() {
        let r1 = RankedSubspaces::from_scored(vec![(s(&[3]), 1.0), (s(&[1]), 1.0)]);
        let r2 = RankedSubspaces::from_scored(vec![(s(&[1]), 1.0), (s(&[3]), 1.0)]);
        assert_eq!(r1, r2);
        assert_eq!(r1.best(), Some(&s(&[1])));
    }

    #[test]
    fn from_ordered_preserves_order() {
        let r = RankedSubspaces::from_ordered(vec![
            (s(&[5]), 0.1),
            (s(&[2]), 9.0),
            (s(&[5]), 10.0), // duplicate dropped, first kept
        ]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.best(), Some(&s(&[5])));
    }

    #[test]
    fn rank_and_truncate() {
        let r = RankedSubspaces::from_scored(vec![(s(&[0]), 3.0), (s(&[1]), 2.0), (s(&[2]), 1.0)]);
        assert_eq!(r.rank_of(&s(&[1])), Some(1));
        assert_eq!(r.rank_of(&s(&[9])), None);
        let t = r.truncated(1);
        assert_eq!(t.len(), 1);
        assert!(t.rank_of(&s(&[1])).is_none());
    }

    #[test]
    fn empty_ranking() {
        let r = RankedSubspaces::default();
        assert!(r.is_empty());
        assert_eq!(r.best(), None);
    }
}
