//! HiCS — High Contrast Subspaces (Keller, Müller, Böhm — ICDE 2012;
//! paper §2.3).
//!
//! HiCS decouples subspace *search* from outlier *scoring*: it ranks
//! subspaces by their **contrast** — how much the conditional
//! distribution of one feature, restricted to random slices of the
//! subspace's other features, deviates from its marginal distribution.
//! High contrast means strong feature dependence: many empty regions,
//! few dense ones — promising territory for separating outliers from
//! inliers.
//!
//! Contrast is estimated by Monte Carlo: in each of `M` iterations a
//! random comparison feature is drawn, a random axis-parallel slice of
//! the remaining features (expected volume `α`) selects the conditional
//! sample, and a two-sample statistical test (Welch's t-test by default,
//! Kolmogorov–Smirnov as alternative — paper footnote 2) measures the
//! deviation `1 − p`. Candidates are grown stage-wise (Apriori-style,
//! `candidate_cutoff` survivors per stage). Finally the retrieved
//! subspaces are ranked for the given points of interest using the
//! pipeline's detector — HiCS's only use of the detector.
//!
//! `HiCS_FX` (the paper's fairness variant) stops at the requested
//! dimensionality and returns only subspaces of exactly that size;
//! classic HiCS returns subspaces of varying dimensionality.

use crate::explainer::{RankedSubspaces, SummaryExplainer};
use crate::fxhash::{FxHashSet, FxHasher};
use crate::parallel::par_map;
use crate::scoring::SubspaceScorer;
use anomex_dataset::subspace::enumerate_subspaces;
use anomex_dataset::{Dataset, Subspace};
use anomex_stats::rank::argsort;
use anomex_stats::tests::TwoSampleTest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hash::{Hash, Hasher};

/// The HiCS summarizer. Defaults to the paper's §3.1 settings:
/// `M = 100` Monte-Carlo iterations, `α = 0.1`, `candidate_cutoff = 400`,
/// top-100 results, fixed-dimensionality output (`HiCS_FX`, the variant
/// the paper's Figure 10 evaluates).
///
/// The default contrast test is **Kolmogorov–Smirnov** (the ELKI
/// implementation's default, and one of the paper's two options —
/// footnote 2): a slice whose *mean* happens to coincide with the
/// marginal mean still differs in *distribution*, which the KS statistic
/// sees but Welch's t-test does not. Welch remains available through
/// [`Hics::statistical_test`] and is compared in the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hics {
    monte_carlo_iterations: usize,
    alpha: f64,
    candidate_cutoff: usize,
    test: TwoSampleTest,
    result_size: usize,
    fixed_dim: bool,
    seed: u64,
}

impl Default for Hics {
    fn default() -> Self {
        Hics {
            monte_carlo_iterations: 100,
            alpha: 0.1,
            candidate_cutoff: 400,
            test: TwoSampleTest::KolmogorovSmirnov,
            result_size: 100,
            fixed_dim: true,
            seed: 0,
        }
    }
}

impl Hics {
    /// Paper-default HiCS.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of Monte-Carlo slice iterations per contrast
    /// estimate.
    ///
    /// # Panics
    /// Panics when `m == 0`.
    #[must_use]
    pub fn monte_carlo_iterations(mut self, m: usize) -> Self {
        assert!(m > 0, "Monte-Carlo iterations must be positive");
        self.monte_carlo_iterations = m;
        self
    }

    /// Sets the expected slice volume `α ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics when `alpha` is outside `(0, 1)`.
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
        self.alpha = alpha;
        self
    }

    /// Sets the number of candidates surviving each stage (paper: 400).
    ///
    /// # Panics
    /// Panics when `c == 0`.
    #[must_use]
    pub fn candidate_cutoff(mut self, c: usize) -> Self {
        assert!(c > 0, "candidate cutoff must be positive");
        self.candidate_cutoff = c;
        self
    }

    /// Chooses the statistical contrast test (Welch or KS — footnote 2).
    #[must_use]
    pub fn statistical_test(mut self, test: TwoSampleTest) -> Self {
        self.test = test;
        self
    }

    /// Sets the number of subspaces returned.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn result_size(mut self, n: usize) -> Self {
        assert!(n > 0, "result size must be positive");
        self.result_size = n;
        self
    }

    /// Chooses between `HiCS_FX` (`true`, default) and classic HiCS
    /// (`false`: candidates of *all* visited dimensionalities compete in
    /// the final ranking).
    #[must_use]
    pub fn fixed_dim(mut self, fx: bool) -> Self {
        self.fixed_dim = fx;
        self
    }

    /// Seeds the Monte-Carlo slicing (deterministic given the seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Estimates the contrast of one subspace on `dataset` — exposed for
    /// diagnostics, tests and ablation benches. `sorted_idx[f]` must be
    /// the row indices of the dataset sorted ascending by feature `f`
    /// (see [`sort_features`]).
    #[must_use]
    pub fn contrast(
        &self,
        dataset: &Dataset,
        sorted_idx: &[Vec<usize>],
        subspace: &Subspace,
    ) -> f64 {
        let k = subspace.dim();
        assert!(k >= 2, "contrast is defined for subspaces of 2+ features");
        let n = dataset.n_rows();
        // Deterministic per-subspace RNG so parallel evaluation order
        // cannot change results.
        let mut h = FxHasher::default();
        subspace.hash(&mut h);
        let mut rng = StdRng::seed_from_u64(self.seed ^ h.finish());

        // Window size per conditioning feature so the expected slice
        // keeps ~α·N rows: N · α^(1/(k−1)).
        let w = ((n as f64) * self.alpha.powf(1.0 / (k - 1) as f64)).ceil() as usize;
        let w = w.clamp(2, n);
        let features: Vec<usize> = subspace.iter().collect();

        let mut total = 0.0;
        let mut valid = 0usize;
        let mut in_slice = vec![0u16; n];
        for _ in 0..self.monte_carlo_iterations {
            let cmp_idx = rng.gen_range(0..k);
            let cmp_feature = features[cmp_idx];
            // Count how many of the k−1 conditioning windows each row hits.
            for c in in_slice.iter_mut() {
                *c = 0;
            }
            for (j, &g) in features.iter().enumerate() {
                if j == cmp_idx {
                    continue;
                }
                let start = rng.gen_range(0..=n - w);
                for &row in &sorted_idx[g][start..start + w] {
                    in_slice[row] += 1;
                }
            }
            let needed = (k - 1) as u16;
            let column = dataset.column(cmp_feature);
            let conditional: Vec<f64> = in_slice
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == needed)
                .map(|(row, _)| column[row])
                .collect();
            if conditional.len() < 2 || conditional.len() == n {
                continue; // degenerate slice: no information
            }
            let (_stat, p) = self.test.run(column, &conditional);
            total += 1.0 - p;
            valid += 1;
        }
        if valid == 0 {
            0.0
        } else {
            total / valid as f64
        }
    }

    /// Runs the stage-wise candidate search and returns
    /// `(subspace, contrast)` pairs: only the final stage for `HiCS_FX`,
    /// all stages for classic HiCS.
    #[must_use]
    pub fn search_candidates(&self, dataset: &Dataset, target_dim: usize) -> Vec<(Subspace, f64)> {
        let d = dataset.n_features();
        let sorted_idx = sort_features(dataset);

        // Stage 2: exhaustive contrast over all feature pairs
        // (`summarize` guarantees target_dim ≥ 2).
        let pairs: Vec<Subspace> = enumerate_subspaces(d, 2).collect();
        let mut stage = self.score_contrast(dataset, &sorted_idx, pairs);
        truncate_ranked(&mut stage, self.candidate_cutoff);
        let mut all = stage.clone();

        let mut dim = 2;
        while dim < target_dim {
            dim += 1;
            let mut seen = FxHashSet::default();
            let mut cands: Vec<Subspace> = Vec::new();
            for (s, _) in &stage {
                for f in 0..d {
                    if let Some(ext) = s.extended_with(f) {
                        if seen.insert(ext.clone()) {
                            cands.push(ext);
                        }
                    }
                }
            }
            stage = self.score_contrast(dataset, &sorted_idx, cands);
            truncate_ranked(&mut stage, self.candidate_cutoff);
            all.extend(stage.iter().cloned());
        }

        if self.fixed_dim {
            stage
        } else {
            all
        }
    }

    fn score_contrast(
        &self,
        dataset: &Dataset,
        sorted_idx: &[Vec<usize>],
        cands: Vec<Subspace>,
    ) -> Vec<(Subspace, f64)> {
        let contrasts = par_map(&cands, |s| self.contrast(dataset, sorted_idx, s));
        cands.into_iter().zip(contrasts).collect()
    }
}

impl SummaryExplainer for Hics {
    fn summarize(
        &self,
        scorer: &SubspaceScorer<'_>,
        points: &[usize],
        target_dim: usize,
    ) -> RankedSubspaces {
        let d = scorer.n_features();
        assert!(
            !points.is_empty(),
            "HiCS needs at least one point of interest"
        );
        assert!(
            points.iter().all(|&p| p < scorer.n_rows()),
            "point of interest out of range"
        );
        assert!(
            (2..=d).contains(&target_dim),
            "target dimensionality {target_dim} out of range 2..={d}"
        );

        // Detector-independent candidate search...
        let mut candidates = self.search_candidates(scorer.dataset(), target_dim);
        truncate_ranked(&mut candidates, self.result_size.max(self.candidate_cutoff));

        // ... then rank the retrieved subspaces for the given points with
        // the pipeline's detector (mean standardized score of the POIs).
        let subs: Vec<Subspace> = candidates.into_iter().map(|(s, _)| s).collect();
        let poi_scores = scorer.point_scores_batch(&subs, points);
        let ranked: Vec<(Subspace, f64)> = subs
            .into_iter()
            .zip(poi_scores)
            .map(|(s, scores)| {
                let mean = scores.iter().sum::<f64>() / scores.len() as f64;
                (s, mean)
            })
            .collect();
        RankedSubspaces::from_scored(ranked).truncated(self.result_size)
    }

    fn name(&self) -> &'static str {
        if self.fixed_dim {
            "HiCS_FX"
        } else {
            "HiCS"
        }
    }
}

/// Per-feature ascending argsort of the dataset rows — the index HiCS
/// slices against.
#[must_use]
pub fn sort_features(dataset: &Dataset) -> Vec<Vec<usize>> {
    (0..dataset.n_features())
        .map(|f| argsort(dataset.column(f)))
        .collect()
}

/// Keeps the `k` best pairs, sorted descending (deterministic ties).
fn truncate_ranked(v: &mut Vec<(Subspace, f64)>, k: usize) {
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(k);
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_detectors::Lof;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 6 features: {0, 1} strongly dependent (tube), {3, 4} dependent,
    /// everything else independent noise; outliers break each tube.
    fn planted() -> (Dataset, Vec<usize>, Subspace, Subspace) {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 300;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n + 2);
        for _ in 0..n {
            let t1: f64 = rng.gen_range(0.1..0.9);
            let t2: f64 = rng.gen_range(0.1..0.9);
            rows.push(vec![
                t1 + rng.gen_range(-0.02..0.02),
                t1 + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.0..1.0),
                t2 + rng.gen_range(-0.02..0.02),
                t2 + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.0..1.0),
            ]);
        }
        let a = rows.len();
        rows.push(vec![0.25, 0.75, 0.5, 0.5, 0.51, 0.5]);
        let b = rows.len();
        rows.push(vec![0.5, 0.51, 0.5, 0.25, 0.75, 0.5]);
        (
            Dataset::from_rows(rows).unwrap(),
            vec![a, b],
            Subspace::new([0usize, 1]),
            Subspace::new([3usize, 4]),
        )
    }

    #[test]
    fn contrast_separates_dependent_from_independent_pairs() {
        let (ds, ..) = planted();
        let hics = Hics::new().monte_carlo_iterations(50);
        let sorted = sort_features(&ds);
        let dependent = hics.contrast(&ds, &sorted, &Subspace::new([0usize, 1]));
        let independent = hics.contrast(&ds, &sorted, &Subspace::new([2usize, 5]));
        assert!(
            dependent > independent + 0.2,
            "dependent {dependent} vs independent {independent}"
        );
        assert!((0.0..=1.0).contains(&dependent));
        assert!((0.0..=1.0).contains(&independent));
    }

    #[test]
    fn search_finds_the_tubes_first() {
        let (ds, _, sa, sb) = planted();
        let hics = Hics::new().monte_carlo_iterations(50).candidate_cutoff(5);
        let cands = hics.search_candidates(&ds, 2);
        let top2: Vec<&Subspace> = cands.iter().take(2).map(|(s, _)| s).collect();
        assert!(top2.contains(&&sa), "top: {cands:?}");
        assert!(top2.contains(&&sb), "top: {cands:?}");
    }

    #[test]
    fn summarize_ranks_tubes_at_top() {
        let (ds, pois, sa, sb) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let hics = Hics::new().monte_carlo_iterations(50).result_size(10);
        let summary = hics.summarize(&scorer, &pois, 2);
        let subs = summary.subspaces();
        assert!(subs[..2].contains(&&sa), "summary: {subs:?}");
        assert!(subs[..2].contains(&&sb), "summary: {subs:?}");
    }

    #[test]
    fn fx_returns_only_target_dim() {
        let (ds, pois, ..) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let summary = Hics::new()
            .monte_carlo_iterations(20)
            .fixed_dim(true)
            .summarize(&scorer, &pois, 3);
        assert!(summary.entries().iter().all(|(s, _)| s.dim() == 3));
    }

    #[test]
    fn classic_returns_mixed_dims() {
        let (ds, pois, ..) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let summary = Hics::new()
            .monte_carlo_iterations(20)
            .fixed_dim(false)
            .result_size(50)
            .summarize(&scorer, &pois, 3);
        let dims: FxHashSet<usize> = summary.entries().iter().map(|(s, _)| s.dim()).collect();
        assert!(dims.contains(&2) && dims.contains(&3), "dims: {dims:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (ds, pois, ..) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let h = Hics::new().monte_carlo_iterations(30).seed(5);
        let a = h.summarize(&scorer, &pois, 2);
        let b = h.summarize(&scorer, &pois, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn ks_test_variant_also_works() {
        let (ds, ..) = planted();
        let hics = Hics::new()
            .monte_carlo_iterations(50)
            .statistical_test(TwoSampleTest::KolmogorovSmirnov);
        let sorted = sort_features(&ds);
        let dep = hics.contrast(&ds, &sorted, &Subspace::new([0usize, 1]));
        let ind = hics.contrast(&ds, &sorted, &Subspace::new([2usize, 5]));
        assert!(dep > ind, "KS: dependent {dep} vs independent {ind}");
    }

    #[test]
    #[should_panic(expected = "2+ features")]
    fn contrast_rejects_singletons() {
        let (ds, ..) = planted();
        let sorted = sort_features(&ds);
        let _ = Hics::new().contrast(&ds, &sorted, &Subspace::single(0));
    }
}
