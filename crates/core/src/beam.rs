//! Beam — stage-wise greedy point explanation (Nguyen et al., *Discovering
//! outlying aspects in large datasets*, DAMI 2016; paper §2.2).
//!
//! Beam explains one point by climbing dimensionalities:
//!
//! 1. **Stage 1** scores the point in *every* 2d subspace (exhaustive).
//! 2. Each later stage extends the `beam_width` best subspaces of the
//!    previous stage with every remaining feature, scores the candidates,
//!    and keeps the best `beam_width` again (the *stage list*), while a
//!    *global list* accumulates the best subspaces seen at any stage.
//! 3. At the requested dimensionality the search stops.
//!
//! The paper compares two outputs: classic Beam returns the *global list*
//! (subspaces of varying dimensionality); the fairness variant `Beam_FX`
//! returns only final-stage subspaces of exactly the requested
//! dimensionality. [`Beam::fixed_dim`] selects between them.

use crate::explainer::{PointExplainer, RankedSubspaces};
use crate::fxhash::FxHashSet;
use crate::scoring::SubspaceScorer;
use anomex_dataset::subspace::enumerate_subspaces;
use anomex_dataset::Subspace;

/// The Beam point explainer. Defaults to the paper's hyper-parameters:
/// `beam_width = 100`, `result_size = 100`, fixed-dimensionality output
/// (`Beam_FX`, the variant the paper's Figure 9 evaluates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Beam {
    beam_width: usize,
    result_size: usize,
    fixed_dim: bool,
}

impl Default for Beam {
    fn default() -> Self {
        Beam {
            beam_width: 100,
            result_size: 100,
            fixed_dim: true,
        }
    }
}

impl Beam {
    /// Paper-default Beam (`beam_width = 100`, top-100 results, `FX`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of subspaces carried between stages.
    ///
    /// # Panics
    /// Panics when `w == 0`.
    #[must_use]
    pub fn beam_width(mut self, w: usize) -> Self {
        assert!(w > 0, "beam width must be positive");
        self.beam_width = w;
        self
    }

    /// Sets the number of subspaces returned.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn result_size(mut self, n: usize) -> Self {
        assert!(n > 0, "result size must be positive");
        self.result_size = n;
        self
    }

    /// Chooses between `Beam_FX` (`true`, default: only final-stage
    /// subspaces of exactly the requested dimensionality) and classic
    /// Beam (`false`: the global list across stages, mixed
    /// dimensionality).
    #[must_use]
    pub fn fixed_dim(mut self, fx: bool) -> Self {
        self.fixed_dim = fx;
        self
    }
}

impl PointExplainer for Beam {
    fn explain(
        &self,
        scorer: &SubspaceScorer<'_>,
        point: usize,
        target_dim: usize,
    ) -> RankedSubspaces {
        let d = scorer.n_features();
        assert!(point < scorer.n_rows(), "point {point} out of range");
        assert!(
            (1..=d).contains(&target_dim),
            "target dimensionality {target_dim} out of range 1..={d}"
        );

        // Stage 1: exhaustive over min(2, target) dimensional subspaces.
        let first_dim = target_dim.min(2);
        let mut stage: Vec<(Subspace, f64)> = {
            let cands: Vec<Subspace> = enumerate_subspaces(d, first_dim).collect();
            score_candidates(scorer, point, cands)
        };
        truncate_ranked(&mut stage, self.beam_width);
        let mut global: Vec<(Subspace, f64)> = stage.clone();

        // Later stages: extend the beam with every remaining feature.
        let mut dim = first_dim;
        while dim < target_dim {
            dim += 1;
            let mut seen = FxHashSet::default();
            let mut cands: Vec<Subspace> = Vec::new();
            for (s, _) in &stage {
                for f in 0..d {
                    if let Some(ext) = s.extended_with(f) {
                        if seen.insert(ext.clone()) {
                            cands.push(ext);
                        }
                    }
                }
            }
            let scored = score_candidates(scorer, point, cands);
            stage = scored;
            truncate_ranked(&mut stage, self.beam_width);
            global.extend(stage.iter().cloned());
        }

        let pool = if self.fixed_dim { stage } else { global };
        RankedSubspaces::from_scored(pool).truncated(self.result_size)
    }

    fn name(&self) -> &'static str {
        if self.fixed_dim {
            "Beam_FX"
        } else {
            "Beam"
        }
    }
}

/// Scores `point` in every candidate (parallel) and returns the pairs.
fn score_candidates(
    scorer: &SubspaceScorer<'_>,
    point: usize,
    cands: Vec<Subspace>,
) -> Vec<(Subspace, f64)> {
    let scores = scorer.point_scores_batch(&cands, &[point]);
    cands
        .into_iter()
        .zip(scores)
        .map(|(s, v)| (s, v[0]))
        .collect()
}

/// Keeps the `k` best pairs, sorted descending (deterministic ties).
fn truncate_ranked(v: &mut Vec<(Subspace, f64)>, k: usize) {
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(k);
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;
    use anomex_detectors::Lof;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 6-feature dataset where the last point deviates ONLY in features
    /// {1, 4} jointly (correlated tube construction, masked in 1d).
    fn planted() -> (Dataset, usize, Subspace) {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 200;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        for _ in 0..n {
            let t: f64 = rng.gen_range(0.1..0.9);
            let mut r = vec![0.0; 6];
            for (f, slot) in r.iter_mut().enumerate() {
                *slot = match f {
                    1 | 4 => t + rng.gen_range(-0.02..0.02),
                    _ => rng.gen_range(0.0..1.0),
                };
            }
            rows.push(r);
        }
        // Outlier: off the {1,4} diagonal, valid marginals elsewhere.
        let mut out = vec![0.0; 6];
        for (f, slot) in out.iter_mut().enumerate() {
            *slot = match f {
                1 => 0.3,
                4 => 0.7, // jointly inconsistent with the tube
                _ => rng.gen_range(0.0..1.0),
            };
        }
        rows.push(out);
        (
            Dataset::from_rows(rows).unwrap(),
            n,
            Subspace::new([1usize, 4]),
        )
    }

    #[test]
    fn finds_planted_2d_subspace() {
        let (ds, point, truth) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let ranked = Beam::new().explain(&scorer, point, 2);
        assert_eq!(
            ranked.best(),
            Some(&truth),
            "top: {:?}",
            ranked.entries()[0]
        );
    }

    #[test]
    fn fx_returns_only_target_dim() {
        let (ds, point, _) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let ranked = Beam::new().fixed_dim(true).explain(&scorer, point, 3);
        assert!(ranked.entries().iter().all(|(s, _)| s.dim() == 3));
    }

    #[test]
    fn classic_returns_mixed_dims_including_best_2d() {
        let (ds, point, truth) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let ranked = Beam::new().fixed_dim(false).explain(&scorer, point, 3);
        let dims: Vec<usize> = ranked.entries().iter().map(|(s, _)| s.dim()).collect();
        assert!(dims.contains(&2) && dims.contains(&3));
        // The planted 2d subspace should still rank at the very top.
        assert_eq!(ranked.best(), Some(&truth));
    }

    #[test]
    fn beam_width_one_still_works() {
        let (ds, point, _) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let ranked = Beam::new()
            .beam_width(1)
            .result_size(5)
            .explain(&scorer, point, 3);
        assert!(!ranked.is_empty());
        assert!(ranked.len() <= 5);
    }

    #[test]
    fn target_dim_one_enumerates_singles() {
        let (ds, point, _) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let ranked = Beam::new().explain(&scorer, point, 1);
        assert!(ranked.entries().iter().all(|(s, _)| s.dim() == 1));
        assert_eq!(ranked.len(), 6);
    }

    #[test]
    fn stage_one_is_exhaustive() {
        let (ds, point, _) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let ranked = Beam::new().result_size(100).explain(&scorer, point, 2);
        assert_eq!(ranked.len(), 15); // C(6,2)
        assert_eq!(scorer.evaluations(), 15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target_dim() {
        let (ds, point, _) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let _ = Beam::new().explain(&scorer, point, 7);
    }

    #[test]
    fn deterministic() {
        let (ds, point, _) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let a = Beam::new().explain(&scorer, point, 3);
        let b = Beam::new().explain(&scorer, point, 3);
        assert_eq!(a, b);
    }
}
