//! A sharded, shareable score cache: the memoization layer of the
//! subspace-scoring engine.
//!
//! Subspace search hammers one primitive — score every row in a subspace
//! — millions of times, and stage-wise searches revisit the same
//! subspaces constantly. [`ScoreCache`] memoizes the (subspace →
//! standardized score vector) mapping with three properties the old
//! per-run scorer-internal map lacked:
//!
//! * **Sharded locking** — keys are distributed over N mutex-guarded
//!   shards by their Fx hash, so concurrent `score_batch` workers no
//!   longer serialize on one global lock on every cache hit.
//! * **Shareable lifetime** — the cache is `Arc`-shareable and outlives a
//!   single run: one cache can back a whole sweep over explanation
//!   dimensionalities, and every pipeline pairing the same (dataset,
//!   detector), so work done for 2d explanations is reused at 3d–5d.
//! * **Exactly-once computation** — a per-entry in-flight guard makes
//!   concurrent misses of the same subspace compute it exactly once: the
//!   first thread computes, the others wait and observe a hit. This keeps
//!   the `evaluations` counter exact under parallel explanation (it
//!   counts *unique* subspaces, never duplicated work).
//!
//! An optional capacity bound (FIFO eviction per shard) keeps
//! LookOut-scale exhaustive enumerations from exhausting memory.
//!
//! The cache stores whatever vectors the caller computes; it does not
//! standardize or validate them. One cache must therefore only ever be
//! shared between scorers with identical score semantics (same detector,
//! same standardization setting).

use crate::fxhash::{FxHashMap, FxHasher};
use anomex_dataset::Subspace;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::hash::{BuildHasher, BuildHasherDefault};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// How a [`ScoreCache::get_or_compute`] request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetch {
    /// The calling thread computed the value (a unique cache miss).
    Computed,
    /// The value was served from the cache, either directly or by
    /// waiting on another thread's in-flight computation.
    Hit,
}

/// A snapshot of the cache's cumulative counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Unique computations performed through the cache (misses).
    pub evaluations: usize,
    /// Requests served without computing (including waits on in-flight
    /// computations).
    pub hits: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum number of entries ever resident at once.
    pub peak_entries: usize,
}

impl CacheStats {
    /// Fraction of requests served from cache, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.evaluations + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// State of one in-flight computation, shared between the computing
/// thread and any threads that missed the same key concurrently.
enum FlightState {
    Running,
    Done(Arc<Vec<f64>>),
    /// The computing thread panicked; waiters retry from scratch.
    Poisoned,
}

struct InFlight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum Slot {
    Ready(Arc<Vec<f64>>),
    Pending(Arc<InFlight>),
}

#[derive(Default)]
struct Shard {
    map: FxHashMap<Subspace, Slot>,
    /// Insertion order of Ready entries, for FIFO eviction. Pending
    /// entries are never queued (and therefore never evicted).
    order: VecDeque<Subspace>,
}

/// Builder for [`ScoreCache`] — see [`ScoreCache::builder`].
#[derive(Debug, Clone, Copy)]
pub struct ScoreCacheBuilder {
    shards: usize,
    capacity: Option<usize>,
}

impl ScoreCacheBuilder {
    /// Sets the number of lock shards (rounded up to a power of two,
    /// clamped to `1..=256`). More shards mean less contention between
    /// concurrent workers; one shard degenerates to a single global lock.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Bounds the total number of resident entries. When a shard
    /// overflows its slice of the capacity, its oldest entries are
    /// evicted (FIFO). `None` (the default) means unbounded. The
    /// per-shard slice is clamped to ≥ 1, so `capacity(0)` behaves as a
    /// one-entry-per-shard cache rather than caching nothing — every
    /// value returned by `get_or_compute` must be insertable, or the
    /// exactly-once in-flight protocol would have nowhere to publish
    /// results.
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Builds the cache.
    #[must_use]
    pub fn build(self) -> ScoreCache {
        let n = self.shards.clamp(1, 256).next_power_of_two();
        let shards: Vec<Mutex<Shard>> = (0..n).map(|_| Mutex::new(Shard::default())).collect();
        let per_shard_cap = self.capacity.map(|c| (c / n).max(1));
        ScoreCache {
            shards: shards.into_boxed_slice(),
            shard_mask: (n - 1) as u64,
            per_shard_cap,
            evaluations: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            peak_entries: AtomicUsize::new(0),
        }
    }
}

/// A sharded (subspace → score vector) cache, shareable across runs via
/// `Arc` — see the [module docs](self) for the design.
pub struct ScoreCache {
    shards: Box<[Mutex<Shard>]>,
    shard_mask: u64,
    per_shard_cap: Option<usize>,
    evaluations: AtomicUsize,
    hits: AtomicUsize,
    entries: AtomicUsize,
    peak_entries: AtomicUsize,
}

impl Default for ScoreCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreCache {
    /// An unbounded cache with one shard per core (power-of-two rounded).
    #[must_use]
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::builder().shards(cores).build()
    }

    /// Starts configuring a cache. Defaults: one shard per core,
    /// unbounded capacity.
    #[must_use]
    pub fn builder() -> ScoreCacheBuilder {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        ScoreCacheBuilder {
            shards: cores,
            capacity: None,
        }
    }

    /// An unbounded-shards cache bounded to roughly `capacity` resident
    /// entries (FIFO-evicted per shard).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::builder().capacity(capacity).build()
    }

    /// Number of lock shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cumulative counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            evaluations: self.evaluations.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            peak_entries: self.peak_entries.load(Ordering::Relaxed),
        }
    }

    /// Drops every resident entry (counters other than `entries` are
    /// preserved; in-flight computations are unaffected).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut guard = shard.lock();
            let removed = guard.order.len();
            guard.order.clear();
            guard.map.retain(|_, slot| matches!(slot, Slot::Pending(_)));
            self.entries.fetch_sub(removed, Ordering::Relaxed);
        }
    }

    /// Looks up a ready entry without computing. Counts a hit when found.
    #[must_use]
    pub fn get(&self, key: &Subspace) -> Option<Arc<Vec<f64>>> {
        let guard = self.shards[self.shard_index(key)].lock();
        if let Some(Slot::Ready(v)) = guard.map.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(Arc::clone(v))
        } else {
            None
        }
    }

    /// Returns the cached vector for `key`, computing it with `compute`
    /// on a miss. Concurrent misses of the same key compute exactly once:
    /// the first thread runs `compute`, the rest block until it finishes
    /// and observe a [`Fetch::Hit`].
    ///
    /// `compute` runs outside every cache lock, so it may itself use the
    /// cache (for different keys) without deadlocking.
    pub fn get_or_compute<F>(&self, key: &Subspace, compute: F) -> (Arc<Vec<f64>>, Fetch)
    where
        F: FnOnce() -> Vec<f64>,
    {
        let shard = &self.shards[self.shard_index(key)];
        let flight: Arc<InFlight>;
        loop {
            let mut guard = shard.lock();
            match guard.map.get(key) {
                Some(Slot::Ready(v)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Arc::clone(v), Fetch::Hit);
                }
                Some(Slot::Pending(p)) => {
                    let p = Arc::clone(p);
                    drop(guard);
                    let mut state = p.state.lock();
                    while matches!(*state, FlightState::Running) {
                        p.done.wait(&mut state);
                    }
                    match &*state {
                        FlightState::Done(v) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return (Arc::clone(v), Fetch::Hit);
                        }
                        // The computing thread panicked — retry (this
                        // thread may become the new computer).
                        FlightState::Poisoned | FlightState::Running => continue,
                    }
                }
                None => {
                    let p = Arc::new(InFlight {
                        state: Mutex::new(FlightState::Running),
                        done: Condvar::new(),
                    });
                    guard.map.insert(key.clone(), Slot::Pending(Arc::clone(&p)));
                    flight = p;
                    break;
                }
            }
        }

        // This thread owns the computation. If `compute` panics, the
        // guard below removes the pending entry and wakes waiters so
        // they retry instead of blocking forever.
        struct PoisonOnUnwind<'c> {
            shard: &'c Mutex<Shard>,
            key: &'c Subspace,
            flight: &'c Arc<InFlight>,
            armed: bool,
        }
        impl Drop for PoisonOnUnwind<'_> {
            fn drop(&mut self) {
                if !self.armed {
                    return;
                }
                let mut guard = self.shard.lock();
                if let Some(Slot::Pending(p)) = guard.map.get(self.key) {
                    if Arc::ptr_eq(p, self.flight) {
                        guard.map.remove(self.key);
                    }
                }
                drop(guard);
                *self.flight.state.lock() = FlightState::Poisoned;
                self.flight.done.notify_all();
            }
        }
        let mut unwind_guard = PoisonOnUnwind {
            shard,
            key,
            flight: &flight,
            armed: true,
        };
        let value = Arc::new(compute());
        unwind_guard.armed = false;
        drop(unwind_guard);

        self.evaluations.fetch_add(1, Ordering::Relaxed);
        {
            let mut guard = shard.lock();
            guard
                .map
                .insert(key.clone(), Slot::Ready(Arc::clone(&value)));
            guard.order.push_back(key.clone());
            let now = self.entries.fetch_add(1, Ordering::Relaxed) + 1;
            self.peak_entries.fetch_max(now, Ordering::Relaxed);
            if let Some(cap) = self.per_shard_cap {
                while guard.order.len() > cap {
                    if let Some(oldest) = guard.order.pop_front() {
                        if matches!(guard.map.get(&oldest), Some(Slot::Ready(_))) {
                            guard.map.remove(&oldest);
                            self.entries.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        {
            let mut state = flight.state.lock();
            *state = FlightState::Done(Arc::clone(&value));
        }
        flight.done.notify_all();
        (value, Fetch::Computed)
    }

    fn shard_index(&self, key: &Subspace) -> usize {
        let hasher: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        (hasher.hash_one(key) & self.shard_mask) as usize
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn s(features: &[usize]) -> Subspace {
        Subspace::new(features.to_vec())
    }

    #[test]
    fn miss_then_hit() {
        let cache = ScoreCache::new();
        let key = s(&[0, 1]);
        let (a, f1) = cache.get_or_compute(&key, || vec![1.0, 2.0]);
        assert_eq!(f1, Fetch::Computed);
        let (b, f2) = cache.get_or_compute(&key, || panic!("must not recompute"));
        assert_eq!(f2, Fetch::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!(stats.evaluations, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.peak_entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let cache = ScoreCache::builder().shards(4).build();
        for i in 0..100usize {
            let (_, f) = cache.get_or_compute(&s(&[i, i + 1]), || vec![i as f64]);
            assert_eq!(f, Fetch::Computed);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().evaluations, 100);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn concurrent_misses_compute_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let cache = ScoreCache::builder().shards(8).build();
        let computes = AtomicUsize::new(0);
        let key = s(&[3, 7]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (v, _) = cache.get_or_compute(&key, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        vec![42.0]
                    });
                    assert_eq!(*v, vec![42.0]);
                });
            }
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "duplicated compute");
        let stats = cache.stats();
        assert_eq!(stats.evaluations, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        // One shard so the global bound is exact and eviction order is
        // the insertion order.
        let cache = ScoreCache::builder().shards(1).capacity(3).build();
        for i in 0..5usize {
            let _ = cache.get_or_compute(&s(&[i]), || vec![i as f64]);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().peak_entries, 4); // insert-then-evict
                                                   // The two oldest were evicted; the three newest remain.
        assert!(cache.get(&s(&[0])).is_none());
        assert!(cache.get(&s(&[1])).is_none());
        for i in 2..5usize {
            assert!(cache.get(&s(&[i])).is_some(), "entry {i} evicted");
        }
        // A re-request of an evicted key recomputes.
        let (_, f) = cache.get_or_compute(&s(&[0]), || vec![0.0]);
        assert_eq!(f, Fetch::Computed);
    }

    #[test]
    fn capacity_zero_clamps_to_one_entry_per_shard() {
        // Regression: capacity 0 must not divide-to-zero or cache
        // nothing — the per-shard bound clamps to 1 (see
        // `ScoreCacheBuilder::capacity`).
        let cache = ScoreCache::builder().shards(1).capacity(0).build();
        let (_, f) = cache.get_or_compute(&s(&[0]), || vec![1.0]);
        assert_eq!(f, Fetch::Computed);
        assert_eq!(cache.len(), 1, "clamped capacity keeps one entry");
        // The resident entry serves hits until displaced...
        let (_, f) = cache.get_or_compute(&s(&[0]), || unreachable!());
        assert_eq!(f, Fetch::Hit);
        // ...and a new key displaces it (FIFO of size one).
        let _ = cache.get_or_compute(&s(&[1]), || vec![2.0]);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&s(&[0])).is_none(), "old entry survived");
        assert!(cache.get(&s(&[1])).is_some());
    }

    #[test]
    fn capacity_one_evicts_fifo_exactly() {
        let cache = ScoreCache::builder().shards(1).capacity(1).build();
        for i in 0..4usize {
            let (_, f) = cache.get_or_compute(&s(&[i]), || vec![i as f64]);
            assert_eq!(f, Fetch::Computed);
            assert_eq!(cache.len(), 1, "bound violated after insert {i}");
            if i > 0 {
                assert!(cache.get(&s(&[i - 1])).is_none(), "{}", i - 1);
            }
            assert!(cache.get(&s(&[i])).is_some(), "{i}");
        }
        // Every insert displaced the previous entry: 4 evaluations, and
        // the `get` probes above account for the hits.
        assert_eq!(cache.stats().evaluations, 4);
        assert_eq!(cache.stats().peak_entries, 2, "insert-then-evict peak");
    }

    #[test]
    fn tiny_capacity_still_computes_exactly_once_under_contention() {
        use std::sync::atomic::AtomicUsize;
        // Even when eviction churn is maximal (one resident entry), a
        // burst of concurrent misses on one key runs `compute` once: the
        // in-flight guard, not residency, provides exactly-once.
        let cache = ScoreCache::builder().shards(1).capacity(0).build();
        let computes = AtomicUsize::new(0);
        let key = s(&[5, 6]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (v, _) = cache.get_or_compute(&key, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        vec![9.0]
                    });
                    assert_eq!(*v, vec![9.0]);
                });
            }
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "duplicated compute");
        assert_eq!(cache.stats().evaluations, 1);
        assert_eq!(cache.stats().hits, 7);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = ScoreCache::new();
        let _ = cache.get_or_compute(&s(&[1, 2]), || vec![0.5]);
        let _ = cache.get_or_compute(&s(&[1, 2]), || unreachable!());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evaluations, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().peak_entries, 1);
        let (_, f) = cache.get_or_compute(&s(&[1, 2]), || vec![0.5]);
        assert_eq!(f, Fetch::Computed);
    }

    #[test]
    fn panicking_compute_poisons_and_allows_retry() {
        let cache = ScoreCache::builder().shards(1).build();
        let key = s(&[9]);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.get_or_compute(&key, || panic!("detector exploded"));
        }));
        assert!(panicked.is_err());
        // The entry is gone and a retry computes cleanly.
        let (v, f) = cache.get_or_compute(&key, || vec![7.0]);
        assert_eq!(f, Fetch::Computed);
        assert_eq!(*v, vec![7.0]);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ScoreCache::builder().shards(1).build().n_shards(), 1);
        assert_eq!(ScoreCache::builder().shards(3).build().n_shards(), 4);
        assert_eq!(ScoreCache::builder().shards(16).build().n_shards(), 16);
        assert_eq!(ScoreCache::builder().shards(1000).build().n_shards(), 256);
    }

    #[test]
    fn sharded_and_single_lock_agree() {
        let sharded = ScoreCache::builder().shards(16).build();
        let single = ScoreCache::builder().shards(1).build();
        for i in 0..50usize {
            let key = s(&[i, i + 2, i + 5]);
            let (a, _) = sharded.get_or_compute(&key, || vec![i as f64, 1.0]);
            let (b, _) = single.get_or_compute(&key, || vec![i as f64, 1.0]);
            assert_eq!(*a, *b);
        }
        assert_eq!(sharded.len(), single.len());
    }
}
