//! Surrogate (predictive) explanations — the research direction the
//! paper's conclusions (§6) lay out: *"build a surrogate model to
//! predict the scores of points produced by an unsupervised outlier
//! detector and approximate its decision boundary using minimal
//! predictive signatures"*.
//!
//! Where the four benchmarked algorithms produce *descriptive*
//! explanations (they re-search subspaces for every new batch), a
//! surrogate explanation is a **model**: it regresses the detector's
//! score vector on the raw features and returns the *minimal feature
//! signature* that predicts the scores well. The signature doubles as a
//! reusable explanation — it does not have to be recomputed when new
//! data arrives from the same generative process.
//!
//! The implementation uses greedy forward selection over ordinary least
//! squares (interaction-expanded, see below), stopping when adding a
//! feature no longer improves R² by `min_gain` or the target `r2_target`
//! is reached. Linear terms alone cannot see *joint* deviations (a
//! masked subspace outlier has unremarkable marginals), so each
//! candidate feature also contributes its pairwise products with the
//! features already selected — the cheapest interaction expansion that
//! makes tube-style subspace structure visible to the regression.

use crate::explainer::{RankedSubspaces, SummaryExplainer};
use crate::scoring::SubspaceScorer;
use anomex_dataset::Subspace;
use anomex_stats::linalg::least_squares;

/// The surrogate explainer.
///
/// As a [`SummaryExplainer`], it ranks `target_dim`-sized signatures by
/// their predictive R² — but its native output, [`Surrogate::fit`],
/// exposes the full fitted model (signature, coefficients, R² path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Surrogate {
    max_features: usize,
    min_gain: f64,
    r2_target: f64,
}

impl Default for Surrogate {
    fn default() -> Self {
        Surrogate {
            max_features: 5,
            min_gain: 0.01,
            r2_target: 0.95,
        }
    }
}

/// A fitted surrogate model.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateModel {
    /// Selected features in selection order.
    pub signature: Vec<usize>,
    /// R² after each selection step (same length as `signature`).
    pub r2_path: Vec<f64>,
    /// Final in-sample R².
    pub r_squared: f64,
}

impl SurrogateModel {
    /// The signature as a canonical subspace.
    #[must_use]
    pub fn subspace(&self) -> Subspace {
        Subspace::new(self.signature.clone())
    }
}

impl Surrogate {
    /// A surrogate with default stopping rules (≤ 5 features, 1 % min
    /// R² gain, stop at R² ≥ 0.95).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximum signature size.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn max_features(mut self, n: usize) -> Self {
        assert!(n > 0, "signature needs at least one feature");
        self.max_features = n;
        self
    }

    /// Minimum R² improvement to keep growing the signature.
    #[must_use]
    pub fn min_gain(mut self, g: f64) -> Self {
        self.min_gain = g;
        self
    }

    /// Early-stop R² target.
    #[must_use]
    pub fn r2_target(mut self, t: f64) -> Self {
        self.r2_target = t;
        self
    }

    /// Fits the surrogate: regresses the detector's score vector in the
    /// subspace `scored` (usually the full space) on the raw features,
    /// greedily growing the minimal predictive signature.
    #[must_use]
    pub fn fit(&self, scorer: &SubspaceScorer<'_>, scored: &Subspace) -> SurrogateModel {
        let ds = scorer.dataset();
        let y = scorer.scores(scored);
        let d = ds.n_features();

        let mut selected: Vec<usize> = Vec::new();
        let mut r2_path: Vec<f64> = Vec::new();
        let mut best_r2 = 0.0f64;

        while selected.len() < self.max_features.min(d) {
            let mut best: Option<(usize, f64)> = None;
            for f in 0..d {
                if selected.contains(&f) {
                    continue;
                }
                let r2 = self.fit_r2(ds, &selected, f, &y);
                if best.is_none_or(|(_, b)| r2 > b) {
                    best = Some((f, r2));
                }
            }
            let Some((f, r2)) = best else { break };
            if r2 - best_r2 < self.min_gain && !selected.is_empty() {
                break;
            }
            selected.push(f);
            r2_path.push(r2);
            best_r2 = r2;
            if best_r2 >= self.r2_target {
                break;
            }
        }
        SurrogateModel {
            signature: selected,
            r2_path,
            r_squared: best_r2,
        }
    }

    /// R² of the OLS fit on `selected ∪ {candidate}` with pairwise
    /// interaction terms between the candidate and the selected set.
    fn fit_r2(
        &self,
        ds: &anomex_dataset::Dataset,
        selected: &[usize],
        candidate: usize,
        y: &[f64],
    ) -> f64 {
        let n = ds.n_rows();
        let mut cols: Vec<Vec<f64>> = Vec::new();
        for &f in selected.iter().chain(std::iter::once(&candidate)) {
            cols.push(ds.column(f).to_vec());
        }
        // Interaction terms (candidate × each selected feature): the
        // joint deviation carrier.
        for &f in selected {
            let inter: Vec<f64> = (0..n)
                .map(|i| ds.value(i, f) * ds.value(i, candidate))
                .collect();
            cols.push(inter);
        }
        let col_refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        match least_squares(&col_refs, y) {
            Ok(fit) => fit.r_squared,
            Err(_) => f64::NEG_INFINITY,
        }
    }
}

impl SummaryExplainer for Surrogate {
    fn summarize(
        &self,
        scorer: &SubspaceScorer<'_>,
        points: &[usize],
        target_dim: usize,
    ) -> RankedSubspaces {
        assert!(
            !points.is_empty(),
            "surrogate needs at least one point of interest"
        );
        let d = scorer.n_features();
        assert!(
            (1..=d).contains(&target_dim),
            "target dimensionality {target_dim} out of range 1..={d}"
        );
        // Fit against the full-space score vector, then report the
        // signature prefix of the requested size (plus the nested
        // prefixes, ranked by their R² — a natural ranked output).
        let model = self
            .max_features(target_dim)
            .fit(scorer, &Subspace::full(d));
        let mut out = Vec::new();
        for k in (1..=model.signature.len()).rev() {
            out.push((
                Subspace::new(model.signature[..k].to_vec()),
                model.r2_path[k - 1],
            ));
        }
        RankedSubspaces::from_ordered(out)
    }

    fn name(&self) -> &'static str {
        "Surrogate"
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;
    use anomex_detectors::Lof;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 6 features; outlyingness (LOF in full space) is driven by the
    /// {1, 4} tube: points off the tube are the outliers.
    fn planted() -> (Dataset, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 250;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n + 5);
        for _ in 0..n {
            let t: f64 = rng.gen_range(0.1..0.9);
            let mut r: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..1.0)).collect();
            r[1] = t + rng.gen_range(-0.02..0.02);
            r[4] = t + rng.gen_range(-0.02..0.02);
            rows.push(r);
        }
        let mut outliers = Vec::new();
        for i in 0..5 {
            outliers.push(rows.len());
            let mut r: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..1.0)).collect();
            r[1] = 0.2 + i as f64 * 0.05;
            r[4] = 0.8 - i as f64 * 0.05;
            rows.push(r);
        }
        (Dataset::from_rows(rows).unwrap(), outliers)
    }

    #[test]
    fn signature_finds_score_driving_features() {
        let (ds, _) = planted();
        let lof = Lof::new(15).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let model = Surrogate::new()
            .max_features(3)
            .min_gain(0.005)
            .fit(&scorer, &Subspace::new([1usize, 4]));
        // Fitting against the score in the driving subspace must select
        // exactly its features first.
        assert!(model.signature.len() >= 2, "{model:?}");
        assert!(model.signature[..2].contains(&1), "{model:?}");
        assert!(model.signature[..2].contains(&4), "{model:?}");
    }

    #[test]
    fn r2_path_is_monotone() {
        let (ds, _) = planted();
        let lof = Lof::new(15).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let model = Surrogate::new()
            .max_features(4)
            .min_gain(0.0)
            .fit(&scorer, &Subspace::full(6));
        for w in model.r2_path.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{:?}", model.r2_path);
        }
        assert!(model.r_squared <= 1.0 + 1e-9);
    }

    #[test]
    fn summarize_returns_nested_prefixes() {
        let (ds, outliers) = planted();
        let lof = Lof::new(15).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let ranked = Surrogate::new().summarize(&scorer, &outliers, 3);
        assert!(!ranked.is_empty());
        // Dims decrease along the ranking (largest prefix first) and
        // every entry is a prefix of the previous.
        let entries = ranked.entries();
        for w in entries.windows(2) {
            assert!(w[1].0.is_subset_of(&w[0].0));
        }
    }

    #[test]
    fn stops_early_on_min_gain() {
        let (ds, _) = planted();
        let lof = Lof::new(15).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let strict = Surrogate::new()
            .max_features(6)
            .min_gain(0.5)
            .fit(&scorer, &Subspace::full(6));
        // A 50 % gain requirement cannot be met repeatedly.
        assert!(strict.signature.len() <= 2, "{strict:?}");
    }
}
