//! A small, fast, non-cryptographic hasher (the rustc "Fx" multiply-xor
//! scheme) for the subspace score cache.
//!
//! Subspace search hashes millions of small `Vec<u16>` keys; SipHash's
//! HashDoS protection is wasted effort there (keys are internally
//! generated, never attacker-controlled), so we use the same algorithm
//! rustc itself uses for its interning tables.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Streaming Fx hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))); // anomex: allow(panic-path) chunks_exact(8) guarantees the width
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
}

/// `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Subspace;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let b: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        b.hash_one(v)
    }

    #[test]
    fn deterministic() {
        let s = Subspace::new([1usize, 4, 9]);
        assert_eq!(hash_of(&s), hash_of(&s));
        assert_eq!(hash_of(&s), hash_of(&Subspace::new([9usize, 4, 1])));
    }

    #[test]
    fn distinguishes_subspaces() {
        let mut seen = FxHashSet::default();
        // 1000 distinct subspaces must produce 1000 distinct map entries.
        for a in 0..10usize {
            for b in 10..20usize {
                for c in 20..30usize {
                    seen.insert(Subspace::new([a, b, c]));
                }
            }
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Subspace, usize> = FxHashMap::default();
        for i in 0..100usize {
            m.insert(Subspace::new([i, i + 1]), i);
        }
        for i in 0..100usize {
            assert_eq!(m[&Subspace::new([i, i + 1])], i);
        }
    }

    #[test]
    fn spread_over_buckets() {
        // Crude avalanche check: low bits of hashes of consecutive keys
        // should not collide en masse.
        let mut low_bits = FxHashSet::default();
        for i in 0..256u64 {
            low_bits.insert(hash_of(&i) & 0xFF);
        }
        assert!(
            low_bits.len() > 128,
            "only {} distinct low bytes",
            low_bits.len()
        );
    }
}
