//! RefOut — adaptive subspace refinement via random projections (Keller,
//! Müller, Wixler, Böhm — *Flexible and adaptive subspace search for
//! outlier analysis*, CIKM 2013; paper §2.2).
//!
//! RefOut draws a **pool** of random subspace projections (dimensionality
//! a fixed fraction of the dataset's), scores the to-be-explained point
//! in every pool member, and then asks, stage by stage: *which feature
//! (set) makes the point's score distribution differ most between pool
//! members that contain it and those that don't?* The discrepancy is
//! Welch's t statistic over the two score populations. The best
//! candidates of each stage are extended feature-by-feature until the
//! requested dimensionality; finally the surviving candidates are scored
//! *directly* with the detector and ranked.

use crate::explainer::{PointExplainer, RankedSubspaces};
use crate::fxhash::FxHashSet;
use crate::scoring::SubspaceScorer;
use anomex_dataset::Subspace;
use anomex_stats::tests::TwoSampleTest;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The RefOut point explainer. Defaults to the paper's §3.1 settings:
/// `pool_size = 100`, `beam_width = 100`, pool dimensionality 70 % of the
/// dataset's, Welch's t-test as the discrepancy measure, top-100 results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefOut {
    pool_size: usize,
    beam_width: usize,
    result_size: usize,
    pool_dim_fraction: f64,
    seed: u64,
}

impl Default for RefOut {
    fn default() -> Self {
        RefOut {
            pool_size: 100,
            beam_width: 100,
            result_size: 100,
            pool_dim_fraction: 0.7,
            seed: 0,
        }
    }
}

impl RefOut {
    /// Paper-default RefOut.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of random projections in the pool.
    ///
    /// # Panics
    /// Panics when `n < 4` (the Welch test needs both partitions
    /// populated).
    #[must_use]
    pub fn pool_size(mut self, n: usize) -> Self {
        assert!(n >= 4, "pool size must be at least 4");
        self.pool_size = n;
        self
    }

    /// Sets the number of candidates carried between stages.
    ///
    /// # Panics
    /// Panics when `w == 0`.
    #[must_use]
    pub fn beam_width(mut self, w: usize) -> Self {
        assert!(w > 0, "beam width must be positive");
        self.beam_width = w;
        self
    }

    /// Sets the number of subspaces returned.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn result_size(mut self, n: usize) -> Self {
        assert!(n > 0, "result size must be positive");
        self.result_size = n;
        self
    }

    /// Sets the pool projection dimensionality as a fraction of the
    /// dataset dimensionality (paper: 0.7).
    ///
    /// # Panics
    /// Panics unless `0 < frac <= 1`.
    #[must_use]
    pub fn pool_dim_fraction(mut self, frac: f64) -> Self {
        assert!(frac > 0.0 && frac <= 1.0, "fraction must lie in (0, 1]");
        self.pool_dim_fraction = frac;
        self
    }

    /// Seeds the random pool construction (deterministic given the seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Draws the random projection pool for a `d`-feature dataset. The
    /// pool dimensionality is clamped so it can contain `target_dim`
    /// features and still leave the partition informative.
    fn draw_pool(&self, d: usize, target_dim: usize, rng: &mut StdRng) -> Vec<Subspace> {
        let raw = (self.pool_dim_fraction * d as f64).ceil() as usize;
        // At least `target_dim` (a pool member must be able to contain a
        // candidate) and ideally below `d` (a full-space member is
        // uninformative); when `target_dim = d` the pool degenerates to
        // the full space and the discrepancy test neutralizes itself.
        let lo = target_dim.max(1).min(d);
        let hi = d.saturating_sub(1).max(lo);
        let pool_dim = raw.clamp(lo, hi);
        let mut features: Vec<usize> = (0..d).collect();
        let mut pool = Vec::with_capacity(self.pool_size);
        for _ in 0..self.pool_size {
            features.shuffle(rng);
            pool.push(Subspace::new(features[..pool_dim].to_vec()));
        }
        pool
    }
}

impl PointExplainer for RefOut {
    fn explain(
        &self,
        scorer: &SubspaceScorer<'_>,
        point: usize,
        target_dim: usize,
    ) -> RankedSubspaces {
        let d = scorer.n_features();
        assert!(point < scorer.n_rows(), "point {point} out of range");
        assert!(
            (1..=d).contains(&target_dim),
            "target dimensionality {target_dim} out of range 1..={d}"
        );

        let mut rng = StdRng::seed_from_u64(self.seed ^ (point as u64).wrapping_mul(0x9E37));
        let pool = self.draw_pool(d, target_dim, &mut rng);
        // Score the point in every pool projection (parallel, z-scored).
        let pool_scores: Vec<f64> = scorer
            .point_scores_batch(&pool, &[point])
            .into_iter()
            .map(|v| v[0])
            .collect();

        // Stage 1: assess every single feature by the discrepancy of the
        // score populations of pool members containing vs not containing it.
        let mut stage: Vec<(Subspace, f64)> = (0..d)
            .map(|f| {
                let s = Subspace::single(f);
                let disc = discrepancy(&pool, &pool_scores, &s);
                (s, disc)
            })
            .collect();
        truncate_ranked(&mut stage, self.beam_width);

        // Later stages: Cartesian-extend the best candidates with single
        // features and re-assess the (now subset-based) partitions.
        let mut dim = 1;
        while dim < target_dim {
            dim += 1;
            let mut seen = FxHashSet::default();
            let mut next: Vec<(Subspace, f64)> = Vec::new();
            for (s, _) in &stage {
                for f in 0..d {
                    let Some(ext) = s.extended_with(f) else {
                        continue;
                    };
                    if !seen.insert(ext.clone()) {
                        continue;
                    }
                    let disc = discrepancy(&pool, &pool_scores, &ext);
                    next.push((ext, disc));
                }
            }
            stage = next;
            truncate_ranked(&mut stage, self.beam_width);
        }

        // Refinement: score the point directly in the surviving candidates
        // and rank by the detector's standardized score.
        stage.truncate(self.result_size);
        let cands: Vec<Subspace> = stage.into_iter().map(|(s, _)| s).collect();
        let refined = scorer.point_scores_batch(&cands, &[point]);
        RankedSubspaces::from_scored(
            cands
                .into_iter()
                .zip(refined)
                .map(|(s, v)| (s, v[0]))
                .collect(),
        )
        .truncated(self.result_size)
    }

    fn name(&self) -> &'static str {
        "RefOut"
    }
}

/// Welch-t discrepancy between the point's scores in pool members that
/// contain `candidate` as a subset and those that do not. Degenerate
/// partitions (one side smaller than 2) yield 0 — "no evidence".
fn discrepancy(pool: &[Subspace], pool_scores: &[f64], candidate: &Subspace) -> f64 {
    let mut with: Vec<f64> = Vec::new();
    let mut without: Vec<f64> = Vec::new();
    for (member, &score) in pool.iter().zip(pool_scores) {
        if member.is_superset_of(candidate) {
            with.push(score);
        } else {
            without.push(score);
        }
    }
    if with.len() < 2 || without.len() < 2 {
        return 0.0;
    }
    let (stat, _p) = TwoSampleTest::Welch.run(&with, &without);
    // One-sided intent: features matter when they *raise* the score.
    let mean_with = with.iter().sum::<f64>() / with.len() as f64;
    let mean_without = without.iter().sum::<f64>() / without.len() as f64;
    if mean_with >= mean_without {
        stat
    } else {
        0.0
    }
}

/// Keeps the `k` best pairs, sorted descending (deterministic ties).
fn truncate_ranked(v: &mut Vec<(Subspace, f64)>, k: usize) {
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(k);
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;
    use anomex_detectors::Lof;
    use rand::Rng;

    /// 8-feature dataset; the last point deviates only in {2, 5} jointly.
    fn planted() -> (Dataset, usize, Subspace) {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 250;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        for _ in 0..n {
            let t: f64 = rng.gen_range(0.1..0.9);
            let mut r = vec![0.0; 8];
            for (f, slot) in r.iter_mut().enumerate() {
                *slot = match f {
                    2 | 5 => t + rng.gen_range(-0.02..0.02),
                    _ => rng.gen_range(0.0..1.0),
                };
            }
            rows.push(r);
        }
        let mut out = vec![0.0; 8];
        for (f, slot) in out.iter_mut().enumerate() {
            *slot = match f {
                2 => 0.25,
                5 => 0.75,
                _ => rng.gen_range(0.0..1.0),
            };
        }
        rows.push(out);
        (
            Dataset::from_rows(rows).unwrap(),
            n,
            Subspace::new([2usize, 5]),
        )
    }

    #[test]
    fn finds_planted_2d_subspace() {
        let (ds, point, truth) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let ranked = RefOut::new()
            .pool_size(80)
            .seed(3)
            .explain(&scorer, point, 2);
        let rank = ranked.rank_of(&truth);
        assert!(
            matches!(rank, Some(r) if r < 5),
            "planted subspace ranked {rank:?}; top: {:?}",
            &ranked.entries()[..ranked.len().min(3)]
        );
    }

    #[test]
    fn output_has_requested_dim() {
        let (ds, point, _) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let ranked = RefOut::new().pool_size(40).explain(&scorer, point, 3);
        assert!(ranked.entries().iter().all(|(s, _)| s.dim() == 3));
        assert!(!ranked.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (ds, point, _) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let a = RefOut::new()
            .seed(11)
            .pool_size(30)
            .explain(&scorer, point, 2);
        let b = RefOut::new()
            .seed(11)
            .pool_size(30)
            .explain(&scorer, point, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn pool_dim_clamped_for_high_targets() {
        let (ds, point, _) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        // target dim 7 of 8 features: pool dim must be ≥ 7 (clamped).
        let ranked = RefOut::new().pool_size(20).explain(&scorer, point, 7);
        assert!(ranked.entries().iter().all(|(s, _)| s.dim() == 7));
    }

    #[test]
    fn discrepancy_neutral_on_degenerate_partition() {
        let pool = vec![Subspace::new([0usize, 1]), Subspace::new([0usize, 2])];
        let scores = vec![1.0, 2.0];
        // Feature 0 is in every member → empty "without" partition.
        assert_eq!(discrepancy(&pool, &scores, &Subspace::single(0)), 0.0);
    }

    #[test]
    fn discrepancy_detects_separated_populations() {
        // Members containing feature 3 score high, others low.
        let pool: Vec<Subspace> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    Subspace::new([3usize, i % 5 + 4])
                } else {
                    Subspace::new([1usize, i % 5 + 4])
                }
            })
            .collect();
        let scores: Vec<f64> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    5.0 + (i as f64) * 0.01
                } else {
                    0.0 + (i as f64) * 0.01
                }
            })
            .collect();
        let d3 = discrepancy(&pool, &scores, &Subspace::single(3));
        let d1 = discrepancy(&pool, &scores, &Subspace::single(1));
        assert!(d3 > 5.0, "d3 = {d3}");
        assert_eq!(d1, 0.0, "feature 1 lowers the score → clamped to 0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_point() {
        let (ds, _, _) = planted();
        let lof = Lof::new(10).unwrap();
        let scorer = SubspaceScorer::new(&ds, &lof);
        let _ = RefOut::new().explain(&scorer, 10_000, 2);
    }
}
