//! Dataset profiling: the characteristics the spec-layer recommender
//! reads (`anomex_spec::recommend`).
//!
//! Deterministic by construction: rows are sampled on a fixed stride
//! (no RNG), neighbor distances are exact brute-force Euclidean over
//! the full dataset, and every aggregate comes from `anomex-stats`
//! descriptive statistics — so the same dataset always profiles to the
//! same [`DatasetProfile`], byte for byte once serialized.

use anomex_dataset::Dataset;
use anomex_spec::DatasetProfile;
use anomex_stats::descriptive;

/// At most this many rows are profiled (stride-sampled, no RNG).
const MAX_SAMPLE: usize = 256;

/// Neighborhood size for the k-NN distance statistic (clamped to
/// `n_rows - 1` on tiny datasets).
const NEIGHBORS: usize = 10;

/// Profiles a dataset: dimensionality, local-density dispersion
/// (coefficient of variation of sampled average k-NN distances), and a
/// contamination estimate (fraction of sampled rows whose k-NN
/// distance lies above the Tukey upper fence of the sample).
#[must_use]
pub fn profile_dataset(dataset: &Dataset) -> DatasetProfile {
    let n = dataset.n_rows();
    let d = dataset.n_features();
    if n < 3 || d == 0 {
        return DatasetProfile {
            n_rows: n,
            n_features: d,
            density_cv: 0.0,
            contamination: 0.0,
        };
    }

    let stride = n.div_ceil(MAX_SAMPLE).max(1);
    let k = NEIGHBORS.min(n - 1);
    let mut squared = vec![0.0f64; n];
    let mut knn = Vec::with_capacity(n.div_ceil(stride));
    for i in (0..n).step_by(stride) {
        squared.iter_mut().for_each(|v| *v = 0.0);
        for f in 0..d {
            let column = dataset.column(f);
            let center = column[i];
            for (acc, &value) in squared.iter_mut().zip(column.iter()) {
                let diff = value - center;
                *acc += diff * diff;
            }
        }
        squared[i] = f64::INFINITY; // exclude the point itself
        let mut sorted = squared.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let avg = sorted.iter().take(k).map(|v| v.sqrt()).sum::<f64>() / k as f64;
        knn.push(avg);
    }

    let mean = descriptive::mean(&knn);
    let std = descriptive::sample_variance(&knn).sqrt();
    let density_cv = if mean > 0.0 { std / mean } else { 0.0 };
    let q1 = descriptive::quantile(&knn, 0.25).unwrap_or(mean);
    let q3 = descriptive::quantile(&knn, 0.75).unwrap_or(mean);
    let fence = q3 + 1.5 * (q3 - q1);
    let outliers = knn.iter().filter(|&&v| v > fence).count();
    DatasetProfile {
        n_rows: n,
        n_features: d,
        density_cv,
        contamination: outliers as f64 / knn.len() as f64,
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn profile_reports_shape_and_is_deterministic() {
        let ds = uniform(300, 6, 1);
        let a = profile_dataset(&ds);
        let b = profile_dataset(&ds);
        assert_eq!(a, b);
        assert_eq!(a.n_rows, 300);
        assert_eq!(a.n_features, 6);
        assert!(a.density_cv > 0.0);
        assert!((0.0..=1.0).contains(&a.contamination));
    }

    #[test]
    fn planted_outliers_raise_the_contamination_estimate() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut rows: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        for _ in 0..10 {
            rows.push((0..4).map(|_| rng.gen_range(8.0..9.0)).collect());
        }
        let clean = profile_dataset(&uniform(200, 4, 3));
        let planted = profile_dataset(&Dataset::from_rows(rows).unwrap());
        assert!(planted.contamination > clean.contamination);
        assert!(planted.density_cv > clean.density_cv);
    }

    #[test]
    fn degenerate_datasets_profile_to_zero() {
        let ds = Dataset::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        let p = profile_dataset(&ds);
        assert_eq!(p.n_rows, 1);
        assert_eq!(p.density_cv, 0.0);
        assert_eq!(p.contamination, 0.0);
    }

    #[test]
    fn identical_rows_have_zero_density_dispersion() {
        let ds = Dataset::from_rows(vec![vec![1.0, 1.0]; 20]).unwrap();
        let p = profile_dataset(&ds);
        assert_eq!(p.density_cv, 0.0);
        assert_eq!(p.contamination, 0.0);
    }
}
