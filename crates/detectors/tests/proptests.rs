//! Property-based tests for the detectors.

use anomex_dataset::Dataset;
use anomex_detectors::kdtree::KdTree;
use anomex_detectors::knn::{knn_table, knn_table_with, KnnBackend};
use anomex_detectors::{Detector, FastAbod, IsolationForest, KnnDist, Loda, Lof};
use proptest::prelude::*;

/// Strategy: a random dataset with at least 20 rows and 2–5 features.
fn dataset() -> impl Strategy<Value = Dataset> {
    (20usize..80, 2usize..6).prop_flat_map(|(r, c)| {
        prop::collection::vec(prop::collection::vec(-100.0f64..100.0, c..=c), r..=r)
            .prop_map(|rows| Dataset::from_rows(rows).expect("well-formed"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every detector returns one finite score per row.
    #[test]
    fn all_detectors_return_finite_scores(ds in dataset()) {
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(Lof::new(5).unwrap()),
            Box::new(FastAbod::new(4).unwrap()),
            Box::new(IsolationForest::builder().trees(10).repetitions(1).build().unwrap()),
            Box::new(KnnDist::new(5).unwrap()),
            Box::new(Loda::builder().projections(10).build().unwrap()),
        ];
        let m = ds.full_matrix();
        for det in &detectors {
            let scores = det.score_all(&m);
            prop_assert_eq!(scores.len(), ds.n_rows(), "{}", det.name());
            prop_assert!(scores.iter().all(|s| s.is_finite()), "{}", det.name());
        }
    }

    /// iForest scores stay in (0, 1].
    #[test]
    fn iforest_score_range(ds in dataset()) {
        let det = IsolationForest::builder().trees(15).repetitions(1).build().unwrap();
        for s in det.score_all(&ds.full_matrix()) {
            prop_assert!(s > 0.0 && s <= 1.0, "score {s}");
        }
    }

    /// LOF is invariant under affine feature transforms (translate+scale).
    #[test]
    fn lof_affine_invariance(ds in dataset(), scale in 0.1f64..10.0, shift in -50.0f64..50.0) {
        let base = Lof::new(5).unwrap().score_all(&ds.full_matrix());
        let transformed = Dataset::from_rows(
            (0..ds.n_rows())
                .map(|i| ds.row(i).iter().map(|v| v * scale + shift).collect())
                .collect(),
        ).unwrap();
        let scaled = Lof::new(5).unwrap().score_all(&transformed.full_matrix());
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a - b).abs() < 1e-6 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// kNN-distance scores scale linearly with the data.
    #[test]
    fn knndist_scales_linearly(ds in dataset(), scale in 0.1f64..10.0) {
        let base = KnnDist::new(5).unwrap().score_all(&ds.full_matrix());
        let transformed = Dataset::from_rows(
            (0..ds.n_rows())
                .map(|i| ds.row(i).iter().map(|v| v * scale).collect())
                .collect(),
        ).unwrap();
        let scaled = KnnDist::new(5).unwrap().score_all(&transformed.full_matrix());
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a * scale - b).abs() < 1e-6 * b.abs().max(1.0));
        }
    }

    /// kNN tables: neighbour lists exclude self, are sorted, and both
    /// backends agree on distances.
    #[test]
    fn knn_table_invariants(ds in dataset(), k in 1usize..10) {
        let m = ds.full_matrix();
        let t = knn_table(&m, k);
        for (i, (nbrs, dists)) in t.neighbors.iter().zip(&t.distances).enumerate() {
            prop_assert!(!nbrs.contains(&i));
            prop_assert_eq!(nbrs.len(), k.min(ds.n_rows() - 1));
            for w in dists.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
        let kd = knn_table_with(&m, k, KnnBackend::KdTree);
        for i in 0..ds.n_rows() {
            for (a, b) in t.distances[i].iter().zip(&kd.distances[i]) {
                prop_assert!((a - b).abs() < 1e-9, "row {i}: {a} vs {b}");
            }
        }
    }

    /// The k-d tree finds exactly the smallest distances.
    #[test]
    fn kdtree_exactness(ds in dataset(), k in 1usize..8) {
        let m = ds.full_matrix();
        let tree = KdTree::build(&m);
        let q = 0usize;
        let got: Vec<f64> = tree.knn(m.row(q), k, Some(q)).into_iter().map(|(_, d)| d).collect();
        let mut want: Vec<f64> = (1..m.n_rows()).map(|j| m.sq_dist(q, j)).collect();
        want.sort_by(f64::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9);
        }
    }
}
