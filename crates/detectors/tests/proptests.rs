//! Property-based tests for the detectors and their distance kernels.

use anomex_dataset::{Dataset, IncrementalDistances, Subspace};
use anomex_detectors::kdtree::KdTree;
use anomex_detectors::kernels::{
    knn_table_blocked, knn_table_blocked_f32, knn_table_from_sq_dists, knn_table_naive,
    GatheredMatrix,
};
use anomex_detectors::knn::{knn_table, knn_table_with, NeighborBackend};
use anomex_detectors::simd::GatheredMatrixF32;
use anomex_detectors::{Detector, FastAbod, IsolationForest, KnnDist, Loda, Lof};
use anomex_stats::descriptive::OnlineMoments;
use proptest::prelude::*;

/// Strategy: a random dataset with at least 20 rows and 2–5 features.
fn dataset() -> impl Strategy<Value = Dataset> {
    (20usize..80, 2usize..6).prop_flat_map(|(r, c)| {
        prop::collection::vec(prop::collection::vec(-100.0f64..100.0, c..=c), r..=r)
            .prop_map(|rows| Dataset::from_rows(rows).expect("well-formed"))
    })
}

/// Strategy: a dataset whose values live on a coarse grid, so duplicate
/// rows and exact distance ties are common — the adversarial input for
/// tie-breaking and the norm-trick kernel's exact-zero guarantee.
fn gridded_dataset() -> impl Strategy<Value = Dataset> {
    (20usize..60, 1usize..4).prop_flat_map(|(r, c)| {
        prop::collection::vec(prop::collection::vec(-3i8..=3, c..=c), r..=r).prop_map(|rows| {
            Dataset::from_rows(
                rows.into_iter()
                    .map(|row| row.into_iter().map(|v| f64::from(v) * 0.5).collect())
                    .collect::<Vec<Vec<f64>>>(),
            )
            .expect("well-formed")
        })
    })
}

/// Asserts the distance columns of two kNN tables agree to a relative
/// 1e-9 (the norm trick reassociates arithmetic, so bitwise equality is
/// not expected between the blocked and naive builders).
fn assert_distances_close(
    a: &anomex_detectors::knn::KnnTable,
    b: &anomex_detectors::knn::KnnTable,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.k(), b.k());
    prop_assert_eq!(a.n_rows(), b.n_rows());
    for i in 0..a.n_rows() {
        for (x, y) in a.distances(i).iter().zip(b.distances(i)) {
            prop_assert!(
                (x - y).abs() < 1e-9 * x.abs().max(1.0),
                "row {}: {} vs {}",
                i,
                x,
                y
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every detector returns one finite score per row.
    #[test]
    fn all_detectors_return_finite_scores(ds in dataset()) {
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(Lof::new(5).unwrap()),
            Box::new(FastAbod::new(4).unwrap()),
            Box::new(IsolationForest::builder().trees(10).repetitions(1).build().unwrap()),
            Box::new(KnnDist::new(5).unwrap()),
            Box::new(Loda::builder().projections(10).build().unwrap()),
        ];
        let m = ds.full_matrix();
        for det in &detectors {
            let scores = det.score_all(&m);
            prop_assert_eq!(scores.len(), ds.n_rows(), "{}", det.name());
            prop_assert!(scores.iter().all(|s| s.is_finite()), "{}", det.name());
        }
    }

    /// iForest scores stay in (0, 1].
    #[test]
    fn iforest_score_range(ds in dataset()) {
        let det = IsolationForest::builder().trees(15).repetitions(1).build().unwrap();
        for s in det.score_all(&ds.full_matrix()) {
            prop_assert!(s > 0.0 && s <= 1.0, "score {s}");
        }
    }

    /// LOF is invariant under affine feature transforms (translate+scale).
    #[test]
    fn lof_affine_invariance(ds in dataset(), scale in 0.1f64..10.0, shift in -50.0f64..50.0) {
        let base = Lof::new(5).unwrap().score_all(&ds.full_matrix());
        let transformed = Dataset::from_rows(
            (0..ds.n_rows())
                .map(|i| ds.row(i).iter().map(|v| v * scale + shift).collect())
                .collect(),
        ).unwrap();
        let scaled = Lof::new(5).unwrap().score_all(&transformed.full_matrix());
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a - b).abs() < 1e-6 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// kNN-distance scores scale linearly with the data.
    #[test]
    fn knndist_scales_linearly(ds in dataset(), scale in 0.1f64..10.0) {
        let base = KnnDist::new(5).unwrap().score_all(&ds.full_matrix());
        let transformed = Dataset::from_rows(
            (0..ds.n_rows())
                .map(|i| ds.row(i).iter().map(|v| v * scale).collect())
                .collect(),
        ).unwrap();
        let scaled = KnnDist::new(5).unwrap().score_all(&transformed.full_matrix());
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a * scale - b).abs() < 1e-6 * b.abs().max(1.0));
        }
    }

    /// kNN tables: neighbour lists exclude self, are sorted, and both
    /// backends agree on distances.
    #[test]
    fn knn_table_invariants(ds in dataset(), k in 1usize..10) {
        let m = ds.full_matrix();
        let t = knn_table(&m, k);
        for i in 0..t.n_rows() {
            prop_assert!(!t.neighbors(i).contains(&i));
            prop_assert_eq!(t.neighbors(i).len(), k.min(ds.n_rows() - 1));
            for w in t.distances(i).windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
        let kd = knn_table_with(&m, k, NeighborBackend::KdTree);
        for i in 0..ds.n_rows() {
            for (a, b) in t.distances(i).iter().zip(kd.distances(i)) {
                prop_assert!((a - b).abs() < 1e-9, "row {i}: {a} vs {b}");
            }
        }
    }

    /// The blocked norm-trick kernel and the naive row-by-row scan agree
    /// on every neighbour distance for continuous data.
    #[test]
    fn blocked_knn_matches_naive(ds in dataset(), k in 1usize..10) {
        let m = ds.full_matrix();
        assert_distances_close(&knn_table_blocked(&m, k), &knn_table_naive(&m, k))?;
    }

    /// …and for gridded data full of duplicate rows and exact ties —
    /// including 1-d projections, where cancellation in the norm trick is
    /// at its worst. Duplicate rows must come out at exactly 0.
    #[test]
    fn blocked_knn_matches_naive_on_ties(ds in gridded_dataset(), k in 1usize..6) {
        let m = ds.full_matrix();
        let blocked = knn_table_blocked(&m, k);
        assert_distances_close(&blocked, &knn_table_naive(&m, k))?;
        // Every zero distance in the naive table is exactly zero in the
        // blocked one (identical rows cancel bitwise in the norm trick).
        let naive = knn_table_naive(&m, k);
        for i in 0..m.n_rows() {
            for (x, y) in blocked.distances(i).iter().zip(naive.distances(i)) {
                if *y == 0.0 {
                    prop_assert_eq!(*x, 0.0, "row {}", i);
                }
            }
        }
        // 1-d projections of the same dataset.
        let p = ds.project(&Subspace::single(0));
        assert_distances_close(&knn_table_blocked(&p, k), &knn_table_naive(&p, k))?;
    }

    /// The incremental distance-matrix path yields the *bit-identical*
    /// kNN table to the naive scan, warm or cold: both fold per-feature
    /// contributions in ascending feature order.
    #[test]
    fn incremental_knn_is_bit_identical_to_naive(ds in dataset(), k in 1usize..8) {
        let inc = IncrementalDistances::new(8);
        let d = ds.n_features();
        // A stage-wise chain {0}, {0,1}, …, {0,…,d−1}: every step after
        // the first is served incrementally from its parent.
        for dim in 1..=d {
            let s = Subspace::new(0..dim);
            let dists = inc.sq_dists(&ds, &s);
            let from_matrix = knn_table_from_sq_dists(&dists, k);
            let naive = knn_table_naive(&ds.project(&s), k);
            prop_assert_eq!(from_matrix, naive, "dim {}", dim);
        }
        prop_assert_eq!(inc.stats().incremental_builds, d - 1);
    }

    /// Parallel per-row scoring is deterministic: repeated runs of the
    /// fanned-out detectors are bit-identical regardless of the thread
    /// schedule, and ABOD matches a serial from-first-principles
    /// reference.
    #[test]
    fn parallel_scoring_is_deterministic(ds in dataset()) {
        let m = ds.full_matrix();

        let abod = FastAbod::new(4).unwrap();
        let first = abod.score_all(&m);
        prop_assert_eq!(&first, &abod.score_all(&m));
        // Serial reference: the textbook Fast ABOD loop, no scratch
        // reuse, no parallelism.
        let knn = knn_table_with(&m, 4, NeighborBackend::Exact);
        for (p, score) in first.iter().enumerate() {
            let rp = m.row(p);
            let diffs: Vec<Vec<f64>> = knn.neighbors(p).iter()
                .map(|&o| m.row(o).iter().zip(rp).map(|(a, b)| a - b).collect())
                .collect();
            let norms: Vec<f64> = diffs.iter()
                .map(|v| v.iter().map(|x| x * x).sum())
                .collect();
            let mut moments = OnlineMoments::new();
            for i in 0..diffs.len() {
                if norms[i] == 0.0 { continue; }
                for j in i + 1..diffs.len() {
                    if norms[j] == 0.0 { continue; }
                    let inner: f64 = diffs[i].iter().zip(&diffs[j]).map(|(a, b)| a * b).sum();
                    moments.push(inner / (norms[i] * norms[j]));
                }
            }
            let var = if moments.count() < 2 { 1e6 } else { moments.population_variance() };
            let want = -(var.max(1e-300)).ln();
            prop_assert!(
                (score - want).abs() < 1e-9 * want.abs().max(1.0),
                "point {}: {} vs {}", p, score, want
            );
        }

        let forest = IsolationForest::builder().trees(10).repetitions(1).seed(3).build().unwrap();
        prop_assert_eq!(forest.score_all(&m), forest.score_all(&m));

        let blocked = knn_table_blocked(&m, 5);
        prop_assert_eq!(&blocked, &knn_table_blocked(&m, 5));
    }

    /// Lane-remainder coverage for the unrolled f64 kernel: for every
    /// row-count residue mod 4 (dropping 0–3 trailing rows) and every
    /// feature-count residue mod 4 reachable by prefix projection, the
    /// SIMD block kernel is *bit-identical* to the scalar reference.
    #[test]
    fn simd_lane_remainders_are_bitwise_scalar(ds in dataset()) {
        for drop in 0..4usize {
            let rows = ds.n_rows() - drop;
            let sub = Dataset::from_rows(
                (0..rows).map(|i| ds.row(i).to_vec()).collect(),
            ).unwrap();
            for dim in (1..=ds.n_features()).rev().take(4) {
                let m = sub.project(&Subspace::new(0..dim));
                let g = GatheredMatrix::new(&m);
                let mut fast = vec![0.0; 8 * rows];
                let mut reference = vec![0.0; 8 * rows];
                let mut i0 = 0;
                while i0 < rows {
                    let i1 = (i0 + 8).min(rows);
                    g.sq_dists_block_into(i0, i1, &mut fast);
                    g.sq_dists_block_scalar_into(i0, i1, &mut reference);
                    let len = (i1 - i0) * rows;
                    for (jj, (a, b)) in fast[..len].iter().zip(&reference[..len]).enumerate() {
                        prop_assert_eq!(
                            a.to_bits(), b.to_bits(),
                            "rows={} dim={} block {}..{} slot {}", rows, dim, i0, i1, jj
                        );
                    }
                    i0 = i1;
                }
            }
        }
    }

    /// Lane-remainder coverage for the f32 storage kernel: distances
    /// stay within a magnitude-relative single-precision bound of the
    /// f64 scalar reference for every row/dim residue mod 4. (The error
    /// budget is the one f32 rounding per gathered element, amplified
    /// by norm-trick cancellation — hence the bound scales with the
    /// operand norms, not the distance itself.)
    #[test]
    fn f32_lane_remainders_track_f64_within_ulp_budget(ds in dataset()) {
        for drop in 0..4usize {
            let rows = ds.n_rows() - drop;
            let sub = Dataset::from_rows(
                (0..rows).map(|i| ds.row(i).to_vec()).collect(),
            ).unwrap();
            for dim in (1..=ds.n_features()).rev().take(4) {
                let m = sub.project(&Subspace::new(0..dim));
                let g64 = GatheredMatrix::new(&m);
                let g32 = GatheredMatrixF32::new(&m);
                let mut wide = vec![0.0; 8 * rows];
                let mut narrow = vec![0.0; 8 * rows];
                let mut i0 = 0;
                while i0 < rows {
                    let i1 = (i0 + 8).min(rows);
                    g64.sq_dists_block_into(i0, i1, &mut wide);
                    g32.sq_dists_block_into(i0, i1, &mut narrow);
                    for bi in 0..(i1 - i0) {
                        let nsq_i = g64.sq_norms()[i0 + bi];
                        for j in 0..rows {
                            let a = wide[bi * rows + j];
                            let b = narrow[bi * rows + j];
                            let scale = nsq_i + g64.sq_norms()[j] + 1.0;
                            prop_assert!(
                                (a - b).abs() <= 1e-5 * scale,
                                "rows={} dim={} ({},{}): {} vs {}",
                                rows, dim, i0 + bi, j, a, b
                            );
                        }
                    }
                    i0 = i1;
                }
            }
        }
    }

    /// The f32 path keeps the exact-zero duplicate-row guarantee on
    /// tie-heavy gridded data, at every row-count residue mod 4: any
    /// pair the f64 kernel puts at exactly 0 the f32 kernel must too.
    #[test]
    fn f32_duplicate_rows_stay_exact_zero(ds in gridded_dataset(), k in 1usize..5) {
        for drop in 0..4usize {
            let rows = ds.n_rows() - drop;
            let sub = Dataset::from_rows(
                (0..rows).map(|i| ds.row(i).to_vec()).collect(),
            ).unwrap();
            let m = sub.full_matrix();
            let narrow = knn_table_blocked_f32(&m, k);
            let wide = knn_table_blocked(&m, k);
            for i in 0..rows {
                for (x, y) in wide.distances(i).iter().zip(narrow.distances(i)) {
                    if *x == 0.0 {
                        prop_assert_eq!(*y, 0.0, "row {}", i);
                    }
                }
            }
        }
    }

    /// The k-d tree finds exactly the smallest distances.
    #[test]
    fn kdtree_exactness(ds in dataset(), k in 1usize..8) {
        let m = ds.full_matrix();
        let tree = KdTree::build(&m);
        let q = 0usize;
        let got: Vec<f64> = tree.knn(m.row(q), k, Some(q)).into_iter().map(|(_, d)| d).collect();
        let mut want: Vec<f64> = (1..m.n_rows()).map(|j| m.sq_dist(q, j)).collect();
        want.sort_by(f64::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9);
        }
    }
}
