//! Cross-crate sanity: the detectors must recover the planted outliers of
//! the generated testbeds in exactly the regimes the paper relies on
//! (§3.2: "all outliers in HiCS datasets can be discovered by the three
//! detectors used in our testbed").

use anomex_dataset::gen::fullspace::{generate_fullspace_with_outliers, FullSpacePreset};
use anomex_dataset::gen::hics::{generate_hics, HicsPreset};
use anomex_detectors::{Detector, FastAbod, IsolationForest, Lof};
use anomex_stats::rank::top_k_desc;

/// Fraction of `expected` found within the top `k` scores.
fn recall_at_k(scores: &[f64], expected: &[usize], k: usize) -> f64 {
    let top = top_k_desc(scores, k);
    let hit = expected.iter().filter(|p| top.contains(p)).count();
    hit as f64 / expected.len() as f64
}

#[test]
fn lof_finds_planted_outliers_in_their_blocks() {
    let g = generate_hics(HicsPreset::D14, 42);
    let lof = Lof::new(15).unwrap();
    for block in &g.blocks {
        let outliers: Vec<usize> = g
            .ground_truth
            .outliers()
            .into_iter()
            .filter(|&p| g.ground_truth.relevant_for(p).contains(block))
            .collect();
        let scores = lof.score_all(&g.dataset.project(block));
        let r = recall_at_k(&scores, &outliers, 20);
        assert!(
            r >= 0.8,
            "LOF recall@20 in block {block} = {r} (outliers {outliers:?})"
        );
    }
}

#[test]
fn all_three_detectors_score_blocks_reasonably() {
    let g = generate_hics(HicsPreset::D23, 7);
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(Lof::new(15).unwrap()),
        Box::new(FastAbod::new(10).unwrap()),
        Box::new(
            IsolationForest::builder()
                .trees(100)
                .repetitions(2)
                .seed(1)
                .build()
                .unwrap(),
        ),
    ];
    for det in &detectors {
        let mut total = 0.0;
        let mut n = 0;
        for block in &g.blocks {
            let outliers: Vec<usize> = g
                .ground_truth
                .outliers()
                .into_iter()
                .filter(|&p| g.ground_truth.relevant_for(p).contains(block))
                .collect();
            let scores = det.score_all(&g.dataset.project(block));
            total += recall_at_k(&scores, &outliers, 30);
            n += 1;
        }
        let mean = total / n as f64;
        // LOF separates the density-based planted outliers cleanly;
        // FastABOD and iForest see them less sharply (their marginals are
        // inlier-like) — the very asymmetry the paper's Figure 9 exploits.
        let floor = if det.name() == "LOF" { 0.9 } else { 0.45 };
        assert!(
            mean >= floor,
            "{} mean block recall@30 = {mean} (floor {floor})",
            det.name()
        );
    }
}

#[test]
fn outliers_masked_in_single_features() {
    // The defining property of the HiCS family: planted outliers are NOT
    // separable in 1d projections of their relevant subspace.
    let g = generate_hics(HicsPreset::D14, 42);
    let lof = Lof::new(15).unwrap();
    let block = &g.blocks[3]; // the 5d block
    let outliers: Vec<usize> = g
        .ground_truth
        .outliers()
        .into_iter()
        .filter(|&p| g.ground_truth.relevant_for(p).contains(block))
        .collect();
    let mut total_1d = 0.0;
    for f in block.iter() {
        let scores = lof.score_all(&g.dataset.project(&anomex_dataset::Subspace::single(f)));
        total_1d += recall_at_k(&scores, &outliers, 20);
    }
    let mean_1d = total_1d / block.dim() as f64;
    let full_block = recall_at_k(&lof.score_all(&g.dataset.project(block)), &outliers, 20);
    assert!(
        full_block > mean_1d + 0.3,
        "full-block recall {full_block} must clearly exceed 1d recall {mean_1d}"
    );
}

#[test]
fn fullspace_outliers_visible_to_lof_in_full_space() {
    let (ds, outliers) = generate_fullspace_with_outliers(FullSpacePreset::BreastA, 42);
    let lof = Lof::new(15).unwrap();
    let scores = lof.score_all(&ds.full_matrix());
    let r = recall_at_k(&scores, &outliers, outliers.len() + 5);
    assert!(r >= 0.9, "full-space LOF recall = {r}");
}
