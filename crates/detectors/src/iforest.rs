//! Isolation Forest (Liu, Ting, Zhou — ICDM 2008).
//!
//! Isolation-based detector (paper §2.1): outliers are points that random
//! axis-parallel partitions isolate quickly. A forest of `t` random trees
//! is built on subsamples of size `ψ`; the outlyingness of a point is
//! `s(x, ψ) = 2^(−E[h(x)] / c(ψ))` where `h(x)` is the path length to the
//! leaf containing `x` and `c(n)` the average unsuccessful-search path
//! length of a BST, used both as the depth correction at truncated leaves
//! and as the normalizer. Scores live in `(0, 1)`, outliers close to 1.
//!
//! The paper runs iForest **10 times and averages the scores** to tame
//! the variance of the randomized construction; [`IsolationForest`]
//! exposes this as `repetitions`.

use crate::fit::FittedModel;
use crate::{Detector, DetectorError, Result};
use anomex_dataset::ProjectedMatrix;
use anomex_parallel::par_chunk_flat_map;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Rows per parallel work item of the path-length scoring loop.
const CHUNK_ROWS: usize = 64;

/// Euler–Mascheroni constant (for the harmonic-number approximation).
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Average path length of an unsuccessful BST search over `n` points —
/// `c(n) = 2·H(n−1) − 2(n−1)/n`, with `c(0) = c(1) = 0`.
#[must_use]
pub fn average_path_length(n: usize) -> f64 {
    match n {
        0 | 1 => 0.0,
        2 => 1.0,
        _ => {
            let n = n as f64;
            let h = (n - 1.0).ln() + EULER_GAMMA;
            2.0 * h - 2.0 * (n - 1.0) / n
        }
    }
}

/// Builder for [`IsolationForest`].
#[derive(Debug, Clone, Copy)]
pub struct IsolationForestBuilder {
    trees: usize,
    subsample: usize,
    repetitions: usize,
    seed: u64,
}

impl IsolationForestBuilder {
    /// Number of trees per forest (paper: 100).
    #[must_use]
    pub fn trees(mut self, t: usize) -> Self {
        self.trees = t;
        self
    }

    /// Subsample size per tree (paper: 256; clamped to the data size).
    #[must_use]
    pub fn subsample(mut self, psi: usize) -> Self {
        self.subsample = psi;
        self
    }

    /// Number of independent forests whose scores are averaged
    /// (paper: 10).
    #[must_use]
    pub fn repetitions(mut self, r: usize) -> Self {
        self.repetitions = r;
        self
    }

    /// RNG seed; the detector is deterministic given the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and builds the detector.
    ///
    /// # Errors
    /// [`DetectorError::InvalidParameter`] when any count is zero.
    pub fn build(self) -> Result<IsolationForest> {
        if self.trees == 0 || self.subsample < 2 || self.repetitions == 0 {
            return Err(DetectorError::InvalidParameter {
                detector: "IsolationForest",
                detail: "trees ≥ 1, subsample ≥ 2 and repetitions ≥ 1 required",
            });
        }
        Ok(IsolationForest {
            trees: self.trees,
            subsample: self.subsample,
            repetitions: self.repetitions,
            seed: self.seed,
        })
    }
}

/// The Isolation Forest detector.
///
/// ```
/// use anomex_detectors::iforest::IsolationForest;
/// let forest = IsolationForest::builder().trees(50).seed(7).build().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsolationForest {
    trees: usize,
    subsample: usize,
    repetitions: usize,
    seed: u64,
}

/// One node of an isolation tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    /// Internal split: `feature < threshold` goes left.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Terminal node holding `size` training points at depth `depth`.
    Leaf { size: usize },
}

/// A single isolation tree (arena representation, root at index 0).
#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Path length of `x` through the tree, with the `c(size)` correction
    /// at truncated leaves.
    fn path_length(&self, x: &[f64]) -> f64 {
        let mut node = 0usize;
        let mut depth = 0.0f64;
        loop {
            match &self.nodes[node] {
                Node::Leaf { size } => return depth + average_path_length(*size),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                    depth += 1.0;
                }
            }
        }
    }
}

/// Builds one isolation tree on `sample` (indices into `data`).
fn build_tree(
    data: &ProjectedMatrix,
    sample: &mut [usize],
    height_limit: usize,
    rng: &mut StdRng,
) -> Tree {
    let mut nodes = Vec::new();
    build_node(data, sample, 0, height_limit, rng, &mut nodes);
    Tree { nodes }
}

/// Recursively builds the subtree over `sample`, returning its node index.
fn build_node(
    data: &ProjectedMatrix,
    sample: &mut [usize],
    depth: usize,
    height_limit: usize,
    rng: &mut StdRng,
    nodes: &mut Vec<Node>,
) -> usize {
    if sample.len() <= 1 || depth >= height_limit {
        nodes.push(Node::Leaf { size: sample.len() });
        return nodes.len() - 1;
    }
    // Pick a feature whose values still vary within the node sample.
    let d = data.dim();
    let start = rng.gen_range(0..d);
    let mut chosen: Option<(usize, f64, f64)> = None;
    for off in 0..d {
        let f = (start + off) % d;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &i in sample.iter() {
            let v = data.row(i)[f];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi > lo {
            chosen = Some((f, lo, hi));
            break;
        }
    }
    let Some((feature, lo, hi)) = chosen else {
        // All remaining points identical in every feature: unsplittable.
        nodes.push(Node::Leaf { size: sample.len() });
        return nodes.len() - 1;
    };
    let threshold = rng.gen_range(lo..hi);
    // Partition the sample in place.
    let mut mid = 0usize;
    for i in 0..sample.len() {
        if data.row(sample[i])[feature] < threshold {
            sample.swap(i, mid);
            mid += 1;
        }
    }
    // `threshold` may coincide with `lo` (half-open sampling), in which
    // case one side is empty and becomes a size-0 leaf — harmless, the
    // other side keeps shrinking via the depth limit.
    let placeholder = nodes.len();
    nodes.push(Node::Leaf { size: 0 }); // will be overwritten
    let (left_slice, right_slice) = sample.split_at_mut(mid);
    let left = build_node(data, left_slice, depth + 1, height_limit, rng, nodes);
    let right = build_node(data, right_slice, depth + 1, height_limit, rng, nodes);
    nodes[placeholder] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    placeholder
}

impl IsolationForest {
    /// A builder preconfigured with the paper's settings
    /// (`t = 100`, `ψ = 256`, `repetitions = 10`, seed 0).
    #[must_use]
    pub fn builder() -> IsolationForestBuilder {
        IsolationForestBuilder {
            trees: 100,
            subsample: 256,
            repetitions: 10,
            seed: 0,
        }
    }

    /// Number of trees.
    #[must_use]
    pub fn trees(&self) -> usize {
        self.trees
    }

    /// Averaged-forest repetitions.
    #[must_use]
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// Builds the trees of one repetition — the expensive, RNG-driven
    /// half of [`IsolationForest::score_once`], separated out so the
    /// fit/score lifecycle ([`FittedIsolationForest`]) can freeze it.
    ///
    /// Tree construction stays sequential: the RNG stream defines the
    /// forest, so build order is part of the detector's determinism.
    fn build_rep(&self, data: &ProjectedMatrix, rng: &mut StdRng) -> ForestRep {
        let n = data.n_rows();
        let psi = self.subsample.min(n);
        let height_limit = (psi as f64).log2().ceil() as usize;
        let c_psi = average_path_length(psi);

        let mut pool: Vec<usize> = (0..n).collect();
        let trees: Vec<Tree> = (0..self.trees)
            .map(|_| {
                pool.shuffle(rng);
                build_tree(data, &mut pool[..psi], height_limit, rng)
            })
            .collect();
        ForestRep { trees, c_psi }
    }

    /// Scores one forest construction (one repetition): build the trees,
    /// then evaluate path lengths ([`ForestRep::eval`]).
    fn score_once(&self, data: &ProjectedMatrix, rng: &mut StdRng) -> Vec<f64> {
        self.build_rep(data, rng).eval(data)
    }
}

/// One repetition's trained forest: the trees plus the ψ-derived path
/// normalizer of the construction it came from.
#[derive(Debug, Clone)]
struct ForestRep {
    trees: Vec<Tree>,
    c_psi: f64,
}

impl ForestRep {
    /// Per-row anomaly scores of the trained forest over `data`.
    ///
    /// The evaluation is read-only and fans out across cores. Each row
    /// folds its tree path lengths in the same ascending tree order as
    /// a sequential scan, so scores are bit-identical to a serial
    /// evaluation.
    fn eval(&self, data: &ProjectedMatrix) -> Vec<f64> {
        let n = data.n_rows();
        let n_trees = self.trees.len();
        par_chunk_flat_map(n, CHUNK_ROWS, |start, end| {
            (start..end)
                .map(|i| {
                    let row = data.row(i);
                    let mut sum = 0.0f64;
                    for tree in &self.trees {
                        sum += tree.path_length(row);
                    }
                    let e_h = sum / n_trees as f64;
                    2.0f64.powf(-e_h / self.c_psi)
                })
                .collect()
        })
    }
}

/// Isolation Forest frozen against one matrix: every repetition's tree
/// ensemble is trained once at fit time, after which scoring replays
/// only the read-only path-length evaluation.
#[derive(Debug, Clone)]
pub struct FittedIsolationForest {
    forest: IsolationForest,
    reps: Vec<ForestRep>,
    data: ProjectedMatrix,
}

impl FittedIsolationForest {
    /// Trains every repetition's forest on `data` and freezes the
    /// ensembles together with the coordinates.
    #[must_use]
    pub fn fit(forest: IsolationForest, data: &ProjectedMatrix) -> Self {
        let reps = (0..forest.repetitions)
            .map(|rep| {
                let mut rng = StdRng::seed_from_u64(forest.seed.wrapping_add(rep as u64));
                forest.build_rep(data, &mut rng)
            })
            .collect();
        FittedIsolationForest {
            forest,
            reps,
            data: data.clone(),
        }
    }

    /// Total number of trained trees across every repetition.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.reps.iter().map(|r| r.trees.len()).sum()
    }

    /// Averaged scores of the fit rows, bit-identical to
    /// [`Detector::score_all`] on the fit matrix: same per-repetition
    /// evaluation, same ascending accumulation order, same final
    /// division.
    #[must_use]
    pub fn score_all(&self) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.data.n_rows()];
        for rep in &self.reps {
            for (a, s) in acc.iter_mut().zip(rep.eval(&self.data)) {
                *a += s;
            }
        }
        for a in &mut acc {
            *a /= self.reps.len() as f64;
        }
        acc
    }
}

impl FittedModel for FittedIsolationForest {
    fn score_fit_rows(&self) -> Vec<f64> {
        self.score_all()
    }

    fn name(&self) -> &'static str {
        "iForest"
    }

    fn n_rows(&self) -> usize {
        self.data.n_rows()
    }

    fn append_rows(&self, added: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        if added.dim() != self.data.dim() {
            return None;
        }
        if added.n_rows() == 0 {
            return Some(Box::new(self.clone()));
        }
        // Trees cannot absorb rows incrementally without changing the
        // subsample distribution, so iForest rebuilds on the extended
        // matrix — the per-repetition seeding makes the rebuild the
        // identical computation a from-scratch refit would run.
        crate::fit::obs_append_rebuilds().incr();
        let extended = self.data.concat(added);
        Some(Box::new(FittedIsolationForest::fit(self.forest, &extended)))
    }
}

impl Detector for IsolationForest {
    fn score_all(&self, data: &ProjectedMatrix) -> Vec<f64> {
        let n = data.n_rows();
        let mut acc = vec![0.0f64; n];
        for rep in 0..self.repetitions {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(rep as u64));
            for (a, s) in acc.iter_mut().zip(self.score_once(data, &mut rng)) {
                *a += s;
            }
        }
        for a in &mut acc {
            *a /= self.repetitions as f64;
        }
        acc
    }

    fn name(&self) -> &'static str {
        "iForest"
    }

    fn fit(&self, data: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        Some(Box::new(FittedIsolationForest::fit(*self, data)))
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster_with_outlier(n: usize) -> (Dataset, usize) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen::<f64>() * 0.1, rng.gen::<f64>() * 0.1])
            .collect();
        let idx = rows.len();
        rows.push(vec![10.0, -10.0]);
        (Dataset::from_rows(rows).unwrap(), idx)
    }

    #[test]
    fn average_path_length_values() {
        assert_eq!(average_path_length(0), 0.0);
        assert_eq!(average_path_length(1), 0.0);
        assert_eq!(average_path_length(2), 1.0);
        // c(256) ≈ 10.244 (reference value from the iForest paper's formula).
        assert!((average_path_length(256) - 10.244).abs() < 0.01);
        // Monotone increasing.
        let mut prev = 0.0;
        for n in 2..100 {
            let c = average_path_length(n);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn outlier_scores_highest_and_near_one() {
        let (ds, idx) = cluster_with_outlier(200);
        let forest = IsolationForest::builder()
            .trees(100)
            .repetitions(2)
            .seed(42)
            .build()
            .unwrap();
        let scores = forest.score_all(&ds.full_matrix());
        let top = (0..scores.len())
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap();
        assert_eq!(top, idx);
        assert!(scores[idx] > 0.7, "outlier score = {}", scores[idx]);
        // Inliers well below the outlier.
        let mean_inlier: f64 = scores[..idx].iter().sum::<f64>() / idx as f64;
        assert!(mean_inlier < 0.6, "mean inlier score = {mean_inlier}");
    }

    #[test]
    fn scores_in_unit_interval() {
        let (ds, _) = cluster_with_outlier(100);
        let forest = IsolationForest::builder()
            .trees(20)
            .repetitions(1)
            .build()
            .unwrap();
        let scores = forest.score_all(&ds.full_matrix());
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn deterministic_given_seed() {
        let (ds, _) = cluster_with_outlier(80);
        let f = |seed| {
            IsolationForest::builder()
                .trees(30)
                .repetitions(2)
                .seed(seed)
                .build()
                .unwrap()
                .score_all(&ds.full_matrix())
        };
        assert_eq!(f(9), f(9));
        assert_ne!(f(9), f(10));
    }

    #[test]
    fn repetitions_reduce_variance() {
        let (ds, _) = cluster_with_outlier(120);
        let m = ds.full_matrix();
        // Spread of single-rep scores across seeds vs 10-rep scores.
        let spread = |reps: usize| -> f64 {
            let runs: Vec<Vec<f64>> = (0..5)
                .map(|s| {
                    IsolationForest::builder()
                        .trees(25)
                        .repetitions(reps)
                        .seed(s * 1000)
                        .build()
                        .unwrap()
                        .score_all(&m)
                })
                .collect();
            // Mean per-point standard deviation across runs.
            let n = m.n_rows();
            (0..n)
                .map(|i| {
                    let vals: Vec<f64> = runs.iter().map(|r| r[i]).collect();
                    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                    (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64)
                        .sqrt()
                })
                .sum::<f64>()
                / n as f64
        };
        assert!(
            spread(8) < spread(1),
            "averaging must reduce score variance"
        );
    }

    #[test]
    fn handles_constant_data() {
        let ds = Dataset::from_rows(vec![vec![1.0, 2.0]; 20]).unwrap();
        let forest = IsolationForest::builder()
            .trees(10)
            .repetitions(1)
            .build()
            .unwrap();
        let scores = forest.score_all(&ds.full_matrix());
        assert!(scores.iter().all(|s| s.is_finite()));
        // All points identical → identical scores.
        for w in scores.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn fitted_model_is_bit_identical_to_score_all() {
        let (ds, _) = cluster_with_outlier(120);
        let m = ds.full_matrix();
        let forest = IsolationForest::builder()
            .trees(25)
            .repetitions(3)
            .seed(17)
            .build()
            .unwrap();
        let fitted = FittedIsolationForest::fit(forest, &m);
        assert_eq!(fitted.score_fit_rows(), forest.score_all(&m));
        assert_eq!(fitted.n_rows(), m.n_rows());
        assert_eq!(fitted.n_trees(), 75);
        // Scoring from frozen trees is replayable (no hidden RNG state).
        assert_eq!(fitted.score_all(), fitted.score_all());
        let via_trait = Detector::fit(&forest, &m).expect("iForest has a fit path");
        assert_eq!(via_trait.score_fit_rows(), forest.score_all(&m));
    }

    #[test]
    fn append_then_score_equals_refit_then_score() {
        let (ds, _) = cluster_with_outlier(100);
        let m = ds.full_matrix();
        let mut rng = StdRng::seed_from_u64(23);
        let added_rows: Vec<Vec<f64>> = (0..15)
            .map(|_| vec![rng.gen::<f64>() * 0.1, rng.gen::<f64>() * 0.1])
            .collect();
        let added = Dataset::from_rows(added_rows).unwrap().full_matrix();
        let all = m.concat(&added);
        let forest = IsolationForest::builder()
            .trees(20)
            .repetitions(2)
            .seed(5)
            .build()
            .unwrap();
        let fitted = FittedIsolationForest::fit(forest, &m);
        let appended = FittedModel::append_rows(&fitted, &added).unwrap();
        assert_eq!(appended.n_rows(), all.n_rows());
        assert_eq!(appended.score_fit_rows(), forest.score_all(&all));
        assert_eq!(
            appended.score_fit_rows(),
            FittedIsolationForest::fit(forest, &all).score_fit_rows()
        );
    }

    #[test]
    fn builder_validation() {
        assert!(IsolationForest::builder().trees(0).build().is_err());
        assert!(IsolationForest::builder().subsample(1).build().is_err());
        assert!(IsolationForest::builder().repetitions(0).build().is_err());
    }
}
