//! LODA — Lightweight On-line Detector of Anomalies (Pevný, *Machine
//! Learning* 2015).
//!
//! The paper's conclusions (§6) name LODA as the candidate for extending
//! the testbed toward *stream processing*; this module implements it as
//! both a batch [`Detector`] and an online model with incremental
//! updates.
//!
//! LODA projects the data onto `n_projections` sparse random directions
//! (each using ~√d non-zero weights), builds an equi-width histogram per
//! projection, and scores a point by the negative mean log-density of
//! its projections. As a bonus, LODA explains its own scores: the
//! per-feature importance contrasts the score a point receives from
//! projections that *use* a feature against those that don't — the
//! one-tailed two-sample t-test of the original paper.

use crate::{Detector, DetectorError, Result};
use anomex_dataset::ProjectedMatrix;
use anomex_stats::tests::welch::welch_t_test;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Laplace-style smoothing mass added to every histogram bin.
const SMOOTHING: f64 = 1.0;

/// Configuration for [`Loda`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LodaBuilder {
    n_projections: usize,
    n_bins: usize,
    seed: u64,
}

impl LodaBuilder {
    /// Number of sparse random projections (default 100).
    #[must_use]
    pub fn projections(mut self, n: usize) -> Self {
        self.n_projections = n;
        self
    }

    /// Number of histogram bins per projection (default 0 = automatic:
    /// ⌈√N⌉ at fit time).
    #[must_use]
    pub fn bins(mut self, n: usize) -> Self {
        self.n_bins = n;
        self
    }

    /// RNG seed for the projection directions.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and builds the detector.
    ///
    /// # Errors
    /// [`DetectorError::InvalidParameter`] when `projections == 0`.
    pub fn build(self) -> Result<Loda> {
        if self.n_projections == 0 {
            return Err(DetectorError::InvalidParameter {
                detector: "LODA",
                detail: "at least one projection required",
            });
        }
        Ok(Loda {
            n_projections: self.n_projections,
            n_bins: self.n_bins,
            seed: self.seed,
        })
    }
}

/// The LODA detector (batch mode). For streaming use, see
/// [`LodaModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loda {
    n_projections: usize,
    n_bins: usize,
    seed: u64,
}

impl Loda {
    /// A builder with the defaults of the original paper
    /// (100 projections, automatic bin count).
    #[must_use]
    pub fn builder() -> LodaBuilder {
        LodaBuilder {
            n_projections: 100,
            n_bins: 0,
            seed: 0,
        }
    }

    /// Fits an online-updatable model on `data`.
    #[must_use]
    pub fn fit(&self, data: &ProjectedMatrix) -> LodaModel {
        LodaModel::fit(data, self.n_projections, self.n_bins, self.seed)
    }
}

impl Detector for Loda {
    fn score_all(&self, data: &ProjectedMatrix) -> Vec<f64> {
        let model = self.fit(data);
        (0..data.n_rows())
            .map(|i| model.score(data.row(i)))
            .collect()
    }

    fn name(&self) -> &'static str {
        "LODA"
    }
}

/// One sparse random projection with its histogram density model.
#[derive(Debug, Clone)]
struct Projection {
    /// `(feature, weight)` pairs of the sparse direction.
    weights: Vec<(usize, f64)>,
    /// Histogram range (from the fitting window; values outside clamp to
    /// the edge bins).
    lo: f64,
    hi: f64,
    /// Bin counts (with smoothing applied at query time).
    counts: Vec<f64>,
    /// Total observations.
    total: f64,
}

impl Projection {
    fn project(&self, x: &[f64]) -> f64 {
        self.weights.iter().map(|&(f, w)| x[f] * w).sum()
    }

    fn bin_of(&self, z: f64) -> usize {
        if self.hi <= self.lo {
            return 0;
        }
        let frac = (z - self.lo) / (self.hi - self.lo);
        ((frac * self.counts.len() as f64) as isize).clamp(0, self.counts.len() as isize - 1)
            as usize
    }

    fn log_density(&self, z: f64) -> f64 {
        let bins = self.counts.len() as f64;
        let mass = self.counts[self.bin_of(z)] + SMOOTHING;
        let total = self.total + SMOOTHING * bins;
        (mass / total).ln()
    }

    fn update(&mut self, z: f64) {
        let b = self.bin_of(z);
        self.counts[b] += 1.0;
        self.total += 1.0;
    }
}

/// A fitted LODA model supporting scoring of unseen points, incremental
/// updates (the *on-line* in LODA) and per-feature importance.
#[derive(Debug, Clone)]
pub struct LodaModel {
    projections: Vec<Projection>,
    dim: usize,
}

impl LodaModel {
    fn fit(data: &ProjectedMatrix, n_projections: usize, n_bins: usize, seed: u64) -> Self {
        let n = data.n_rows();
        let d = data.dim();
        assert!(n >= 2, "LODA needs at least two rows");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4C4F_4441); // "LODA"
        let n_bins = if n_bins == 0 {
            ((n as f64).sqrt().ceil() as usize).max(4)
        } else {
            n_bins.max(2)
        };
        let sparsity = ((d as f64).sqrt().round() as usize).clamp(1, d);
        let mut features: Vec<usize> = (0..d).collect();

        let mut projections = Vec::with_capacity(n_projections);
        for _ in 0..n_projections {
            features.shuffle(&mut rng);
            let weights: Vec<(usize, f64)> = features[..sparsity]
                .iter()
                .map(|&f| {
                    // N(0,1) weight via Box–Muller.
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen();
                    let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (f, g)
                })
                .collect();
            // Project all points to fix the histogram range.
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let zs: Vec<f64> = (0..n)
                .map(|i| {
                    let z: f64 = weights.iter().map(|&(f, w)| data.row(i)[f] * w).sum();
                    lo = lo.min(z);
                    hi = hi.max(z);
                    z
                })
                .collect();
            let mut proj = Projection {
                weights,
                lo,
                hi,
                counts: vec![0.0; n_bins],
                total: 0.0,
            };
            for z in zs {
                proj.update(z);
            }
            projections.push(proj);
        }
        LodaModel {
            projections,
            dim: d,
        }
    }

    /// Anomaly score of a point: negative mean log-density over the
    /// projections (larger = more outlying).
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn score(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "dimensionality mismatch");
        let sum: f64 = self
            .projections
            .iter()
            .map(|p| p.log_density(p.project(x)))
            .sum();
        -sum / self.projections.len() as f64
    }

    /// Incorporates one new observation into every histogram — the
    /// streaming update. Histogram ranges stay fixed (values outside the
    /// fitted range accumulate in the edge bins), matching LODA's
    /// fixed-grid online variant.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn update(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.dim, "dimensionality mismatch");
        for p in &mut self.projections {
            let z = p.project(x);
            p.update(z);
        }
    }

    /// Per-feature outlyingness contribution of `x`: the one-tailed
    /// Welch-t statistic between the per-projection scores of
    /// projections *using* the feature and those not using it (positive
    /// = the feature makes the point look more anomalous). Features that
    /// appear in every or no projection get 0.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn feature_importance(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "dimensionality mismatch");
        let neg_log: Vec<f64> = self
            .projections
            .iter()
            .map(|p| -p.log_density(p.project(x)))
            .collect();
        (0..self.dim)
            .map(|f| {
                let (mut with, mut without) = (Vec::new(), Vec::new());
                for (p, &s) in self.projections.iter().zip(&neg_log) {
                    if p.weights.iter().any(|&(pf, _)| pf == f) {
                        with.push(s);
                    } else {
                        without.push(s);
                    }
                }
                match welch_t_test(&with, &without) {
                    Ok(r) if r.statistic > 0.0 => r.statistic,
                    _ => 0.0,
                }
            })
            .collect()
    }

    /// Number of projections in the model.
    #[must_use]
    pub fn n_projections(&self) -> usize {
        self.projections.len()
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_with_outlier(n: usize) -> (Dataset, usize) {
        let mut rng = StdRng::seed_from_u64(8);
        let mut rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                vec![
                    rng.gen::<f64>() * 0.2,
                    rng.gen::<f64>() * 0.2,
                    rng.gen::<f64>() * 0.2,
                    rng.gen::<f64>() * 0.2,
                ]
            })
            .collect();
        let idx = rows.len();
        rows.push(vec![2.0, 2.0, 2.0, 2.0]);
        (Dataset::from_rows(rows).unwrap(), idx)
    }

    #[test]
    fn outlier_scores_highest() {
        let (ds, idx) = blob_with_outlier(300);
        let loda = Loda::builder().projections(50).seed(1).build().unwrap();
        let scores = loda.score_all(&ds.full_matrix());
        let top = (0..scores.len())
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap();
        assert_eq!(top, idx);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let (ds, _) = blob_with_outlier(100);
        let a = Loda::builder()
            .seed(5)
            .build()
            .unwrap()
            .score_all(&ds.full_matrix());
        let b = Loda::builder()
            .seed(5)
            .build()
            .unwrap()
            .score_all(&ds.full_matrix());
        assert_eq!(a, b);
        let c = Loda::builder()
            .seed(6)
            .build()
            .unwrap()
            .score_all(&ds.full_matrix());
        assert_ne!(a, c);
    }

    #[test]
    fn streaming_updates_lower_score_of_repeated_pattern() {
        let (ds, _) = blob_with_outlier(200);
        let loda = Loda::builder().projections(50).seed(2).build().unwrap();
        let mut model = loda.fit(&ds.full_matrix());
        // A novel point looks anomalous at first...
        let novel = vec![0.5, 0.5, 0.5, 0.5];
        let before = model.score(&novel);
        // ...but after we stream many similar observations, the model
        // adapts and the score drops.
        for _ in 0..300 {
            model.update(&novel);
        }
        let after = model.score(&novel);
        assert!(
            after < before,
            "streaming adaptation failed: {before} -> {after}"
        );
    }

    #[test]
    fn feature_importance_points_at_deviating_features() {
        // Outlier deviates only in features 0 and 1.
        let mut rng = StdRng::seed_from_u64(3);
        let mut rows: Vec<Vec<f64>> = (0..400)
            .map(|_| {
                vec![
                    rng.gen::<f64>() * 0.2,
                    rng.gen::<f64>() * 0.2,
                    rng.gen::<f64>(),
                    rng.gen::<f64>(),
                    rng.gen::<f64>(),
                    rng.gen::<f64>(),
                ]
            })
            .collect();
        let idx = rows.len();
        rows.push(vec![3.0, 3.0, 0.5, 0.5, 0.5, 0.5]);
        let ds = Dataset::from_rows(rows).unwrap();
        let loda = Loda::builder().projections(200).seed(4).build().unwrap();
        let model = loda.fit(&ds.full_matrix());
        let imp = model.feature_importance(&ds.row(idx));
        let max_rest = imp[2..].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            imp[0] > max_rest && imp[1] > max_rest,
            "importances: {imp:?}"
        );
    }

    #[test]
    fn handles_constant_data() {
        let ds = Dataset::from_rows(vec![vec![1.0, 2.0]; 30]).unwrap();
        let loda = Loda::builder().projections(20).build().unwrap();
        let scores = loda.score_all(&ds.full_matrix());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn builder_validation() {
        assert!(Loda::builder().projections(0).build().is_err());
        assert!(Loda::builder().bins(1).build().is_ok()); // clamped to 2
    }
}
