//! Fast Angle-Based Outlier Detection (Kriegel, Schubert, Zimek — KDD
//! 2008).
//!
//! ABOD scores a point by the *variance of the weighted angles* between
//! it and pairs of other points: a point surrounded by data in many
//! directions sees highly varying angles (inlier), while a point at the
//! border of the distribution sees all others in similar directions
//! (small variance → outlier). The paper uses the O(k²·N) *Fast ABOD*
//! variant with `k = 10` that restricts the pairs to the point's k
//! nearest neighbours.
//!
//! Since the raw ABOD value is *small* for outliers, [`FastAbod`] maps it
//! through `−ln(var + ε)` so that, like every other [`Detector`], larger
//! scores mean more outlying.

use crate::fit::FittedModel;
use crate::kernels::knn_table_from_sq_dists;
use crate::knn::{knn_table_with_precision, merge_knn_exact, KnnTable, NeighborBackend, Precision};
use crate::{Detector, DetectorError, Result};
use anomex_dataset::distances::SqDistMatrix;
use anomex_dataset::view::dot;
use anomex_dataset::ProjectedMatrix;
use anomex_parallel::par_chunk_flat_map;
use anomex_stats::descriptive::OnlineMoments;

/// Rows per parallel work item of the variance loop (each chunk reuses
/// one flat scratch allocation across its rows).
const CHUNK_ROWS: usize = 32;

/// Numerical floor so the log transform stays finite when a point's
/// angle spectrum is degenerate.
const VAR_FLOOR: f64 = 1e-300;
/// Variance assigned when a point has no valid neighbour pair at all
/// (e.g. every neighbour is an exact duplicate): treated as maximally
/// inlying.
const DEGENERATE_VAR: f64 = 1e6;

/// The Fast ABOD detector. The paper uses `k = 10`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastAbod {
    k: usize,
    backend: NeighborBackend,
    precision: Precision,
}

impl FastAbod {
    /// Creates a Fast ABOD detector over `k ≥ 2` nearest neighbours
    /// (at least two are needed to form one angle pair).
    ///
    /// # Errors
    /// [`DetectorError::InvalidParameter`] when `k < 2`.
    pub fn new(k: usize) -> Result<Self> {
        if k < 2 {
            return Err(DetectorError::InvalidParameter {
                detector: "FastABOD",
                detail: "k must be at least 2 to form angle pairs",
            });
        }
        Ok(FastAbod {
            k,
            backend: NeighborBackend::default(),
            precision: Precision::default(),
        })
    }

    /// Selects the neighbor backend (exact by default).
    #[must_use]
    pub fn with_backend(mut self, backend: NeighborBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The configured neighbor backend.
    #[must_use]
    pub fn backend(&self) -> NeighborBackend {
        self.backend
    }

    /// Selects the kernel storage precision (f64 by default; f32 is
    /// used for the kNN build, while the angle kernel itself always
    /// runs over the original f64 coordinates).
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The configured storage precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The configured neighbourhood size.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The raw ABOD variance of each point (small = outlying), before the
    /// monotone `−ln` mapping. Exposed for diagnostics and tests.
    ///
    /// Rows are scored in parallel chunks; each chunk reuses one flat
    /// `k × d` difference buffer, so the hot loop performs no per-row
    /// allocation. Per-row outputs are independent of the thread
    /// schedule, so scores are deterministic.
    #[must_use]
    pub fn raw_variance(&self, data: &ProjectedMatrix) -> Vec<f64> {
        let knn = knn_table_with_precision(data, self.k, self.backend, self.precision);
        variance_from_coords(data, &knn)
    }

    /// The raw ABOD variance from a precomputed pairwise squared-distance
    /// matrix. Inner products are recovered through the polarization
    /// identity `⟨a−p, b−p⟩ = (d²(p,a) + d²(p,b) − d²(a,b)) / 2`, so no
    /// coordinates are needed — the consumer side of the incremental
    /// subspace-distance path. Agrees with [`FastAbod::raw_variance`] to
    /// rounding (the identity reassociates the arithmetic).
    #[must_use]
    pub fn raw_variance_from_sq_dists(&self, dists: &SqDistMatrix) -> Vec<f64> {
        let n = dists.n_rows();
        let knn = knn_table_from_sq_dists(dists, self.k);
        let knn_ref = &knn;
        par_chunk_flat_map(n, CHUNK_ROWS, |start, end| {
            let k = knn_ref.k();
            let mut sqd = vec![0.0f64; k];
            let mut out = Vec::with_capacity(end - start);
            for p in start..end {
                let nbrs = knn_ref.neighbors(p);
                let row = dists.row(p);
                for (slot, &o) in nbrs.iter().enumerate() {
                    sqd[slot] = row[o];
                }
                let mut moments = OnlineMoments::new();
                for i in 0..k {
                    if sqd[i] == 0.0 {
                        continue; // duplicate of p: angle undefined
                    }
                    for j in i + 1..k {
                        if sqd[j] == 0.0 {
                            continue;
                        }
                        let inner = 0.5 * (sqd[i] + sqd[j] - dists.get(nbrs[i], nbrs[j]));
                        let v = inner / (sqd[i] * sqd[j]);
                        moments.push(v);
                    }
                }
                out.push(finish_variance(moments));
            }
            out
        })
    }
}

/// The angle-variance kernel over raw coordinates and a precomputed kNN
/// reference set — the shared compute of [`FastAbod::raw_variance`] and
/// [`FittedFastAbod`], so the fitted path is bit-identical by
/// construction.
///
/// Rows are scored in parallel chunks; each chunk reuses one flat
/// `k × d` difference buffer, so the hot loop performs no per-row
/// allocation. Per-row outputs are independent of the thread schedule,
/// so scores are deterministic.
fn variance_from_coords(data: &ProjectedMatrix, knn: &KnnTable) -> Vec<f64> {
    let n = data.n_rows();
    let dim = data.dim();
    par_chunk_flat_map(n, CHUNK_ROWS, |start, end| {
        let k = knn.k();
        // Flat k × d difference matrix: diffs[slot * dim ..] = x_o − p.
        let mut diffs = vec![0.0f64; k * dim];
        let mut norms_sq = vec![0.0f64; k];
        let mut out = Vec::with_capacity(end - start);
        for p in start..end {
            let rp = data.row(p);
            for (slot, &o) in knn.neighbors(p).iter().enumerate() {
                let ro = data.row(o);
                let seg = &mut diffs[slot * dim..(slot + 1) * dim];
                for (t, dst) in seg.iter_mut().enumerate() {
                    *dst = ro[t] - rp[t];
                }
            }
            for slot in 0..k {
                let seg = &diffs[slot * dim..(slot + 1) * dim];
                norms_sq[slot] = dot(seg, seg);
            }
            // ABOD(p) = Var over pairs (x1, x2) of
            //   ⟨x1−p, x2−p⟩ / (‖x1−p‖² · ‖x2−p‖²)
            // The inner loop batches four right-hand neighbours per
            // pass through `simd::dot4`, which accumulates each dot in
            // ascending feature order exactly like `dot` — so the
            // moments stream is bit-identical to the scalar pair loop
            // (dots of zero-norm duplicates are computed but their
            // moments are still skipped in order).
            let mut moments = OnlineMoments::new();
            for i in 0..k {
                if norms_sq[i] == 0.0 {
                    continue; // duplicate of p: angle undefined
                }
                let di = &diffs[i * dim..(i + 1) * dim];
                let mut j = i + 1;
                while j + 4 <= k {
                    let d0 = &diffs[j * dim..(j + 1) * dim];
                    let d1 = &diffs[(j + 1) * dim..(j + 2) * dim];
                    let d2 = &diffs[(j + 2) * dim..(j + 3) * dim];
                    let d3 = &diffs[(j + 3) * dim..(j + 4) * dim];
                    let dots = crate::simd::dot4(di, [d0, d1, d2, d3]);
                    for (l, &ip) in dots.iter().enumerate() {
                        let nj = norms_sq[j + l];
                        if nj == 0.0 {
                            continue;
                        }
                        moments.push(ip / (norms_sq[i] * nj));
                    }
                    j += 4;
                }
                while j < k {
                    if norms_sq[j] != 0.0 {
                        let dj = &diffs[j * dim..(j + 1) * dim];
                        moments.push(dot(di, dj) / (norms_sq[i] * norms_sq[j]));
                    }
                    j += 1;
                }
            }
            out.push(finish_variance(moments));
        }
        out
    })
}

/// The monotone variance → outlyingness mapping shared by every scoring
/// path: `−ln(max(var, floor))`, larger = more outlying.
fn variance_to_score(v: f64) -> f64 {
    -(v.max(VAR_FLOOR)).ln()
}

/// Collapses the accumulated angle moments of one point into its
/// variance, substituting [`DEGENERATE_VAR`] when fewer than two valid
/// neighbour pairs exist.
fn finish_variance(moments: OnlineMoments) -> f64 {
    if moments.count() < 2 {
        DEGENERATE_VAR
    } else {
        moments.population_variance()
    }
}

impl Detector for FastAbod {
    fn score_all(&self, data: &ProjectedMatrix) -> Vec<f64> {
        self.raw_variance(data)
            .into_iter()
            .map(variance_to_score)
            .collect()
    }

    fn name(&self) -> &'static str {
        "FastABOD"
    }

    fn score_from_sq_dists(&self, dists: &SqDistMatrix) -> Option<Vec<f64>> {
        // The distance-memo path bypasses the backend dispatch and its
        // distances were computed in f64, so it only stands in for
        // `score_all` under the default exact/f64 configuration.
        if self.backend != NeighborBackend::Exact || self.precision != Precision::F64 {
            return None;
        }
        Some(
            self.raw_variance_from_sq_dists(dists)
                .into_iter()
                .map(variance_to_score)
                .collect(),
        )
    }

    fn fit(&self, data: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        Some(Box::new(FittedFastAbod::fit(*self, data)))
    }
}

/// Fast ABOD frozen against one matrix: the kNN reference set plus the
/// projected coordinates (the angle kernel needs both), computed once at
/// fit time.
#[derive(Debug, Clone)]
pub struct FittedFastAbod {
    abod: FastAbod,
    knn: KnnTable,
    data: ProjectedMatrix,
}

impl FittedFastAbod {
    /// Builds the kNN reference set of `data` and freezes it together
    /// with the coordinates.
    ///
    /// # Panics
    /// Panics when `data` has fewer than 2 rows (kNN is undefined).
    #[must_use]
    pub fn fit(abod: FastAbod, data: &ProjectedMatrix) -> Self {
        let knn = knn_table_with_precision(data, abod.k, abod.backend, abod.precision);
        FittedFastAbod {
            abod,
            knn,
            data: data.clone(),
        }
    }

    /// The frozen kNN reference set.
    #[must_use]
    pub fn knn(&self) -> &KnnTable {
        &self.knn
    }

    /// ABOD scores of the fit rows, bit-identical to
    /// [`Detector::score_all`] on the fit matrix (both run
    /// [`variance_from_coords`] over the same table and coordinates).
    #[must_use]
    pub fn score_all(&self) -> Vec<f64> {
        variance_from_coords(&self.data, &self.knn)
            .into_iter()
            .map(variance_to_score)
            .collect()
    }
}

impl FittedModel for FittedFastAbod {
    fn score_fit_rows(&self) -> Vec<f64> {
        self.score_all()
    }

    fn name(&self) -> &'static str {
        "FastABOD"
    }

    fn n_rows(&self) -> usize {
        self.knn.n_rows()
    }

    fn append_rows(&self, added: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        if added.dim() != self.data.dim() {
            return None;
        }
        if added.n_rows() == 0 {
            return Some(Box::new(self.clone()));
        }
        let extended = self.data.concat(added);
        if self.abod.backend == NeighborBackend::Exact && self.abod.precision == Precision::F64 {
            crate::fit::obs_append_merges().incr();
            let knn = merge_knn_exact(&self.knn, &extended, self.abod.k);
            Some(Box::new(FittedFastAbod {
                abod: self.abod,
                knn,
                data: extended,
            }))
        } else {
            crate::fit::obs_append_rebuilds().incr();
            Some(Box::new(FittedFastAbod::fit(self.abod, &extended)))
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_with_border_point() -> (Dataset, usize) {
        // A filled disc of points plus one point far outside: the outside
        // point sees the whole disc under a narrow cone of directions.
        let mut rng = StdRng::seed_from_u64(11);
        let mut rows = Vec::new();
        for _ in 0..80 {
            let r: f64 = rng.gen::<f64>().sqrt();
            let a: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
            rows.push(vec![r * a.cos(), r * a.sin()]);
        }
        let idx = rows.len();
        rows.push(vec![8.0, 0.0]);
        (Dataset::from_rows(rows).unwrap(), idx)
    }

    #[test]
    fn border_point_scores_highest() {
        let (ds, idx) = blob_with_border_point();
        let scores = FastAbod::new(10).unwrap().score_all(&ds.full_matrix());
        let top = (0..scores.len())
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap();
        assert_eq!(top, idx);
    }

    #[test]
    fn raw_variance_small_for_outlier() {
        let (ds, idx) = blob_with_border_point();
        let raw = FastAbod::new(10).unwrap().raw_variance(&ds.full_matrix());
        let median = {
            let mut v = raw.clone();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        assert!(
            raw[idx] < median / 10.0,
            "outlier variance {} vs median {median}",
            raw[idx]
        );
    }

    #[test]
    fn corner_more_outlying_than_center() {
        // On a uniform grid, a corner point sees all data within a 90°
        // cone (low angle variance) while an interior point is surrounded
        // in every direction (high variance) — the textbook ABOD picture
        // of Figure 2-b.
        let rows: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let ds = Dataset::from_rows(rows).unwrap();
        let scores = FastAbod::new(8).unwrap().score_all(&ds.full_matrix());
        let corner = 0; // (0, 0)
        let center = 12; // (2, 2)
        assert!(
            scores[corner] > scores[center],
            "corner {} vs center {}",
            scores[corner],
            scores[center]
        );
    }

    #[test]
    fn duplicates_handled_finitely() {
        let mut rows = vec![vec![0.0, 0.0]; 6];
        rows.push(vec![1.0, 1.0]);
        rows.push(vec![2.0, 0.0]);
        let ds = Dataset::from_rows(rows).unwrap();
        let scores = FastAbod::new(4).unwrap().score_all(&ds.full_matrix());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn rejects_small_k() {
        assert!(FastAbod::new(0).is_err());
        assert!(FastAbod::new(1).is_err());
        assert!(FastAbod::new(2).is_ok());
    }

    #[test]
    fn deterministic() {
        let (ds, _) = blob_with_border_point();
        let a = FastAbod::new(10).unwrap().score_all(&ds.full_matrix());
        let b = FastAbod::new(10).unwrap().score_all(&ds.full_matrix());
        assert_eq!(a, b);
    }

    #[test]
    fn fitted_model_is_bit_identical_to_score_all() {
        let (ds, _) = blob_with_border_point();
        let m = ds.full_matrix();
        let abod = FastAbod::new(10).unwrap();
        let fitted = FittedFastAbod::fit(abod, &m);
        assert_eq!(fitted.score_fit_rows(), abod.score_all(&m));
        assert_eq!(fitted.n_rows(), m.n_rows());
        let via_trait = Detector::fit(&abod, &m).expect("FastABOD has a fit path");
        assert_eq!(via_trait.score_fit_rows(), abod.score_all(&m));
    }

    #[test]
    fn append_then_score_equals_refit_then_score() {
        let mut rng = StdRng::seed_from_u64(17);
        let rows: Vec<Vec<f64>> = (0..110)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let all = Dataset::from_rows(rows.clone()).unwrap().full_matrix();
        let base = Dataset::from_rows(rows[..90].to_vec())
            .unwrap()
            .full_matrix();
        let added = Dataset::from_rows(rows[90..].to_vec())
            .unwrap()
            .full_matrix();
        let abod = FastAbod::new(10).unwrap();
        let fitted = FittedFastAbod::fit(abod, &base);
        let appended = FittedModel::append_rows(&fitted, &added).unwrap();
        assert_eq!(appended.n_rows(), all.n_rows());
        assert_eq!(appended.score_fit_rows(), abod.score_all(&all));
        assert_eq!(
            appended.score_fit_rows(),
            FittedFastAbod::fit(abod, &all).score_fit_rows()
        );
        // Non-exact backends refit rather than merge, and still agree
        // with a from-scratch fit on the extended matrix.
        let kd = abod.with_backend(NeighborBackend::KdTree);
        let kd_appended =
            FittedModel::append_rows(&FittedFastAbod::fit(kd, &base), &added).unwrap();
        assert_eq!(
            kd_appended.score_fit_rows(),
            FittedFastAbod::fit(kd, &all).score_fit_rows()
        );
    }
}
