//! Approximate k-nearest-neighbour search for high-dimensional
//! projections — deterministic random-hyperplane LSH.
//!
//! Space-partitioning trees lose their pruning power as dimensionality
//! grows (every kd-tree query degenerates toward a full scan well
//! before d = 16), so the high-dim arm of [`NeighborBackend`] trades
//! exactness for asymptotics: `L` independent hash tables, each
//! bucketing rows by the sign pattern of `B` fixed random hyperplanes
//! through the data mean. Rows sharing a bucket in *any* table are
//! candidate neighbours; exact distances are then computed only over
//! that candidate union, so per-row work is O(L · bucket + L·B·d)
//! instead of O(N·d). `B` scales with `log2(N)`, and on matrices of
//! at least [`SPLIT_MIN_ROWS`] rows buckets that still exceed
//! [`SPLIT_CAP`] rows (global sign codes are skewed) are recursively
//! re-split with extra planes centered on each bucket's own mean —
//! keeping buckets near a constant target size, so total build cost
//! is O(N·(log N + L·B·d)), sublinear in N per row where the exact
//! kernel is linear.
//!
//! **Determinism:** the hyperplanes come from a [`SplitMix64`] stream
//! with a compile-time seed, and bucketing is sort-based (no hash-map
//! iteration), so the index — and every score downstream of it — is a
//! pure function of the input matrix. The nondeterminism lint treats
//! this crate as pure compute; this module keeps that guarantee.
//!
//! **Accuracy envelope:** rows whose candidate set undershoots `k` fall
//! back to an exact scan (counted by `detectors.approx.row_fallbacks`),
//! and matrices below [`NeighborBackend::APPROX_MIN_ROWS`] rows skip
//! hashing entirely and use the exact kernel — hashing cannot beat one
//! blocked pass there, and it makes the committed small-N eval grids
//! (including the golden testbed) drift-free by construction. Recall
//! against the exact backend on clustered data is pinned by the tests
//! below; MAP drift on the golden grid is pinned in tests/golden_grid.rs.

use crate::kernels;
use crate::knn::KnnTable;
use anomex_dataset::view::{dot, sq_dist};
use anomex_dataset::ProjectedMatrix;
use anomex_parallel::par_chunk_flat_map;
use anomex_spec::NeighborBackend;
use std::sync::OnceLock;

/// Process-wide meters separating the three ways an approx build can
/// resolve: a real LSH build, a whole-matrix exact fallback (small N),
/// and per-row exact fallbacks (candidate undershoot).
fn obs_approx_builds() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("detectors.approx.builds"))
}

fn obs_approx_exact_fallbacks() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("detectors.approx.exact_fallbacks"))
}

fn obs_approx_row_fallbacks() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("detectors.approx.row_fallbacks"))
}

/// Fixed seed of the hyperplane stream. A compile-time constant — not
/// wall-clock, not process entropy — so two builds over the same matrix
/// are identical across runs and machines.
const LSH_SEED: u64 = 0x5EED_A99C_0B1D_7E11;

/// Independent hash tables; a near neighbour missed by one sign pattern
/// gets `L − 1` more chances.
const TABLES: usize = 8;

/// Target bucket population; `B` is chosen so `N / 2^B` lands near it.
/// Must comfortably exceed the typical `k` (paper detectors use
/// k ≤ 15) so one bucket usually covers the whole neighbourhood.
const TARGET_BUCKET: usize = 64;

/// Bound on hyperplanes per table (codes are packed into a `u64`;
/// beyond 16 bits buckets would be mostly singletons at any N this
/// system targets).
const MAX_BITS: u32 = 16;
const MIN_BITS: u32 = 4;

/// A bucket larger than this after global hashing is re-split with
/// extra hyperplanes centered on the *bucket's own mean*. Global
/// sign codes are skewed (their cells are angular cones, and tight
/// off-center clusters put a whole cluster on one side of nearly
/// every plane), so without a cap the row-weighted expected bucket —
/// and with it per-row rerank cost — grows superlinearly in N.
/// Local centering makes the extra planes discriminative exactly
/// where global ones are blind.
const SPLIT_CAP: usize = 2 * TARGET_BUCKET;

/// Hyperplanes added per re-split level: one. Halving is the gentlest
/// refinement — sub-buckets land just under [`SPLIT_CAP`] instead of
/// fragmenting far below it, and every lost candidate is lost recall.
const SPLIT_BITS: usize = 1;

/// Maximum re-split depth — bounds recursion on pathological runs
/// (identical rows hash identically at every level and can never
/// split, so they stop here and stay one bucket).
const SPLIT_LEVELS: usize = 16;

/// Matrices below this row count skip the re-split entirely. Oversized
/// buckets only cost real time at scale; at small N the surplus
/// candidates are cheap and *are* the recall — the committed eval
/// grids (1 000-row testbeds) stay bit-identical to the pre-split
/// index, which pins their MAP drift at zero.
const SPLIT_MIN_ROWS: usize = 8192;

/// SplitMix64 — the workspace's standard tiny deterministic generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [−1, 1). For sign-hash LSH any sign-symmetric
    /// component distribution yields valid hyperplane directions.
    fn symmetric(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }
}

/// One build's worth of hash tables over a projected matrix.
struct LshIndex {
    /// Row ids of each table, sorted by hash code (tables concatenated:
    /// table `t` occupies `[t * n, (t + 1) * n)`).
    order: Vec<u32>,
    /// For table `t` and row `i`, the `[start, end)` extent of `i`'s
    /// bucket within `order`'s table-`t` segment, stored flat at
    /// `t * n + i`.
    bucket: Vec<(u32, u32)>,
    n_rows: usize,
}

impl LshIndex {
    fn build(data: &ProjectedMatrix) -> Self {
        let n = data.n_rows();
        let dim = data.dim();
        let bits = bits_for(n);
        // Hyperplanes pass through the data mean so sign patterns split
        // the mass rather than all agreeing on off-center data.
        let mut mean = vec![0.0f64; dim];
        for row in data.rows() {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut rng = SplitMix64(LSH_SEED);
        // planes[t][b] is one hyperplane normal of dim components,
        // stored flat: table-major, then plane-major.
        let planes: Vec<f64> = (0..TABLES * bits as usize * dim)
            .map(|_| rng.symmetric())
            .collect();
        // Re-split planes, drawn from the same stream after the global
        // ones: table-major, then level-major, then plane-major.
        let split_planes: Vec<f64> = (0..TABLES * SPLIT_LEVELS * SPLIT_BITS * dim)
            .map(|_| rng.symmetric())
            .collect();

        let mut order = Vec::with_capacity(TABLES * n);
        let mut bucket = vec![(0u32, 0u32); TABLES * n];
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(n);
        let mut centered = vec![0.0f64; dim];
        for t in 0..TABLES {
            keyed.clear();
            for (i, row) in data.rows().enumerate() {
                for (c, (&v, &m)) in centered.iter_mut().zip(row.iter().zip(&mean)) {
                    *c = v - m;
                }
                let mut code = 0u64;
                for b in 0..bits as usize {
                    let p0 = (t * bits as usize + b) * dim;
                    let plane = &planes[p0..p0 + dim];
                    code = (code << 1) | u64::from(dot(&centered, plane) >= 0.0);
                }
                keyed.push((code, i as u32));
            }
            keyed.sort_unstable();
            // Walk equal-code runs; `split_run` refines oversized ones
            // in place (permuting `keyed` within the run) and records
            // every leaf bucket's extent. Extents are structural — no
            // final code-comparison pass — so refined sub-buckets can
            // never collide with a neighbouring run's codes. Below
            // [`SPLIT_MIN_ROWS`] the level budget is zero and the walk
            // reduces to plain extent marking.
            let levels = if n >= SPLIT_MIN_ROWS { SPLIT_LEVELS } else { 0 };
            let seg_base = t * n;
            let tp0 = t * SPLIT_LEVELS * SPLIT_BITS * dim;
            let table_planes = &split_planes[tp0..tp0 + SPLIT_LEVELS * SPLIT_BITS * dim];
            let mut run_start = 0usize;
            for pos in 1..=n {
                if pos == n || keyed[pos].0 != keyed[run_start].0 {
                    split_run(
                        data,
                        table_planes,
                        &mut keyed,
                        run_start,
                        pos,
                        levels,
                        seg_base,
                        &mut bucket,
                    );
                    run_start = pos;
                }
            }
            order.extend(keyed.iter().map(|&(_, i)| i));
        }
        LshIndex {
            order,
            bucket,
            n_rows: n,
        }
    }

    /// The deduplicated, self-excluded union of row `i`'s buckets
    /// across all tables, written into `out` (ascending row order).
    fn candidates_into(&self, i: usize, out: &mut Vec<u32>) {
        out.clear();
        let n = self.n_rows;
        for t in 0..TABLES {
            let (start, end) = self.bucket[t * n + i];
            let seg = &self.order[t * n + start as usize..t * n + end as usize];
            out.extend(seg.iter().copied().filter(|&j| j as usize != i));
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// Recursively refines one equal-code run `keyed[start..end]` until
/// every bucket holds at most [`SPLIT_CAP`] rows (or the level budget
/// runs out), then records each leaf bucket's extent into `bucket`.
///
/// Each level hashes the run's members with [`SPLIT_BITS`] fresh
/// hyperplanes centered on the *run's own mean* — global-mean planes
/// cannot cut inside a tight off-center cluster (the whole cluster
/// sits on one side of nearly every plane), but locally centered ones
/// split its mass evenly. Within a run all inherited codes are equal,
/// so members' keys are overwritten with just the sub-code before the
/// in-place re-sort; determinism is preserved because the planes come
/// from the seeded stream and ties sort by row id.
#[allow(clippy::too_many_arguments)]
fn split_run(
    data: &ProjectedMatrix,
    table_planes: &[f64],
    keyed: &mut [(u64, u32)],
    start: usize,
    end: usize,
    levels_left: usize,
    seg_base: usize,
    bucket: &mut [(u32, u32)],
) {
    let len = end - start;
    if len <= SPLIT_CAP || levels_left == 0 {
        for &(_, i) in &keyed[start..end] {
            bucket[seg_base + i as usize] = (start as u32, end as u32);
        }
        return;
    }
    let dim = data.dim();
    let mut mean = vec![0.0f64; dim];
    for &(_, i) in &keyed[start..end] {
        for (m, &v) in mean.iter_mut().zip(data.row(i as usize)) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= len as f64;
    }
    let level = SPLIT_LEVELS - levels_left;
    let mut centered = vec![0.0f64; dim];
    for slot in &mut keyed[start..end] {
        let row = data.row(slot.1 as usize);
        for (c, (&v, &m)) in centered.iter_mut().zip(row.iter().zip(&mean)) {
            *c = v - m;
        }
        let mut code = 0u64;
        for b in 0..SPLIT_BITS {
            let p0 = (level * SPLIT_BITS + b) * dim;
            let plane = &table_planes[p0..p0 + dim];
            code = (code << 1) | u64::from(dot(&centered, plane) >= 0.0);
        }
        slot.0 = code;
    }
    keyed[start..end].sort_unstable();
    let mut run_start = start;
    for pos in start + 1..=end {
        if pos == end || keyed[pos].0 != keyed[run_start].0 {
            split_run(
                data,
                table_planes,
                keyed,
                run_start,
                pos,
                levels_left - 1,
                seg_base,
                bucket,
            );
            run_start = pos;
        }
    }
}

/// Hyperplanes per table for an `n`-row matrix: enough that buckets
/// land near [`TARGET_BUCKET`] rows, clamped to `[MIN_BITS, MAX_BITS]`.
fn bits_for(n: usize) -> u32 {
    let ideal = (n / TARGET_BUCKET).max(1) as u64;
    // The smallest B with 2^B ≥ ideal buckets (ceil log2).
    let ceil_log2 = if ideal <= 1 {
        0
    } else {
        64 - (ideal - 1).leading_zeros()
    };
    ceil_log2.clamp(MIN_BITS, MAX_BITS)
}

/// Computes an approximate kNN table of `data`: deterministic LSH
/// candidate generation, exact distances over the candidates. Falls
/// back to the exact blocked kernel when `data` is too small for
/// hashing to pay ([`NeighborBackend::APPROX_MIN_ROWS`] rows, or
/// `n < 4k`), and per row when a candidate set undershoots `k`.
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table_approx(data: &ProjectedMatrix, k: usize) -> KnnTable {
    let n = data.n_rows();
    assert!(n >= 2, "kNN needs at least two rows");
    assert!(k >= 1, "k must be at least 1");
    if n < NeighborBackend::APPROX_MIN_ROWS || n < 4 * k {
        obs_approx_exact_fallbacks().incr();
        return kernels::knn_table_blocked(data, k);
    }
    let k = k.min(n - 1);
    obs_approx_builds().incr();
    let index = LshIndex::build(data);
    let index_ref = &index;
    let flat: Vec<(usize, f64)> = par_chunk_flat_map(n, 32, |start, end| {
        let mut cands: Vec<u32> = Vec::new();
        let mut pairs: Vec<(f64, usize)> = Vec::new();
        let mut part = Vec::with_capacity((end - start) * k);
        let mut fallbacks = 0u64;
        for i in start..end {
            let ri = data.row(i);
            pairs.clear();
            index_ref.candidates_into(i, &mut cands);
            if cands.len() < k {
                // Candidate undershoot: exact scan for this row.
                fallbacks += 1;
                pairs.extend(
                    (0..n)
                        .filter(|&j| j != i)
                        .map(|j| (sq_dist(ri, data.row(j)), j)),
                );
            } else {
                pairs.extend(
                    cands
                        .iter()
                        .map(|&j| (sq_dist(ri, data.row(j as usize)), j as usize)),
                );
            }
            pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            part.extend(pairs.iter().take(k).map(|&(v, j)| (j, v.sqrt())));
        }
        if fallbacks > 0 {
            obs_approx_row_fallbacks().add(fallbacks);
        }
        part
    });
    let neighbors = flat.iter().map(|&(id, _)| id).collect();
    let distances = flat.iter().map(|&(_, d)| d).collect();
    KnnTable::from_flat(neighbors, distances, n, k)
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use crate::knn::knn_table;
    use anomex_dataset::Dataset;

    /// Clustered 16-dim data — the regime the approx backend targets:
    /// every row's true neighbours share its cluster, so sign hashes
    /// separate neighbourhoods cleanly.
    fn clustered(n: usize, dim: usize, clusters: usize) -> ProjectedMatrix {
        let mut rng = SplitMix64(0xC1_u64);
        let centers: Vec<Vec<f64>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.symmetric() * 10.0).collect())
            .collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let c = &centers[i % clusters];
                c.iter().map(|&v| v + rng.symmetric() * 0.5).collect()
            })
            .collect();
        Dataset::from_rows(rows).unwrap().full_matrix()
    }

    fn recall_vs_exact(m: &ProjectedMatrix, k: usize) -> f64 {
        let exact = knn_table(m, k);
        let approx = knn_table_approx(m, k);
        assert_eq!(exact.k(), approx.k());
        let mut hit = 0usize;
        let mut total = 0usize;
        for i in 0..m.n_rows() {
            let truth: Vec<usize> = exact.neighbors(i).to_vec();
            for j in approx.neighbors(i) {
                if truth.contains(j) {
                    hit += 1;
                }
            }
            total += truth.len();
        }
        hit as f64 / total as f64
    }

    #[test]
    fn small_matrices_fall_back_to_the_exact_kernel_bit_identically() {
        let m = clustered(400, 16, 8); // below APPROX_MIN_ROWS
        assert_eq!(knn_table_approx(&m, 10), knn_table(&m, 10));
    }

    #[test]
    fn recall_is_high_on_clustered_high_dim_data() {
        let m = clustered(2048, 16, 16);
        let recall = recall_vs_exact(&m, 10);
        assert!(recall >= 0.9, "recall {recall} below bound");
    }

    #[test]
    fn resplit_path_keeps_recall_on_clustered_data() {
        // Above SPLIT_MIN_ROWS the oversized-bucket re-split is live:
        // 16 clusters of 512 rows all exceed SPLIT_CAP, so every
        // cluster gets refined by locally centered planes. Ground
        // truth via brute force over a row sample keeps this cheap.
        let m = clustered(8192, 16, 16);
        let approx = knn_table_approx(&m, 10);
        let mut hit = 0usize;
        let mut total = 0usize;
        for i in (0..m.n_rows()).step_by(61) {
            let ri = m.row(i);
            let mut d: Vec<(f64, usize)> = (0..m.n_rows())
                .filter(|&j| j != i)
                .map(|j| (sq_dist(ri, m.row(j)), j))
                .collect();
            d.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let truth: Vec<usize> = d[..10].iter().map(|&(_, j)| j).collect();
            hit += approx
                .neighbors(i)
                .iter()
                .filter(|j| truth.contains(j))
                .count();
            total += truth.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.9, "re-split recall {recall} below bound");
    }

    #[test]
    fn deterministic_across_builds() {
        let m = clustered(1024, 16, 8);
        assert_eq!(knn_table_approx(&m, 5), knn_table_approx(&m, 5));
    }

    #[test]
    fn distances_are_exact_for_reported_neighbors_and_sorted() {
        let m = clustered(1024, 16, 8);
        let t = knn_table_approx(&m, 5);
        for i in 0..m.n_rows() {
            assert!(!t.neighbors(i).contains(&i));
            for w in t.distances(i).windows(2) {
                assert!(w[0] <= w[1]);
            }
            for (&j, &d) in t.neighbors(i).iter().zip(t.distances(i)) {
                let true_d = m.sq_dist(i, j).sqrt();
                assert!((d - true_d).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn degenerate_inputs_match_exact() {
        // All-duplicate rows: every sign pattern collides, candidates
        // cover everything, distances all zero — same as exact.
        let dup = Dataset::from_rows(vec![vec![3.0; 16]; 600])
            .unwrap()
            .full_matrix();
        let t = knn_table_approx(&dup, 4);
        for i in 0..dup.n_rows() {
            assert_eq!(t.distances(i), &[0.0; 4]);
            assert!(!t.neighbors(i).contains(&i));
        }
        // Constant columns: hyperplane components on dead axes
        // contribute nothing; recall stays exact on 1-effective-dim
        // clustered data.
        let rows: Vec<Vec<f64>> = (0..600)
            .map(|i| {
                let mut r = vec![7.0; 16];
                r[0] = f64::from(i % 10) * 100.0 + f64::from(i / 10) * 0.01;
                r
            })
            .collect();
        let m = Dataset::from_rows(rows).unwrap().full_matrix();
        let recall = recall_vs_exact(&m, 5);
        assert!(recall >= 0.9, "constant-column recall {recall}");
        // k ≥ n_rows clamps identically to exact (small n → fallback).
        let tiny = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]])
            .unwrap()
            .full_matrix();
        assert_eq!(knn_table_approx(&tiny, 50), knn_table(&tiny, 50));
    }

    #[test]
    fn bits_scale_with_n() {
        assert_eq!(bits_for(512), MIN_BITS);
        assert_eq!(bits_for(64 * 64), 6);
        assert!(bits_for(1 << 30) == MAX_BITS);
        // Monotone non-decreasing in n.
        let mut prev = 0;
        for n in [512, 1024, 4096, 16384, 65536, 262144] {
            let b = bits_for(n);
            assert!(b >= prev);
            prev = b;
        }
    }
}
