//! Z-score standardization of per-subspace score vectors (paper §2.2).
//!
//! Raw outlyingness scores are not comparable across subspaces of
//! different dimensionality (distances grow with dimension, iForest path
//! lengths shift, ...). The paper removes this *dimensionality bias* by
//! standardizing the score of a point against the score population of its
//! subspace:
//!
//! `score(p_s)' = (score(p_s) − mean(score_s)) / sqrt(Var(score_s))`
//!
//! Beam, RefOut and LookOut all consume standardized scores.

use anomex_stats::descriptive::{zscore, OnlineMoments};

/// Standardizes a whole score vector. A constant vector maps to all
/// zeros ("nothing stands out in this subspace").
#[must_use]
pub fn standardize_scores(scores: &[f64]) -> Vec<f64> {
    let mut m = OnlineMoments::new();
    m.extend(scores);
    let (mean, std) = (m.mean(), m.population_std());
    scores.iter().map(|&s| zscore(s, mean, std)).collect()
}

/// The standardized score of the point at `index` within its population.
///
/// # Panics
/// Panics when `index` is out of bounds.
#[must_use]
pub fn standardized_at(scores: &[f64], index: usize) -> f64 {
    let mut m = OnlineMoments::new();
    m.extend(scores);
    zscore(scores[index], m.mean(), m.population_std())
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn standardization_properties() {
        let scores = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        let z = standardize_scores(&scores);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        // The extreme point keeps the top rank.
        let top = (0..z.len()).max_by(|&a, &b| z[a].total_cmp(&z[b])).unwrap();
        assert_eq!(top, 4);
        assert!(z[4] > 1.5);
    }

    #[test]
    fn constant_scores_are_neutral() {
        let z = standardize_scores(&[3.0, 3.0, 3.0]);
        assert_eq!(z, vec![0.0, 0.0, 0.0]);
        assert_eq!(standardized_at(&[3.0, 3.0, 3.0], 1), 0.0);
    }

    #[test]
    fn standardized_at_matches_vector_form() {
        let scores = vec![0.5, 1.5, -2.0, 0.25];
        let z = standardize_scores(&scores);
        for (i, zi) in z.iter().enumerate() {
            assert!((standardized_at(&scores, i) - zi).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_preserving() {
        let scores = vec![0.1, 5.0, 2.0, 3.3];
        let z = standardize_scores(&scores);
        let order = |v: &[f64]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[b].total_cmp(&v[a]));
            idx
        };
        assert_eq!(order(&scores), order(&z));
    }
}
