//! Local Outlier Factor (Breunig, Kriegel, Ng, Sander — SIGMOD 2000).
//!
//! Density-based detector (paper §2.1): a point is outlying when its
//! local reachability density is low relative to its neighbours'.
//! Inliers score ≈ 1, outliers substantially above 1. Time complexity
//! O(N²·d), dominated by the kNN scan.

use crate::fit::FittedModel;
use crate::kernels::knn_table_from_sq_dists;
use crate::knn::{knn_table_with_precision, merge_knn_exact, KnnTable, NeighborBackend, Precision};
use crate::{Detector, DetectorError, Result};
use anomex_dataset::distances::SqDistMatrix;
use anomex_dataset::ProjectedMatrix;

/// Guard against division by zero for points whose neighbourhood
/// collapses onto them (exact duplicates).
const MIN_MEAN_REACH: f64 = 1e-12;

/// The LOF detector. The paper uses `k = 15`.
///
/// ```
/// use anomex_detectors::lof::Lof;
/// let lof = Lof::new(15).unwrap();
/// assert_eq!(lof.k(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lof {
    k: usize,
    backend: NeighborBackend,
    precision: Precision,
}

impl Lof {
    /// Creates a LOF detector with neighbourhood size `k ≥ 1`.
    ///
    /// # Errors
    /// [`DetectorError::InvalidParameter`] when `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(DetectorError::InvalidParameter {
                detector: "LOF",
                detail: "k must be at least 1",
            });
        }
        Ok(Lof {
            k,
            backend: NeighborBackend::default(),
            precision: Precision::default(),
        })
    }

    /// Selects the neighbor backend (exact by default; the k-d tree is
    /// usually faster for 2–5d projections, the approximate index for
    /// large high-dim matrices).
    #[must_use]
    pub fn with_backend(mut self, backend: NeighborBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The configured neighbor backend.
    #[must_use]
    pub fn backend(&self) -> NeighborBackend {
        self.backend
    }

    /// Selects the kernel storage precision (f64 by default; f32 halves
    /// the kNN build's memory traffic on the exact backend, accumulating
    /// in f64 — neighbour ranks are preserved on all but adversarially
    /// tight ties).
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The configured storage precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The configured neighbourhood size.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// LOF scores from a precomputed kNN table (shared with callers that
    /// also need the table, e.g. tests and diagnostics).
    #[must_use]
    pub fn score_from_knn(&self, knn: &KnnTable) -> Vec<f64> {
        let n = knn.n_rows();
        // Local reachability density:
        //   lrd(p) = 1 / mean_{o ∈ kNN(p)} reach-dist_k(p ← o)
        //   reach-dist_k(p ← o) = max(k-dist(o), d(p, o))
        let lrd: Vec<f64> = (0..n)
            .map(|p| {
                let mut sum = 0.0;
                for (&o, &d_po) in knn.neighbors(p).iter().zip(knn.distances(p)) {
                    sum += knn.k_dist(o).max(d_po);
                }
                let mean = (sum / knn.k() as f64).max(MIN_MEAN_REACH);
                1.0 / mean
            })
            .collect();
        // LOF(p) = mean_{o ∈ kNN(p)} lrd(o) / lrd(p)
        (0..n)
            .map(|p| {
                let mean_ratio: f64 = knn
                    .neighbors(p)
                    .iter()
                    .map(|&o| lrd[o] / lrd[p])
                    .sum::<f64>()
                    / knn.k() as f64;
                mean_ratio
            })
            .collect()
    }
}

impl Detector for Lof {
    fn score_all(&self, data: &ProjectedMatrix) -> Vec<f64> {
        let knn = knn_table_with_precision(data, self.k, self.backend, self.precision);
        self.score_from_knn(&knn)
    }

    fn name(&self) -> &'static str {
        "LOF"
    }

    fn score_from_sq_dists(&self, dists: &SqDistMatrix) -> Option<Vec<f64>> {
        // The distance-memo path bypasses the backend dispatch and its
        // distances were computed in f64, so it only stands in for
        // `score_all` under the default exact/f64 configuration.
        if self.backend != NeighborBackend::Exact || self.precision != Precision::F64 {
            return None;
        }
        Some(self.score_from_knn(&knn_table_from_sq_dists(dists, self.k)))
    }

    fn fit(&self, data: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        Some(Box::new(FittedLof::fit(*self, data)))
    }
}

/// LOF frozen against one matrix: the kNN table is computed once at fit
/// time, after which scoring is a cheap read-only pass over it. The
/// projected coordinates are kept alongside so the model can absorb
/// appended rows ([`FittedModel::append_rows`]).
#[derive(Debug, Clone)]
pub struct FittedLof {
    lof: Lof,
    knn: KnnTable,
    data: ProjectedMatrix,
}

impl FittedLof {
    /// Builds the kNN table of `data` and freezes it together with the
    /// coordinates.
    ///
    /// # Panics
    /// Panics when `data` has fewer than 2 rows (kNN is undefined).
    #[must_use]
    pub fn fit(lof: Lof, data: &ProjectedMatrix) -> Self {
        let knn = knn_table_with_precision(data, lof.k, lof.backend, lof.precision);
        FittedLof {
            lof,
            knn,
            data: data.clone(),
        }
    }

    /// The frozen kNN table.
    #[must_use]
    pub fn knn(&self) -> &KnnTable {
        &self.knn
    }

    /// LOF scores of the fit rows, bit-identical to
    /// [`Detector::score_all`] on the fit matrix (both are
    /// [`Lof::score_from_knn`] over the same table).
    #[must_use]
    pub fn score_all(&self) -> Vec<f64> {
        self.lof.score_from_knn(&self.knn)
    }
}

impl FittedModel for FittedLof {
    fn score_fit_rows(&self) -> Vec<f64> {
        self.score_all()
    }

    fn name(&self) -> &'static str {
        "LOF"
    }

    fn n_rows(&self) -> usize {
        self.knn.n_rows()
    }

    fn append_rows(&self, added: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        if added.dim() != self.data.dim() {
            return None;
        }
        if added.n_rows() == 0 {
            return Some(Box::new(self.clone()));
        }
        let extended = self.data.concat(added);
        if self.lof.backend == NeighborBackend::Exact && self.lof.precision == Precision::F64 {
            // Incremental merge: bit-identical to a refit, without the
            // old-row × old-row rescan. The merge arithmetic is f64, so
            // f32-precision models refit instead (see the else arm).
            crate::fit::obs_append_merges().incr();
            let knn = merge_knn_exact(&self.knn, &extended, self.lof.k);
            Some(Box::new(FittedLof {
                lof: self.lof,
                knn,
                data: extended,
            }))
        } else {
            // Non-exact tables have backend-specific tie orders and
            // f32 tables half-width distances the f64 merge would not
            // reproduce; a refit keeps append ≡ refit trivially true.
            crate::fit::obs_append_rebuilds().incr();
            Some(Box::new(FittedLof::fit(self.lof, &extended)))
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_with_outlier() -> Dataset {
        // 5×5 unit grid plus a far point.
        let mut rows: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        rows.push(vec![20.0, 20.0]);
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn outlier_scores_highest() {
        let ds = grid_with_outlier();
        let scores = Lof::new(5).unwrap().score_all(&ds.full_matrix());
        let top = (0..scores.len())
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap();
        assert_eq!(top, 25);
        assert!(scores[25] > 2.0, "outlier LOF = {}", scores[25]);
    }

    #[test]
    fn uniform_cluster_scores_near_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let ds = Dataset::from_rows(rows).unwrap();
        let scores = Lof::new(15).unwrap().score_all(&ds.full_matrix());
        let interior_like = scores.iter().filter(|&&s| s < 1.4).count();
        assert!(
            interior_like > 150,
            "most uniform points should score near 1; got {interior_like}"
        );
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn varying_density_regions() {
        // A dense blob and a sparse blob; a point just outside the dense
        // blob must out-score points inside either blob (LOF's signature
        // property vs global distance-based detectors).
        let mut rows = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..60 {
            rows.push(vec![rng.gen::<f64>() * 0.05, rng.gen::<f64>() * 0.05]);
        }
        for _ in 0..60 {
            rows.push(vec![
                5.0 + rng.gen::<f64>() * 2.0,
                5.0 + rng.gen::<f64>() * 2.0,
            ]);
        }
        let probe = rows.len();
        rows.push(vec![0.4, 0.4]); // near the dense blob but outside it
        let ds = Dataset::from_rows(rows).unwrap();
        let scores = Lof::new(10).unwrap().score_all(&ds.full_matrix());
        let max_inlier = scores[..probe]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            scores[probe] > max_inlier,
            "probe {} vs max inlier {}",
            scores[probe],
            max_inlier
        );
    }

    #[test]
    fn duplicates_do_not_produce_nan() {
        let rows = vec![vec![1.0, 1.0]; 10];
        let ds = Dataset::from_rows(rows).unwrap();
        let scores = Lof::new(3).unwrap().score_all(&ds.full_matrix());
        assert!(scores.iter().all(|s| s.is_finite()));
        // All duplicates are equally (non-)outlying.
        for w in scores.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn translation_and_scale_invariance() {
        let ds = grid_with_outlier();
        let base = Lof::new(5).unwrap().score_all(&ds.full_matrix());
        // Affine-transform every coordinate: LOF ratios are invariant.
        let transformed = Dataset::from_rows(
            (0..ds.n_rows())
                .map(|i| ds.row(i).iter().map(|v| v * 3.0 + 7.0).collect())
                .collect(),
        )
        .unwrap();
        let scaled = Lof::new(5).unwrap().score_all(&transformed.full_matrix());
        for (a, b) in base.iter().zip(&scaled) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_zero_k() {
        assert!(Lof::new(0).is_err());
    }

    #[test]
    fn fitted_model_is_bit_identical_to_score_all() {
        let ds = grid_with_outlier();
        let m = ds.full_matrix();
        let lof = Lof::new(5).unwrap();
        let fitted = FittedLof::fit(lof, &m);
        assert_eq!(fitted.score_fit_rows(), lof.score_all(&m));
        assert_eq!(fitted.n_rows(), m.n_rows());
        // The trait entry point produces the same frozen model.
        let via_trait = Detector::fit(&lof, &m).expect("LOF has a fit path");
        assert_eq!(via_trait.score_fit_rows(), lof.score_all(&m));
        assert_eq!(via_trait.name(), "LOF");
    }

    #[test]
    fn kdtree_backend_agrees_with_brute_force() {
        // Use tie-free continuous data: under exact distance ties the two
        // backends may legitimately select different (equidistant)
        // neighbours.
        let mut rng = StdRng::seed_from_u64(12);
        let rows: Vec<Vec<f64>> = (0..150)
            .map(|_| vec![rng.gen(), rng.gen(), rng.gen()])
            .collect();
        let ds = Dataset::from_rows(rows).unwrap();
        let brute = Lof::new(5).unwrap().score_all(&ds.full_matrix());
        let tree = Lof::new(5)
            .unwrap()
            .with_backend(NeighborBackend::KdTree)
            .score_all(&ds.full_matrix());
        for (a, b) in brute.iter().zip(&tree) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn append_then_score_equals_refit_then_score() {
        let mut rng = StdRng::seed_from_u64(23);
        let rows: Vec<Vec<f64>> = (0..120).map(|_| vec![rng.gen(), rng.gen()]).collect();
        let old = Dataset::from_rows(rows[..100].to_vec())
            .unwrap()
            .full_matrix();
        let added = Dataset::from_rows(rows[100..].to_vec())
            .unwrap()
            .full_matrix();
        let all = Dataset::from_rows(rows).unwrap().full_matrix();
        let lof = Lof::new(15).unwrap();
        let fitted = FittedLof::fit(lof, &old);
        let appended = FittedModel::append_rows(&fitted, &added).expect("exact LOF appends");
        assert_eq!(appended.n_rows(), all.n_rows());
        assert_eq!(appended.score_fit_rows(), lof.score_all(&all));
        assert_eq!(
            appended.score_fit_rows(),
            FittedLof::fit(lof, &all).score_fit_rows()
        );
        // Dim mismatch is refused, empty appends are identity.
        let wrong = Dataset::from_rows(vec![vec![1.0]]).unwrap().full_matrix();
        assert!(FittedModel::append_rows(&fitted, &wrong).is_none());
    }
}
