//! Exact k-nearest-neighbour search over a projected matrix.
//!
//! LOF and Fast ABOD both start from the same kNN structure, computed
//! here with a brute-force O(N²·d) scan — the same asymptotics as the
//! reference implementations the paper used (scikit-learn LOF, PyOD
//! FastABOD), and the realistic regime for the ~1000-point datasets of
//! the testbed where subspace *count*, not dataset size, dominates cost.

use crate::kdtree::KdTree;
use anomex_dataset::view::sq_dist;
use anomex_dataset::ProjectedMatrix;
use anomex_stats::rank::bottom_k_asc;

/// Which exact-kNN implementation a detector should use.
///
/// Both backends return identical distances; neighbour *identities* may
/// differ between backends only under exact distance ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KnnBackend {
    /// O(N²·d) scan — the reference implementation and the default.
    #[default]
    BruteForce,
    /// k-d tree — typically faster in the 2–5d projections subspace
    /// search lives in.
    KdTree,
}

/// k-nearest neighbours of every row: `neighbors[i]` are the indices of
/// the `k` rows closest to row `i` (self excluded), ascending by
/// distance; `distances[i]` are the matching Euclidean distances.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnTable {
    /// Neighbour indices per row, ascending by distance.
    pub neighbors: Vec<Vec<usize>>,
    /// Euclidean distances per row, aligned with `neighbors`.
    pub distances: Vec<Vec<f64>>,
    /// The `k` used (may be smaller than requested when the dataset has
    /// fewer than `k + 1` rows).
    pub k: usize,
}

impl KnnTable {
    /// Distance of row `i` to its k-th nearest neighbour
    /// (LOF's `k-dist`).
    #[must_use]
    pub fn k_dist(&self, i: usize) -> f64 {
        *self.distances[i].last().expect("k >= 1")
    }
}

/// Computes the kNN table of `data` with the chosen backend.
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table_with(data: &ProjectedMatrix, k: usize, backend: KnnBackend) -> KnnTable {
    match backend {
        KnnBackend::BruteForce => knn_table(data, k),
        KnnBackend::KdTree => {
            let n = data.n_rows();
            assert!(n >= 2, "kNN needs at least two rows");
            assert!(k >= 1, "k must be at least 1");
            let k = k.min(n - 1);
            let tree = KdTree::build(data);
            let mut neighbors = Vec::with_capacity(n);
            let mut distances = Vec::with_capacity(n);
            for i in 0..n {
                let nn = tree.knn(data.row(i), k, Some(i));
                neighbors.push(nn.iter().map(|&(id, _)| id).collect());
                distances.push(nn.iter().map(|&(_, d)| d.sqrt()).collect());
            }
            KnnTable {
                neighbors,
                distances,
                k,
            }
        }
    }
}

/// Computes the kNN table of `data` with `k` clamped to `n_rows − 1`
/// (brute-force backend).
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table(data: &ProjectedMatrix, k: usize) -> KnnTable {
    let n = data.n_rows();
    assert!(n >= 2, "kNN needs at least two rows");
    assert!(k >= 1, "k must be at least 1");
    let k = k.min(n - 1);

    let mut neighbors = Vec::with_capacity(n);
    let mut distances = Vec::with_capacity(n);
    let mut row_dists = vec![0.0f64; n];
    for i in 0..n {
        let ri = data.row(i);
        for (j, dj) in row_dists.iter_mut().enumerate() {
            *dj = if i == j {
                f64::INFINITY // exclude self
            } else {
                sq_dist(ri, data.row(j))
            };
        }
        let idx = bottom_k_asc(&row_dists, k);
        let d: Vec<f64> = idx.iter().map(|&j| row_dists[j].sqrt()).collect();
        neighbors.push(idx);
        distances.push(d);
    }
    KnnTable {
        neighbors,
        distances,
        k,
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;

    fn line() -> ProjectedMatrix {
        // Points on a line at x = 0, 1, 2, 10.
        Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
            .unwrap()
            .full_matrix()
    }

    #[test]
    fn finds_nearest() {
        let t = knn_table(&line(), 2);
        assert_eq!(t.neighbors[0], vec![1, 2]);
        assert_eq!(t.distances[0], vec![1.0, 2.0]);
        assert_eq!(t.neighbors[3], vec![2, 1]);
        assert_eq!(t.distances[3], vec![8.0, 9.0]);
        assert_eq!(t.k_dist(0), 2.0);
    }

    #[test]
    fn clamps_k() {
        let t = knn_table(&line(), 100);
        assert_eq!(t.k, 3);
        assert_eq!(t.neighbors[0].len(), 3);
    }

    #[test]
    fn excludes_self_even_with_duplicates() {
        let m = Dataset::from_rows(vec![vec![1.0], vec![1.0], vec![1.0]])
            .unwrap()
            .full_matrix();
        let t = knn_table(&m, 2);
        for i in 0..3 {
            assert!(!t.neighbors[i].contains(&i));
            assert_eq!(t.distances[i], vec![0.0, 0.0]);
        }
    }

    #[test]
    fn distances_sorted_ascending() {
        let m = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![1.0, 1.0],
            vec![-2.0, 0.5],
        ])
        .unwrap()
        .full_matrix();
        let t = knn_table(&m, 3);
        for d in &t.distances {
            for w in d.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn kdtree_backend_matches_brute_force_distances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen(), rng.gen(), rng.gen()])
            .collect();
        let m = Dataset::from_rows(rows).unwrap().full_matrix();
        let brute = knn_table_with(&m, 10, KnnBackend::BruteForce);
        let tree = knn_table_with(&m, 10, KnnBackend::KdTree);
        assert_eq!(brute.k, tree.k);
        for i in 0..m.n_rows() {
            for (a, b) in brute.distances[i].iter().zip(&tree.distances[i]) {
                assert!((a - b).abs() < 1e-12, "row {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two rows")]
    fn rejects_single_row() {
        let m = Dataset::from_rows(vec![vec![0.0]]).unwrap().full_matrix();
        let _ = knn_table(&m, 1);
    }
}
