//! Exact k-nearest-neighbour search over a projected matrix.
//!
//! LOF and Fast ABOD both start from the same kNN structure. The
//! production path ([`knn_table`]) runs the blocked norm-trick kernel
//! of [`crate::kernels`] with parallel row blocks — same O(N²·d)
//! asymptotics as the reference implementations the paper used
//! (scikit-learn LOF, PyOD FastABOD), but with contiguous,
//! allocation-free inner loops. The sequential row-by-row scan survives
//! as [`crate::kernels::knn_table_naive`], the reference the
//! equivalence tests and benches compare against.

use crate::kdtree::{KdScratch, KdTree};
use crate::kernels;
use anomex_dataset::view::dot;
use anomex_dataset::ProjectedMatrix;
use anomex_parallel::par_chunk_flat_map;

pub use anomex_spec::{NeighborBackend, Precision};

/// Rows per parallel work item of the kd-tree query and append-merge
/// loops.
const QUERY_CHUNK: usize = 32;

/// k-nearest neighbours of every row in a flat, `k`-strided layout:
/// row `i`'s neighbours and distances live at `[i * k, (i + 1) * k)` of
/// one contiguous buffer each, ascending by distance, self excluded.
///
/// ```
/// use anomex_dataset::Dataset;
/// use anomex_detectors::knn::knn_table;
/// let m = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![3.0]])
///     .unwrap()
///     .full_matrix();
/// let t = knn_table(&m, 2);
/// assert_eq!(t.neighbors(0), &[1, 2]);
/// assert_eq!(t.distances(0), &[1.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KnnTable {
    /// Flat neighbour indices, `n_rows × k`, ascending by distance.
    neighbors: Vec<usize>,
    /// Flat Euclidean distances, aligned with `neighbors`.
    distances: Vec<f64>,
    n_rows: usize,
    k: usize,
}

impl KnnTable {
    /// Wraps flat `n_rows × k` neighbour/distance buffers.
    ///
    /// # Panics
    /// Panics when either buffer's length differs from `n_rows * k`.
    #[must_use]
    pub fn from_flat(neighbors: Vec<usize>, distances: Vec<f64>, n_rows: usize, k: usize) -> Self {
        assert_eq!(neighbors.len(), n_rows * k, "neighbor buffer length");
        assert_eq!(distances.len(), n_rows * k, "distance buffer length");
        KnnTable {
            neighbors,
            distances,
            n_rows,
            k,
        }
    }

    /// Number of rows the table covers.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The `k` used (may be smaller than requested when the dataset has
    /// fewer than `k + 1` rows).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Neighbour indices of row `i`, ascending by distance.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.neighbors[i * self.k..(i + 1) * self.k]
    }

    /// Euclidean distances of row `i` to its neighbours, ascending.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn distances(&self, i: usize) -> &[f64] {
        &self.distances[i * self.k..(i + 1) * self.k]
    }

    /// Distance of row `i` to its k-th nearest neighbour
    /// (LOF's `k-dist`).
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn k_dist(&self, i: usize) -> f64 {
        self.distances[(i + 1) * self.k - 1]
    }
}

/// Computes the kNN table of `data` with the chosen backend. `Auto`
/// resolves to a concrete backend from the data shape
/// ([`NeighborBackend::resolve`]) before dispatching.
///
/// `Exact` and `KdTree` return identical distances; neighbour
/// *identities* may differ between them only under exact distance
/// ties. `Approx` may miss true neighbours on adversarial data (its
/// recall/MAP-drift envelope is pinned by the [`crate::approx`]
/// tests) and falls back to the exact kernel below
/// [`NeighborBackend::APPROX_MIN_ROWS`] rows.
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table_with(data: &ProjectedMatrix, k: usize, backend: NeighborBackend) -> KnnTable {
    knn_table_with_precision(data, k, backend, Precision::F64)
}

/// [`knn_table_with`] plus the storage-precision knob. `F32` takes the
/// half-width blocked kernel ([`kernels::knn_table_blocked_f32`]) when
/// the backend resolves to `Exact`; the kd-tree and approximate
/// backends have no f32 storage layout and keep their f64 paths, so a
/// non-exact backend silently gets full precision rather than a
/// different algorithm. `F64` is byte-identical to [`knn_table_with`].
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table_with_precision(
    data: &ProjectedMatrix,
    k: usize,
    backend: NeighborBackend,
    precision: Precision,
) -> KnnTable {
    match (backend.resolve(data.n_rows(), data.dim()), precision) {
        (NeighborBackend::Exact, Precision::F32) => kernels::knn_table_blocked_f32(data, k),
        (NeighborBackend::Exact, Precision::F64) => knn_table(data, k),
        (NeighborBackend::KdTree, _) => knn_table_kdtree(data, k),
        (NeighborBackend::Approx, _) => crate::approx::knn_table_approx(data, k),
        // `resolve` never returns `Auto`; exact is the safe identity.
        (NeighborBackend::Auto, Precision::F32) => kernels::knn_table_blocked_f32(data, k),
        (NeighborBackend::Auto, Precision::F64) => knn_table(data, k),
    }
}

/// Computes the kNN table by querying a freshly built kd-tree with
/// every row, parallel over row chunks. Same distances as the exact
/// kernel; tie order between equidistant neighbours is unspecified.
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table_kdtree(data: &ProjectedMatrix, k: usize) -> KnnTable {
    let n = data.n_rows();
    assert!(n >= 2, "kNN needs at least two rows");
    assert!(k >= 1, "k must be at least 1");
    let k = k.min(n - 1);
    let tree = KdTree::build(data);
    let tree_ref = &tree;
    // Query rows in leaf order, not row order: consecutive queries
    // then share most of their tree path and reuse hot leaf blocks.
    // Results come back leaf-ordered and are scattered into row order
    // below — an O(n·k) pass that the locality win dwarfs.
    let order = tree.row_order();
    let flat: Vec<(usize, f64)> = par_chunk_flat_map(n, QUERY_CHUNK, |start, end| {
        let mut part = Vec::with_capacity((end - start) * k);
        let mut scratch = KdScratch::new();
        let mut nn = Vec::with_capacity(k);
        for &row in &order[start..end] {
            let i = row as usize;
            tree_ref.knn_into(data.row(i), k, Some(i), &mut scratch, &mut nn);
            part.extend(nn.iter().map(|&(id, d)| (id, d.sqrt())));
        }
        part
    });
    let mut neighbors = vec![0usize; n * k];
    let mut distances = vec![0.0f64; n * k];
    for (p, &row) in order.iter().enumerate() {
        let dst = row as usize * k;
        for (j, &(id, d)) in flat[p * k..(p + 1) * k].iter().enumerate() {
            neighbors[dst + j] = id;
            distances[dst + j] = d;
        }
    }
    KnnTable::from_flat(neighbors, distances, n, k)
}

/// Extends an **exact-backend** kNN table to cover `extended` — the fit
/// matrix the table was built on with new rows appended below it —
/// without rescanning old-row × old-row pairs.
///
/// Correctness rests on a superset argument: an old row's new top-k
/// neighbour set can only contain old rows that were already in its
/// stored top-k (any old row ranked ≤ k among all rows is ranked ≤ k
/// among old rows alone; when the stored k was clamped to
/// `old_n − 1`, *every* old row is stored), so per old row it suffices
/// to re-rank `stored neighbours ∪ appended rows`. Appended rows get a
/// full scan. Distances are recomputed from coordinates with the exact
/// arithmetic of the blocked kernel (`‖a‖² + ‖b‖² − 2⟨a,b⟩`, ascending
/// feature order, clamped at 0) and selected by the same
/// `(value, index)` order, so the result is **bit-identical** to
/// refitting on `extended` — the property the append-equivalence tests
/// pin. Cost: O(old_n · (k + added)) + O(added · n) instead of O(n²).
///
/// # Panics
/// Panics when `extended` has fewer rows than `old` covers or `k == 0`.
#[must_use]
pub fn merge_knn_exact(old: &KnnTable, extended: &ProjectedMatrix, k: usize) -> KnnTable {
    let old_n = old.n_rows();
    let new_n = extended.n_rows();
    assert!(new_n >= old_n, "extended matrix must contain the old rows");
    assert!(new_n >= 2, "kNN needs at least two rows");
    assert!(k >= 1, "k must be at least 1");
    let k = k.min(new_n - 1);
    let mut sq_norms = Vec::new();
    extended.sq_norms_into(&mut sq_norms);
    let norms = &sq_norms;
    let flat: Vec<(usize, f64)> = par_chunk_flat_map(new_n, QUERY_CHUNK, |start, end| {
        let mut pairs: Vec<(f64, usize)> = Vec::new();
        let mut part = Vec::with_capacity((end - start) * k);
        for i in start..end {
            let ri = extended.row(i);
            pairs.clear();
            let sq_to = |j: usize| (norms[i] + norms[j] - 2.0 * dot(ri, extended.row(j))).max(0.0);
            if i < old_n {
                // Old row: stored neighbours plus every appended row.
                pairs.extend(old.neighbors(i).iter().map(|&j| (sq_to(j), j)));
                pairs.extend((old_n..new_n).map(|j| (sq_to(j), j)));
            } else {
                // Appended row: full scan.
                pairs.extend((0..new_n).filter(|&j| j != i).map(|j| (sq_to(j), j)));
            }
            pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            part.extend(pairs.iter().take(k).map(|&(v, j)| (j, v.sqrt())));
        }
        part
    });
    let neighbors = flat.iter().map(|&(id, _)| id).collect();
    let distances = flat.iter().map(|&(_, d)| d).collect();
    KnnTable::from_flat(neighbors, distances, new_n, k)
}

/// Computes the kNN table of `data` with `k` clamped to `n_rows − 1`
/// (blocked brute-force kernel, parallel row blocks).
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table(data: &ProjectedMatrix, k: usize) -> KnnTable {
    kernels::knn_table_blocked(data, k)
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;

    fn line() -> ProjectedMatrix {
        // Points on a line at x = 0, 1, 2, 10.
        Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
            .unwrap()
            .full_matrix()
    }

    #[test]
    fn finds_nearest() {
        let t = knn_table(&line(), 2);
        assert_eq!(t.neighbors(0), &[1, 2]);
        assert_eq!(t.distances(0), &[1.0, 2.0]);
        assert_eq!(t.neighbors(3), &[2, 1]);
        assert_eq!(t.distances(3), &[8.0, 9.0]);
        assert_eq!(t.k_dist(0), 2.0);
    }

    #[test]
    fn clamps_k() {
        let t = knn_table(&line(), 100);
        assert_eq!(t.k(), 3);
        assert_eq!(t.neighbors(0).len(), 3);
    }

    #[test]
    fn excludes_self_even_with_duplicates() {
        let m = Dataset::from_rows(vec![vec![1.0], vec![1.0], vec![1.0]])
            .unwrap()
            .full_matrix();
        let t = knn_table(&m, 2);
        for i in 0..3 {
            assert!(!t.neighbors(i).contains(&i));
            assert_eq!(t.distances(i), &[0.0, 0.0]);
        }
    }

    #[test]
    fn distances_sorted_ascending() {
        let m = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![1.0, 1.0],
            vec![-2.0, 0.5],
        ])
        .unwrap()
        .full_matrix();
        let t = knn_table(&m, 3);
        for i in 0..4 {
            for w in t.distances(i).windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn kdtree_backend_matches_brute_force_distances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen(), rng.gen(), rng.gen()])
            .collect();
        let m = Dataset::from_rows(rows).unwrap().full_matrix();
        let brute = knn_table_with(&m, 10, NeighborBackend::Exact);
        let tree = knn_table_with(&m, 10, NeighborBackend::KdTree);
        assert_eq!(brute.k(), tree.k());
        for i in 0..m.n_rows() {
            for (a, b) in brute.distances(i).iter().zip(tree.distances(i)) {
                assert!((a - b).abs() < 1e-9, "row {i}");
            }
        }
    }

    #[test]
    fn auto_backend_resolves_from_the_data_shape() {
        // Tiny low-dim data: auto must land on the exact kernel and be
        // bit-identical to it.
        let m = line();
        let auto = knn_table_with(&m, 2, NeighborBackend::Auto);
        let exact = knn_table_with(&m, 2, NeighborBackend::Exact);
        assert_eq!(auto, exact);
        assert_eq!(
            NeighborBackend::Auto.resolve(m.n_rows(), m.dim()),
            NeighborBackend::Exact
        );
    }

    #[test]
    fn kdtree_handles_degenerate_inputs_like_exact() {
        // All-duplicate rows, a constant column, k ≥ n_rows, and a
        // two-row matrix: distances must match the exact kernel.
        let cases: Vec<(ProjectedMatrix, usize)> = vec![
            (
                Dataset::from_rows(vec![vec![2.0, 2.0]; 7])
                    .unwrap()
                    .full_matrix(),
                3,
            ),
            (
                Dataset::from_rows((0..9).map(|i| vec![f64::from(i), 5.0]).collect())
                    .unwrap()
                    .full_matrix(),
                4,
            ),
            (line(), 100),
            (
                Dataset::from_rows(vec![vec![0.0], vec![1.0]])
                    .unwrap()
                    .full_matrix(),
                1,
            ),
        ];
        for (m, k) in cases {
            let exact = knn_table_with(&m, k, NeighborBackend::Exact);
            let tree = knn_table_with(&m, k, NeighborBackend::KdTree);
            assert_eq!(exact.k(), tree.k());
            for i in 0..m.n_rows() {
                for (a, b) in exact.distances(i).iter().zip(tree.distances(i)) {
                    assert!((a - b).abs() < 1e-12, "row {i}: {a} vs {b}");
                }
                assert!(!tree.neighbors(i).contains(&i), "self excluded at {i}");
            }
        }
    }

    fn split_rows(rows: Vec<Vec<f64>>, old_n: usize) -> (ProjectedMatrix, ProjectedMatrix) {
        let old = Dataset::from_rows(rows[..old_n].to_vec())
            .unwrap()
            .full_matrix();
        let all = Dataset::from_rows(rows).unwrap().full_matrix();
        (old, all)
    }

    #[test]
    fn merge_is_bit_identical_to_refit() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(97);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.gen(), rng.gen(), rng.gen()])
            .collect();
        for k in [1, 5, 15] {
            let (old_m, all_m) = split_rows(rows.clone(), 260);
            let old = knn_table(&old_m, k);
            let merged = merge_knn_exact(&old, &all_m, k);
            let refit = knn_table(&all_m, k);
            assert_eq!(merged, refit, "k = {k}");
        }
    }

    #[test]
    fn merge_grows_clamped_k_and_handles_duplicates() {
        // Old table clamped to k = old_n − 1 = 2; after the append the
        // clamp loosens to 4 and every row (including exact duplicates)
        // must match a fresh refit bit for bit.
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.0, 0.0],
        ];
        let (old_m, all_m) = split_rows(rows, 3);
        let old = knn_table(&old_m, 4);
        assert_eq!(old.k(), 2);
        let merged = merge_knn_exact(&old, &all_m, 4);
        let refit = knn_table(&all_m, 4);
        assert_eq!(merged, refit);
        assert_eq!(merged.k(), 4);
    }

    #[test]
    #[should_panic(expected = "at least two rows")]
    fn rejects_single_row() {
        let m = Dataset::from_rows(vec![vec![0.0]]).unwrap().full_matrix();
        let _ = knn_table(&m, 1);
    }
}
