//! Exact k-nearest-neighbour search over a projected matrix.
//!
//! LOF and Fast ABOD both start from the same kNN structure. The
//! production path ([`knn_table`]) runs the blocked norm-trick kernel
//! of [`crate::kernels`] with parallel row blocks — same O(N²·d)
//! asymptotics as the reference implementations the paper used
//! (scikit-learn LOF, PyOD FastABOD), but with contiguous,
//! allocation-free inner loops. The sequential row-by-row scan survives
//! as [`crate::kernels::knn_table_naive`], the reference the
//! equivalence tests and benches compare against.

use crate::kdtree::KdTree;
use crate::kernels;
use anomex_dataset::ProjectedMatrix;
use anomex_parallel::par_chunk_flat_map;

/// Which exact-kNN implementation a detector should use.
///
/// Both backends return identical distances; neighbour *identities* may
/// differ between backends only under exact distance ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KnnBackend {
    /// Blocked O(N²·d) scan — the reference semantics and the default.
    #[default]
    BruteForce,
    /// k-d tree — typically faster in the 2–5d projections subspace
    /// search lives in.
    KdTree,
}

/// k-nearest neighbours of every row in a flat, `k`-strided layout:
/// row `i`'s neighbours and distances live at `[i * k, (i + 1) * k)` of
/// one contiguous buffer each, ascending by distance, self excluded.
///
/// ```
/// use anomex_dataset::Dataset;
/// use anomex_detectors::knn::knn_table;
/// let m = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![3.0]])
///     .unwrap()
///     .full_matrix();
/// let t = knn_table(&m, 2);
/// assert_eq!(t.neighbors(0), &[1, 2]);
/// assert_eq!(t.distances(0), &[1.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KnnTable {
    /// Flat neighbour indices, `n_rows × k`, ascending by distance.
    neighbors: Vec<usize>,
    /// Flat Euclidean distances, aligned with `neighbors`.
    distances: Vec<f64>,
    n_rows: usize,
    k: usize,
}

impl KnnTable {
    /// Wraps flat `n_rows × k` neighbour/distance buffers.
    ///
    /// # Panics
    /// Panics when either buffer's length differs from `n_rows * k`.
    #[must_use]
    pub fn from_flat(neighbors: Vec<usize>, distances: Vec<f64>, n_rows: usize, k: usize) -> Self {
        assert_eq!(neighbors.len(), n_rows * k, "neighbor buffer length");
        assert_eq!(distances.len(), n_rows * k, "distance buffer length");
        KnnTable {
            neighbors,
            distances,
            n_rows,
            k,
        }
    }

    /// Number of rows the table covers.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The `k` used (may be smaller than requested when the dataset has
    /// fewer than `k + 1` rows).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Neighbour indices of row `i`, ascending by distance.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.neighbors[i * self.k..(i + 1) * self.k]
    }

    /// Euclidean distances of row `i` to its neighbours, ascending.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn distances(&self, i: usize) -> &[f64] {
        &self.distances[i * self.k..(i + 1) * self.k]
    }

    /// Distance of row `i` to its k-th nearest neighbour
    /// (LOF's `k-dist`).
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn k_dist(&self, i: usize) -> f64 {
        self.distances[(i + 1) * self.k - 1]
    }
}

/// Computes the kNN table of `data` with the chosen backend.
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table_with(data: &ProjectedMatrix, k: usize, backend: KnnBackend) -> KnnTable {
    match backend {
        KnnBackend::BruteForce => knn_table(data, k),
        KnnBackend::KdTree => {
            let n = data.n_rows();
            assert!(n >= 2, "kNN needs at least two rows");
            assert!(k >= 1, "k must be at least 1");
            let k = k.min(n - 1);
            let tree = KdTree::build(data);
            let tree_ref = &tree;
            let flat: Vec<(usize, f64)> = par_chunk_flat_map(n, 32, |start, end| {
                let mut part = Vec::with_capacity((end - start) * k);
                for i in start..end {
                    let nn = tree_ref.knn(data.row(i), k, Some(i));
                    part.extend(nn.iter().map(|&(id, d)| (id, d.sqrt())));
                }
                part
            });
            let neighbors = flat.iter().map(|&(id, _)| id).collect();
            let distances = flat.iter().map(|&(_, d)| d).collect();
            KnnTable::from_flat(neighbors, distances, n, k)
        }
    }
}

/// Computes the kNN table of `data` with `k` clamped to `n_rows − 1`
/// (blocked brute-force kernel, parallel row blocks).
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table(data: &ProjectedMatrix, k: usize) -> KnnTable {
    kernels::knn_table_blocked(data, k)
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;

    fn line() -> ProjectedMatrix {
        // Points on a line at x = 0, 1, 2, 10.
        Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]])
            .unwrap()
            .full_matrix()
    }

    #[test]
    fn finds_nearest() {
        let t = knn_table(&line(), 2);
        assert_eq!(t.neighbors(0), &[1, 2]);
        assert_eq!(t.distances(0), &[1.0, 2.0]);
        assert_eq!(t.neighbors(3), &[2, 1]);
        assert_eq!(t.distances(3), &[8.0, 9.0]);
        assert_eq!(t.k_dist(0), 2.0);
    }

    #[test]
    fn clamps_k() {
        let t = knn_table(&line(), 100);
        assert_eq!(t.k(), 3);
        assert_eq!(t.neighbors(0).len(), 3);
    }

    #[test]
    fn excludes_self_even_with_duplicates() {
        let m = Dataset::from_rows(vec![vec![1.0], vec![1.0], vec![1.0]])
            .unwrap()
            .full_matrix();
        let t = knn_table(&m, 2);
        for i in 0..3 {
            assert!(!t.neighbors(i).contains(&i));
            assert_eq!(t.distances(i), &[0.0, 0.0]);
        }
    }

    #[test]
    fn distances_sorted_ascending() {
        let m = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![1.0, 1.0],
            vec![-2.0, 0.5],
        ])
        .unwrap()
        .full_matrix();
        let t = knn_table(&m, 3);
        for i in 0..4 {
            for w in t.distances(i).windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn kdtree_backend_matches_brute_force_distances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen(), rng.gen(), rng.gen()])
            .collect();
        let m = Dataset::from_rows(rows).unwrap().full_matrix();
        let brute = knn_table_with(&m, 10, KnnBackend::BruteForce);
        let tree = knn_table_with(&m, 10, KnnBackend::KdTree);
        assert_eq!(brute.k(), tree.k());
        for i in 0..m.n_rows() {
            for (a, b) in brute.distances(i).iter().zip(tree.distances(i)) {
                assert!((a - b).abs() < 1e-9, "row {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two rows")]
    fn rejects_single_row() {
        let m = Dataset::from_rows(vec![vec![0.0]]).unwrap().full_matrix();
        let _ = knn_table(&m, 1);
    }
}
