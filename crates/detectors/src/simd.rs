//! Four-lane feature-blocked kernels behind the blocked distance and
//! angle paths, plus the opt-in f32 storage variant of the gathered
//! matrix.
//!
//! Two invariants govern everything in this module:
//!
//! 1. **f64 lanes are byte-stable.** Every fast f64 kernel performs,
//!    per output element, the *same sequence of roundings* as the
//!    scalar reference it replaces: features fold into each
//!    accumulator one at a time in ascending feature order, exactly
//!    like the reference loop. The blocking only changes *which*
//!    elements and features are in flight together (four features per
//!    accumulator read-modify-write, independent element chains that
//!    LLVM vectorizes), never the per-element operation order — so
//!    results are bit-identical and the golden artifacts need no
//!    re-blessing. The crosscheck suite pins this with `to_bits`
//!    equality.
//! 2. **f32 storage, f64 accumulation.** [`GatheredMatrixF32`] stores
//!    gathered columns as `f32` (half the kernel memory traffic) but
//!    widens every operand to `f64` before any multiply — the widening
//!    is exact, so the only error versus the f64 path is the one
//!    rounding per element at gather time. Squared norms are
//!    accumulated from the *widened* values in the same ascending
//!    feature order as the dot products, so for bitwise-duplicate rows
//!    the norm-trick cancellation `‖a‖² + ‖b‖² − 2⟨a,b⟩` is exact and
//!    duplicates still measure exactly `0.0`.
//!
//! The whole module is on the analyzer's STRICT_INDEX list: inner
//! loops are written with zip/slice patterns so no unchecked indexing
//! can panic mid-kernel.

use anomex_dataset::ProjectedMatrix;

/// Feature-block width: four features folded per accumulator pass.
pub const LANES: usize = 4;

/// Folds four features into the accumulators:
/// `acc[j] += a0·c0[j]; acc[j] += a1·c1[j]; acc[j] += a2·c2[j];
/// acc[j] += a3·c3[j]` — four *sequential* adds per element (the same
/// roundings, in the same ascending-feature order, as four scalar
/// passes) but only one accumulator read-modify-write per element
/// instead of four.
///
/// The loop body is a straight-line chain over a multi-way zip on
/// purpose: each element's chain is independent, so LLVM vectorizes
/// the element dimension, and a whole quad of features flows through
/// one register-resident accumulator. (An earlier hand-unrolled
/// `chunks_exact` version of this loop pattern-matched worse and
/// benchmarked *slower* than the scalar reference.)
///
/// Columns shorter than `acc` truncate the pass (the kernels always
/// pass equal lengths; the zip just makes that unable to panic).
pub(crate) fn axpy4(acc: &mut [f64], lanes: [f64; 4], cols: [&[f64]; 4]) {
    let [a0, a1, a2, a3] = lanes;
    let [c0, c1, c2, c3] = cols;
    let iter = acc.iter_mut().zip(c0).zip(c1).zip(c2).zip(c3);
    for ((((s, &p), &r), &u), &w) in iter {
        let mut t = *s;
        t += a0 * p;
        t += a1 * r;
        t += a2 * u;
        t += a3 * w;
        *s = t;
    }
}

/// Single-feature remainder pass: `acc[j] += a·col[j]` — identical to
/// one pass of the scalar reference loop.
pub(crate) fn axpy1(acc: &mut [f64], a: f64, col: &[f64]) {
    for (s, &v) in acc.iter_mut().zip(col) {
        *s += a * v;
    }
}

/// The f32-storage twin of [`axpy4`]: identical shape and per-element
/// rounding order, with every `f32` operand widened (exactly) to `f64`
/// before its multiply.
pub(crate) fn axpy4_f32(acc: &mut [f64], lanes: [f64; 4], cols: [&[f32]; 4]) {
    let [a0, a1, a2, a3] = lanes;
    let [c0, c1, c2, c3] = cols;
    let iter = acc.iter_mut().zip(c0).zip(c1).zip(c2).zip(c3);
    for ((((s, &p), &r), &u), &w) in iter {
        let mut t = *s;
        t += a0 * f64::from(p);
        t += a1 * f64::from(r);
        t += a2 * f64::from(u);
        t += a3 * f64::from(w);
        *s = t;
    }
}

/// Single-feature f32 remainder pass with exact widening.
pub(crate) fn axpy1_f32(acc: &mut [f64], a: f64, col: &[f32]) {
    for (s, &v) in acc.iter_mut().zip(col) {
        *s += a * f64::from(v);
    }
}

/// The norm-trick finish pass shared by both storage precisions:
/// `acc[j] ← max(nsq_i + nsq[j] − 2·acc[j], 0)`. Byte-identical to the
/// historical in-place finish of the blocked kernel.
pub(crate) fn finish_norm_trick(acc: &mut [f64], nsq_i: f64, sq_norms: &[f64]) {
    for (s, &nsq_j) in acc.iter_mut().zip(sq_norms) {
        *s = (nsq_i + nsq_j - 2.0 * *s).max(0.0);
    }
}

/// Last-feature pass with the norm-trick finish fused in: per element,
/// the final `acc[j] += a·col[j]` rounding happens first and the
/// finish expression second — exactly the sequence the split
/// [`axpy1`] + [`finish_norm_trick`] pair performs, minus one full
/// accumulator round-trip.
pub(crate) fn axpy1_finish(acc: &mut [f64], a: f64, col: &[f64], nsq_i: f64, sq_norms: &[f64]) {
    for ((s, &v), &nsq_j) in acc.iter_mut().zip(col).zip(sq_norms) {
        let t = *s + a * v;
        *s = (nsq_i + nsq_j - 2.0 * t).max(0.0);
    }
}

/// Last-quad pass with the finish fused in: the four feature adds land
/// in ascending order, then the finish — the same per-element rounding
/// sequence as [`axpy4`] followed by [`finish_norm_trick`].
pub(crate) fn axpy4_finish(
    acc: &mut [f64],
    lanes: [f64; 4],
    cols: [&[f64]; 4],
    nsq_i: f64,
    sq_norms: &[f64],
) {
    let [a0, a1, a2, a3] = lanes;
    let [c0, c1, c2, c3] = cols;
    let iter = acc.iter_mut().zip(c0).zip(c1).zip(c2).zip(c3).zip(sq_norms);
    for (((((s, &p), &r), &u), &w), &nsq_j) in iter {
        let mut t = *s;
        t += a0 * p;
        t += a1 * r;
        t += a2 * u;
        t += a3 * w;
        *s = (nsq_i + nsq_j - 2.0 * t).max(0.0);
    }
}

/// Five-feature tail pass with the finish fused in: a quad plus one
/// remainder feature fold in ascending order, then the norm trick —
/// one accumulator round-trip for the whole tail of a `dim ≡ 1 (mod
/// 4)` kernel (e.g. the paper's d = 5 subspaces).
pub(crate) fn axpy5_finish(
    acc: &mut [f64],
    lanes: [f64; 5],
    cols: [&[f64]; 5],
    nsq_i: f64,
    sq_norms: &[f64],
) {
    let [a0, a1, a2, a3, a4] = lanes;
    let [c0, c1, c2, c3, c4] = cols;
    let iter = acc
        .iter_mut()
        .zip(c0)
        .zip(c1)
        .zip(c2)
        .zip(c3)
        .zip(c4)
        .zip(sq_norms);
    for ((((((s, &p), &r), &u), &w), &x), &nsq_j) in iter {
        let mut t = *s;
        t += a0 * p;
        t += a1 * r;
        t += a2 * u;
        t += a3 * w;
        t += a4 * x;
        *s = (nsq_i + nsq_j - 2.0 * t).max(0.0);
    }
}

/// Six-feature tail pass with the finish fused in (`dim ≡ 2 (mod 4)`).
pub(crate) fn axpy6_finish(
    acc: &mut [f64],
    lanes: [f64; 6],
    cols: [&[f64]; 6],
    nsq_i: f64,
    sq_norms: &[f64],
) {
    let [a0, a1, a2, a3, a4, a5] = lanes;
    let [c0, c1, c2, c3, c4, c5] = cols;
    let iter = acc
        .iter_mut()
        .zip(c0)
        .zip(c1)
        .zip(c2)
        .zip(c3)
        .zip(c4)
        .zip(c5)
        .zip(sq_norms);
    for (((((((s, &p), &r), &u), &w), &x), &y), &nsq_j) in iter {
        let mut t = *s;
        t += a0 * p;
        t += a1 * r;
        t += a2 * u;
        t += a3 * w;
        t += a4 * x;
        t += a5 * y;
        *s = (nsq_i + nsq_j - 2.0 * t).max(0.0);
    }
}

/// Seven-feature tail pass with the finish fused in (`dim ≡ 3 (mod 4)`).
pub(crate) fn axpy7_finish(
    acc: &mut [f64],
    lanes: [f64; 7],
    cols: [&[f64]; 7],
    nsq_i: f64,
    sq_norms: &[f64],
) {
    let [a0, a1, a2, a3, a4, a5, a6] = lanes;
    let [c0, c1, c2, c3, c4, c5, c6] = cols;
    let iter = acc
        .iter_mut()
        .zip(c0)
        .zip(c1)
        .zip(c2)
        .zip(c3)
        .zip(c4)
        .zip(c5)
        .zip(c6)
        .zip(sq_norms);
    for ((((((((s, &p), &r), &u), &w), &x), &y), &z), &nsq_j) in iter {
        let mut t = *s;
        t += a0 * p;
        t += a1 * r;
        t += a2 * u;
        t += a3 * w;
        t += a4 * x;
        t += a5 * y;
        t += a6 * z;
        *s = (nsq_i + nsq_j - 2.0 * t).max(0.0);
    }
}

/// f32 twin of [`axpy1_finish`] with exact widening.
pub(crate) fn axpy1_finish_f32(acc: &mut [f64], a: f64, col: &[f32], nsq_i: f64, sq_norms: &[f64]) {
    for ((s, &v), &nsq_j) in acc.iter_mut().zip(col).zip(sq_norms) {
        let t = *s + a * f64::from(v);
        *s = (nsq_i + nsq_j - 2.0 * t).max(0.0);
    }
}

/// f32 twin of [`axpy4_finish`] with exact widening.
pub(crate) fn axpy4_finish_f32(
    acc: &mut [f64],
    lanes: [f64; 4],
    cols: [&[f32]; 4],
    nsq_i: f64,
    sq_norms: &[f64],
) {
    let [a0, a1, a2, a3] = lanes;
    let [c0, c1, c2, c3] = cols;
    let iter = acc.iter_mut().zip(c0).zip(c1).zip(c2).zip(c3).zip(sq_norms);
    for (((((s, &p), &r), &u), &w), &nsq_j) in iter {
        let mut t = *s;
        t += a0 * f64::from(p);
        t += a1 * f64::from(r);
        t += a2 * f64::from(u);
        t += a3 * f64::from(w);
        *s = (nsq_i + nsq_j - 2.0 * t).max(0.0);
    }
}

/// Four dot products against a common left vector in one streaming
/// pass: `out[l] = ⟨a, b_l⟩`, each accumulated independently in
/// ascending feature order — bit-identical to four calls of the scalar
/// `dot` (which starts from `0.0` and folds ascending), but reading
/// `a` once instead of four times. The angle kernel batches neighbour
/// pairs through this.
pub(crate) fn dot4(a: &[f64], bs: [&[f64]; 4]) -> [f64; 4] {
    let [b0, b1, b2, b3] = bs;
    let (mut t0, mut t1, mut t2, mut t3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let quads = a
        .iter()
        .zip(b0.iter())
        .zip(b1.iter())
        .zip(b2.iter())
        .zip(b3.iter());
    for ((((&x, &y0), &y1), &y2), &y3) in quads {
        t0 += x * y0;
        t1 += x * y1;
        t2 += x * y2;
        t3 += x * y3;
    }
    [t0, t1, t2, t3]
}

/// f32 twin of [`axpy5_finish`] with exact widening.
pub(crate) fn axpy5_finish_f32(
    acc: &mut [f64],
    lanes: [f64; 5],
    cols: [&[f32]; 5],
    nsq_i: f64,
    sq_norms: &[f64],
) {
    let [a0, a1, a2, a3, a4] = lanes;
    let [c0, c1, c2, c3, c4] = cols;
    let iter = acc
        .iter_mut()
        .zip(c0)
        .zip(c1)
        .zip(c2)
        .zip(c3)
        .zip(c4)
        .zip(sq_norms);
    for ((((((s, &p), &r), &u), &w), &x), &nsq_j) in iter {
        let mut t = *s;
        t += a0 * f64::from(p);
        t += a1 * f64::from(r);
        t += a2 * f64::from(u);
        t += a3 * f64::from(w);
        t += a4 * f64::from(x);
        *s = (nsq_i + nsq_j - 2.0 * t).max(0.0);
    }
}

/// f32 twin of [`axpy6_finish`] with exact widening.
pub(crate) fn axpy6_finish_f32(
    acc: &mut [f64],
    lanes: [f64; 6],
    cols: [&[f32]; 6],
    nsq_i: f64,
    sq_norms: &[f64],
) {
    let [a0, a1, a2, a3, a4, a5] = lanes;
    let [c0, c1, c2, c3, c4, c5] = cols;
    let iter = acc
        .iter_mut()
        .zip(c0)
        .zip(c1)
        .zip(c2)
        .zip(c3)
        .zip(c4)
        .zip(c5)
        .zip(sq_norms);
    for (((((((s, &p), &r), &u), &w), &x), &y), &nsq_j) in iter {
        let mut t = *s;
        t += a0 * f64::from(p);
        t += a1 * f64::from(r);
        t += a2 * f64::from(u);
        t += a3 * f64::from(w);
        t += a4 * f64::from(x);
        t += a5 * f64::from(y);
        *s = (nsq_i + nsq_j - 2.0 * t).max(0.0);
    }
}

/// f32 twin of [`axpy7_finish`] with exact widening.
pub(crate) fn axpy7_finish_f32(
    acc: &mut [f64],
    lanes: [f64; 7],
    cols: [&[f32]; 7],
    nsq_i: f64,
    sq_norms: &[f64],
) {
    let [a0, a1, a2, a3, a4, a5, a6] = lanes;
    let [c0, c1, c2, c3, c4, c5, c6] = cols;
    let iter = acc
        .iter_mut()
        .zip(c0)
        .zip(c1)
        .zip(c2)
        .zip(c3)
        .zip(c4)
        .zip(c5)
        .zip(c6)
        .zip(sq_norms);
    for ((((((((s, &p), &r), &u), &w), &x), &y), &z), &nsq_j) in iter {
        let mut t = *s;
        t += a0 * f64::from(p);
        t += a1 * f64::from(r);
        t += a2 * f64::from(u);
        t += a3 * f64::from(w);
        t += a4 * f64::from(x);
        t += a5 * f64::from(y);
        t += a6 * f64::from(z);
        *s = (nsq_i + nsq_j - 2.0 * t).max(0.0);
    }
}

/// A column-major `f32` gather of a projected matrix with
/// double-precision squared norms — the opt-in storage layout behind
/// `precision=f32` kNN builds. Norms are accumulated from the widened
/// `f32` values in ascending feature order (the same order the dot
/// kernel uses), so the duplicate-row exact-zero guarantee of the f64
/// path carries over bit for bit.
pub struct GatheredMatrixF32 {
    /// Column-major values: `cols[t * n_rows + i]` is row `i`,
    /// feature `t`, rounded once to `f32` at gather time.
    cols: Vec<f32>,
    /// `‖row_i‖²` accumulated in f64 from the widened f32 values.
    sq_norms: Vec<f64>,
    n_rows: usize,
    dim: usize,
}

impl GatheredMatrixF32 {
    /// Gathers `data`, rounding each element to `f32` once
    /// (O(N·d), done once per kNN build).
    #[must_use]
    pub fn new(data: &ProjectedMatrix) -> Self {
        let mut wide = Vec::new();
        data.gather_columns_into(&mut wide);
        let n_rows = data.n_rows();
        let dim = data.dim();
        let cols: Vec<f32> = wide.iter().map(|&v| v as f32).collect();
        // Norms from the *rounded* values, folding features in
        // ascending order — the dot kernel's exact order, so identical
        // rows cancel bitwise in the norm trick.
        let mut sq_norms = vec![0.0f64; n_rows];
        for col in cols.chunks_exact(n_rows.max(1)) {
            for (s, &v) in sq_norms.iter_mut().zip(col) {
                let w = f64::from(v);
                *s += w * w;
            }
        }
        GatheredMatrixF32 {
            cols,
            sq_norms,
            n_rows,
            dim,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The double-precision squared norm of every row.
    #[must_use]
    pub fn sq_norms(&self) -> &[f64] {
        &self.sq_norms
    }

    /// One gathered column (empty when `t` is out of range — the
    /// kernels only ask for `t < dim`).
    #[must_use]
    pub fn column(&self, t: usize) -> &[f32] {
        let start = t.saturating_mul(self.n_rows);
        self.cols
            .get(start..start.saturating_add(self.n_rows))
            .unwrap_or(&[])
    }

    /// Writes the squared distances of rows `i0..i1` to *every* row
    /// into `out` (`out[(i − i0) * n_rows + j] = ‖row_i − row_j‖²`),
    /// mirroring `GatheredMatrix::sq_dists_block_into` with f32
    /// columns and f64 accumulation.
    ///
    /// # Panics
    /// Panics when the row range is invalid or `out` is too small.
    pub fn sq_dists_block_into(&self, i0: usize, i1: usize, out: &mut [f64]) {
        assert!(
            i0 <= i1 && i1 <= self.n_rows,
            "invalid row block {i0}..{i1}"
        );
        let n = self.n_rows;
        let rows = i1 - i0;
        assert!(out.len() >= rows * n, "output buffer too small");
        let Some(out) = out.get_mut(..rows * n) else {
            return; // unreachable: the assert above guarantees the range
        };
        out.fill(0.0);
        // Feature blocks of four, ascending; the remainder features
        // and the norm-trick finish fuse into one widened tail pass
        // (width 4–7), mirroring the f64 kernel — per output element
        // the accumulation order is ascending feature order, then the
        // finish.
        let dim = self.dim;
        if dim == 0 {
            for (bi, acc) in out.chunks_exact_mut(n).enumerate() {
                let nsq_i = self.sq_norms.get(i0 + bi).copied().unwrap_or(0.0);
                finish_norm_trick(acc, nsq_i, &self.sq_norms);
            }
            return;
        }
        let wide = |col: &[f32], i: usize| col.get(i).map_or(0.0, |&v| f64::from(v));
        if dim < LANES {
            for t in 0..dim {
                let col = self.column(t);
                let last = t + 1 == dim;
                for (bi, acc) in out.chunks_exact_mut(n).enumerate() {
                    let i = i0 + bi;
                    let a = wide(col, i);
                    if last {
                        let nsq_i = self.sq_norms.get(i).copied().unwrap_or(0.0);
                        axpy1_finish_f32(acc, a, col, nsq_i, &self.sq_norms);
                    } else {
                        axpy1_f32(acc, a, col);
                    }
                }
            }
            return;
        }
        let rem = dim % LANES;
        let tail_start = dim - LANES - rem;
        let mut t = 0;
        while t < tail_start {
            let c0 = self.column(t);
            let c1 = self.column(t + 1);
            let c2 = self.column(t + 2);
            let c3 = self.column(t + 3);
            for (bi, acc) in out.chunks_exact_mut(n).enumerate() {
                let i = i0 + bi;
                let lanes = [wide(c0, i), wide(c1, i), wide(c2, i), wide(c3, i)];
                axpy4_f32(acc, lanes, [c0, c1, c2, c3]);
            }
            t += LANES;
        }
        let ts = tail_start;
        let c0 = self.column(ts);
        let c1 = self.column(ts + 1);
        let c2 = self.column(ts + 2);
        let c3 = self.column(ts + 3);
        for (bi, acc) in out.chunks_exact_mut(n).enumerate() {
            let i = i0 + bi;
            let nsq_i = self.sq_norms.get(i).copied().unwrap_or(0.0);
            match rem {
                1 => {
                    let c4 = self.column(ts + 4);
                    axpy5_finish_f32(
                        acc,
                        [
                            wide(c0, i),
                            wide(c1, i),
                            wide(c2, i),
                            wide(c3, i),
                            wide(c4, i),
                        ],
                        [c0, c1, c2, c3, c4],
                        nsq_i,
                        &self.sq_norms,
                    );
                }
                2 => {
                    let c4 = self.column(ts + 4);
                    let c5 = self.column(ts + 5);
                    axpy6_finish_f32(
                        acc,
                        [
                            wide(c0, i),
                            wide(c1, i),
                            wide(c2, i),
                            wide(c3, i),
                            wide(c4, i),
                            wide(c5, i),
                        ],
                        [c0, c1, c2, c3, c4, c5],
                        nsq_i,
                        &self.sq_norms,
                    );
                }
                3 => {
                    let c4 = self.column(ts + 4);
                    let c5 = self.column(ts + 5);
                    let c6 = self.column(ts + 6);
                    axpy7_finish_f32(
                        acc,
                        [
                            wide(c0, i),
                            wide(c1, i),
                            wide(c2, i),
                            wide(c3, i),
                            wide(c4, i),
                            wide(c5, i),
                            wide(c6, i),
                        ],
                        [c0, c1, c2, c3, c4, c5, c6],
                        nsq_i,
                        &self.sq_norms,
                    );
                }
                _ => {
                    axpy4_finish_f32(
                        acc,
                        [wide(c0, i), wide(c1, i), wide(c2, i), wide(c3, i)],
                        [c0, c1, c2, c3],
                        nsq_i,
                        &self.sq_norms,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;

    fn deterministic_matrix(n: usize, d: usize) -> ProjectedMatrix {
        // Irrational-step lattice: dense, tie-free, no RNG dependency.
        Dataset::from_rows(
            (0..n)
                .map(|i| {
                    (0..d)
                        .map(|t| ((i * d + t) as f64 * 0.618_033_988_749).sin() * 7.5)
                        .collect()
                })
                .collect(),
        )
        .unwrap()
        .full_matrix()
    }

    #[test]
    fn axpy4_is_bitwise_four_scalar_passes() {
        for n in [1usize, 3, 4, 7, 16, 33] {
            let cols: Vec<Vec<f64>> = (0..4)
                .map(|c| (0..n).map(|j| ((c * n + j) as f64).sin() * 3.0).collect())
                .collect();
            let lanes = [1.25, -0.5, 0.75, 2.0];
            let mut fast = vec![0.125f64; n];
            let mut reference = fast.clone();
            let slices: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
            axpy4(
                &mut fast,
                lanes,
                [slices[0], slices[1], slices[2], slices[3]],
            );
            for (a, col) in lanes.iter().zip(&cols) {
                axpy1(&mut reference, *a, col);
            }
            assert!(
                fast.iter()
                    .zip(&reference)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "n = {n}"
            );
        }
    }

    #[test]
    fn dot4_is_bitwise_four_scalar_dots() {
        use anomex_dataset::view::dot;
        for d in [1usize, 2, 3, 4, 5, 8, 13] {
            let a: Vec<f64> = (0..d).map(|t| (t as f64 + 0.5).cos()).collect();
            let bs: Vec<Vec<f64>> = (0..4)
                .map(|c| (0..d).map(|t| ((c + 2) * (t + 1)) as f64 * 0.1).collect())
                .collect();
            let got = dot4(&a, [&bs[0][..], &bs[1][..], &bs[2][..], &bs[3][..]]);
            for (g, b) in got.iter().zip(&bs) {
                assert_eq!(g.to_bits(), dot(&a, b).to_bits(), "d = {d}");
            }
        }
    }

    #[test]
    fn f32_blocked_distances_match_widened_reference() {
        // Reference: round to f32 once, then exact f64 norm-trick
        // arithmetic. The kernel must reproduce it to the last bit.
        for (n, d) in [(9usize, 1usize), (16, 4), (21, 5), (8, 7)] {
            let m = deterministic_matrix(n, d);
            let g = GatheredMatrixF32::new(&m);
            let mut out = vec![0.0f64; 4 * n];
            let mut i0 = 0;
            while i0 < n {
                let i1 = (i0 + 4).min(n);
                g.sq_dists_block_into(i0, i1, &mut out);
                for i in i0..i1 {
                    for j in 0..n {
                        let mut nsq_i = 0.0f64;
                        let mut nsq_j = 0.0f64;
                        let mut ip = 0.0f64;
                        for t in 0..d {
                            let a = f64::from(m.row(i).get(t).copied().unwrap_or(0.0) as f32);
                            let b = f64::from(m.row(j).get(t).copied().unwrap_or(0.0) as f32);
                            nsq_i += a * a;
                            nsq_j += b * b;
                            ip += a * b;
                        }
                        let want = (nsq_i + nsq_j - 2.0 * ip).max(0.0);
                        let got = out.get((i - i0) * n + j).copied().unwrap_or(f64::NAN);
                        assert_eq!(got.to_bits(), want.to_bits(), "({i},{j}) n={n} d={d}");
                    }
                }
                i0 = i1;
            }
        }
    }

    #[test]
    fn f32_duplicate_rows_measure_exact_zero() {
        let mut rows = vec![vec![0.1, 0.2, 0.3, 0.4, 0.5]; 6];
        rows.push(vec![1.0, 1.0, 1.0, 1.0, 1.0]);
        let m = Dataset::from_rows(rows).unwrap().full_matrix();
        let g = GatheredMatrixF32::new(&m);
        let n = g.n_rows();
        let mut out = vec![0.0f64; n * n];
        g.sq_dists_block_into(0, n, &mut out);
        for i in 0..6 {
            for j in 0..6 {
                let v = out.get(i * n + j).copied().unwrap_or(f64::NAN);
                assert_eq!(v, 0.0, "duplicate pair ({i},{j})");
            }
        }
        let cross = out.get(6).copied().unwrap_or(0.0);
        assert!(cross > 0.0, "distinct rows stay distinct");
    }
}
