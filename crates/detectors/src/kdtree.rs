//! A k-d tree for exact k-nearest-neighbour queries in low-dimensional
//! projections.
//!
//! Subspace explanations live in 2–5 dimensions — exactly the regime
//! where a k-d tree beats the O(N²) brute-force scan. The tree is an
//! optional acceleration: [`crate::knn::knn_table_with`] produces the
//! same [`crate::knn::KnnTable`] through either backend, and the
//! detectors accept the choice via their builders.

use anomex_dataset::view::sq_dist;
use anomex_dataset::ProjectedMatrix;

/// Maximum points in a leaf before splitting.
const LEAF_SIZE: usize = 16;

/// A balanced k-d tree over the rows of a [`ProjectedMatrix`].
pub struct KdTree<'a> {
    data: &'a ProjectedMatrix,
    nodes: Vec<Node>,
    /// Row ids, permuted so every node owns a contiguous range.
    ids: Vec<u32>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        start: u32,
        end: u32,
    },
    Split {
        axis: u8,
        value: f64,
        left: u32,
        right: u32,
    },
}

/// Reusable query state: the bounded candidate heap plus the per-axis
/// offset vector of the incremental cell-distance bound. One scratch
/// per worker amortizes all per-query allocation across a batch of
/// queries ([`crate::knn::knn_table_kdtree`] keeps one per row chunk).
pub struct KdScratch {
    heap: BoundedMaxHeap,
    offsets: Vec<f64>,
}

impl KdScratch {
    /// An empty scratch; sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        KdScratch {
            heap: BoundedMaxHeap::new(0),
            offsets: Vec::new(),
        }
    }
}

impl Default for KdScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> KdTree<'a> {
    /// Builds the tree in O(N log N) expected time (median-of-axis
    /// partitioning via `select_nth_unstable`).
    ///
    /// # Panics
    /// Panics when `data` has no rows or more than `u32::MAX` rows.
    #[must_use]
    pub fn build(data: &'a ProjectedMatrix) -> Self {
        assert!(data.n_rows() > 0, "k-d tree needs at least one row");
        assert!(
            u32::try_from(data.n_rows()).is_ok(),
            "row count exceeds u32"
        );
        let mut ids: Vec<u32> = (0..data.n_rows() as u32).collect();
        let mut nodes = Vec::new();
        build_node(data, &mut ids, 0, data.n_rows(), 0, &mut nodes);
        KdTree { data, nodes, ids }
    }

    /// The tree's row permutation: every row id, leaf-contiguous (each
    /// node owns a contiguous range). Querying rows in this order makes
    /// consecutive queries share most of their search path and hit hot
    /// leaf blocks — the batch table build iterates it instead of raw
    /// row order and scatters results back.
    #[must_use]
    pub fn row_order(&self) -> &[u32] {
        &self.ids
    }

    /// The `k` nearest neighbours of `query` (excluding `exclude`, used
    /// for self-queries), as `(row, squared_distance)` sorted ascending.
    #[must_use]
    pub fn knn(&self, query: &[f64], k: usize, exclude: Option<usize>) -> Vec<(usize, f64)> {
        let mut scratch = KdScratch::new();
        let mut out = Vec::new();
        self.knn_into(query, k, exclude, &mut scratch, &mut out);
        out
    }

    /// [`KdTree::knn`] with caller-owned buffers: `out` is cleared and
    /// filled with the `k` nearest `(row, squared_distance)` ascending.
    /// Reusing `scratch` and `out` across queries makes the batch
    /// table build allocation-free per row.
    pub fn knn_into(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
        scratch: &mut KdScratch,
        out: &mut Vec<(usize, f64)>,
    ) {
        assert_eq!(
            query.len(),
            self.data.dim(),
            "query dimensionality mismatch"
        );
        scratch.heap.reset(k);
        scratch.offsets.clear();
        scratch.offsets.resize(self.data.dim(), 0.0);
        self.search(
            0,
            query,
            exclude,
            &mut scratch.heap,
            0.0,
            &mut scratch.offsets,
        );
        scratch.heap.drain_sorted_into(out);
    }

    /// Depth-first pruned search. `cell_sq` is the squared distance
    /// from the query to this node's cell and `offsets[a]` the query's
    /// per-axis offset beyond that cell's boundary (0 while inside) —
    /// the incremental cell-distance bound: descending to the far
    /// child replaces one axis term, so the bound tightens with every
    /// split crossed instead of testing each splitting plane in
    /// isolation.
    fn search(
        &self,
        node: usize,
        query: &[f64],
        exclude: Option<usize>,
        heap: &mut BoundedMaxHeap,
        cell_sq: f64,
        offsets: &mut [f64],
    ) {
        match &self.nodes[node] {
            Node::Leaf { start, end } => {
                for &id in &self.ids[*start as usize..*end as usize] {
                    let id = id as usize;
                    if Some(id) == exclude {
                        continue;
                    }
                    let d = sq_dist(query, self.data.row(id));
                    heap.push(id, d);
                }
            }
            Node::Split {
                axis,
                value,
                left,
                right,
            } => {
                let axis = *axis as usize;
                let diff = query[axis] - value;
                let (near, far) = if diff < 0.0 {
                    (*left as usize, *right as usize)
                } else {
                    (*right as usize, *left as usize)
                };
                self.search(near, query, exclude, heap, cell_sq, offsets);
                let old_off = offsets[axis];
                let far_sq = cell_sq - old_off * old_off + diff * diff;
                // Prune the far side when its whole cell is farther
                // than the current k-th best.
                if !heap.full() || far_sq < heap.worst() {
                    offsets[axis] = diff;
                    self.search(far, query, exclude, heap, far_sq, offsets);
                    offsets[axis] = old_off;
                }
            }
        }
    }
}

/// Recursively builds the subtree over `ids[start..end]`, returning its
/// node index.
fn build_node(
    data: &ProjectedMatrix,
    ids: &mut [u32],
    start: usize,
    end: usize,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> u32 {
    let count = end - start;
    if count <= LEAF_SIZE {
        nodes.push(Node::Leaf {
            start: start as u32,
            end: end as u32,
        });
        return (nodes.len() - 1) as u32;
    }
    // Split on the axis with the largest spread at this node (better
    // balance than round-robin for correlated data).
    let dim = data.dim();
    let mut best_axis = depth % dim;
    let mut best_spread = -1.0f64;
    for axis in 0..dim {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &id in &ids[start..end] {
            let v = data.row(id as usize)[axis];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi - lo > best_spread {
            best_spread = hi - lo;
            best_axis = axis;
        }
    }
    if best_spread == 0.0 {
        // All points identical at this node: unsplittable.
        nodes.push(Node::Leaf {
            start: start as u32,
            end: end as u32,
        });
        return (nodes.len() - 1) as u32;
    }
    let mid = start + count / 2;
    ids[start..end].select_nth_unstable_by(count / 2, |&a, &b| {
        data.row(a as usize)[best_axis].total_cmp(&data.row(b as usize)[best_axis])
    });
    let split_value = data.row(ids[mid] as usize)[best_axis];

    let placeholder = nodes.len() as u32;
    nodes.push(Node::Leaf { start: 0, end: 0 });
    let left = build_node(data, ids, start, mid, depth + 1, nodes);
    let right = build_node(data, ids, mid, end, depth + 1, nodes);
    nodes[placeholder as usize] = Node::Split {
        axis: best_axis as u8,
        value: split_value,
        left,
        right,
    };
    placeholder
}

/// Fixed-capacity max-heap over `(row, squared_distance)` keeping the
/// `k` smallest distances seen.
struct BoundedMaxHeap {
    k: usize,
    items: Vec<(usize, f64)>, // max-heap by distance
}

impl BoundedMaxHeap {
    fn new(k: usize) -> Self {
        BoundedMaxHeap {
            k,
            items: Vec::with_capacity(k + 1),
        }
    }

    /// Empties the heap and re-arms it for a `k`-candidate query.
    fn reset(&mut self, k: usize) {
        self.k = k;
        self.items.clear();
        self.items.reserve(k + 1);
    }

    fn full(&self) -> bool {
        self.items.len() >= self.k
    }

    fn worst(&self) -> f64 {
        self.items.first().map_or(f64::INFINITY, |&(_, d)| d)
    }

    fn push(&mut self, id: usize, d: f64) {
        if self.full() {
            if d >= self.worst() {
                return;
            }
            self.pop_root();
        }
        self.items.push((id, d));
        // Sift up.
        let mut i = self.items.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[parent].1 < self.items[i].1 {
                self.items.swap(parent, i);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop_root(&mut self) {
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        self.items.pop();
        // Sift down.
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.items.len() && self.items[l].1 > self.items[largest].1 {
                largest = l;
            }
            if r < self.items.len() && self.items[r].1 > self.items[largest].1 {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.items.swap(i, largest);
            i = largest;
        }
    }

    /// Sorts the candidates ascending by distance into `out` (cleared
    /// first), leaving the heap empty for reuse.
    fn drain_sorted_into(&mut self, out: &mut Vec<(usize, f64)>) {
        self.items.sort_by(|a, b| a.1.total_cmp(&b.1));
        out.clear();
        out.append(&mut self.items);
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, d: usize, seed: u64) -> ProjectedMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
            .collect();
        Dataset::from_rows(rows).unwrap().full_matrix()
    }

    /// Brute-force reference: the k smallest squared distances.
    fn brute(data: &ProjectedMatrix, q: &[f64], k: usize, exclude: Option<usize>) -> Vec<f64> {
        let mut d: Vec<f64> = (0..data.n_rows())
            .filter(|&i| Some(i) != exclude)
            .map(|i| sq_dist(q, data.row(i)))
            .collect();
        d.sort_by(f64::total_cmp);
        d.truncate(k);
        d
    }

    #[test]
    fn matches_brute_force_distances() {
        for (n, d) in [(50usize, 2usize), (300, 3), (500, 5)] {
            let m = random_matrix(n, d, n as u64);
            let tree = KdTree::build(&m);
            for q in 0..n.min(40) {
                let got: Vec<f64> = tree
                    .knn(m.row(q), 10, Some(q))
                    .into_iter()
                    .map(|(_, dist)| dist)
                    .collect();
                let want = brute(&m, m.row(q), 10, Some(q));
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-12, "n={n} d={d} q={q}");
                }
            }
        }
    }

    #[test]
    fn excluding_self_works() {
        let m = random_matrix(100, 2, 9);
        let tree = KdTree::build(&m);
        for q in 0..20 {
            let nn = tree.knn(m.row(q), 5, Some(q));
            assert!(nn.iter().all(|&(i, _)| i != q));
            assert_eq!(nn.len(), 5);
        }
    }

    #[test]
    fn k_larger_than_points() {
        let m = random_matrix(6, 2, 1);
        let tree = KdTree::build(&m);
        let nn = tree.knn(m.row(0), 100, Some(0));
        assert_eq!(nn.len(), 5);
    }

    #[test]
    fn handles_duplicates() {
        let rows = vec![vec![0.5, 0.5]; 40];
        let m = Dataset::from_rows(rows).unwrap().full_matrix();
        let tree = KdTree::build(&m);
        let nn = tree.knn(m.row(0), 5, Some(0));
        assert_eq!(nn.len(), 5);
        assert!(nn.iter().all(|&(_, d)| d == 0.0));
    }

    #[test]
    fn sorted_ascending() {
        let m = random_matrix(200, 4, 3);
        let tree = KdTree::build(&m);
        let nn = tree.knn(m.row(7), 20, Some(7));
        for w in nn.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
