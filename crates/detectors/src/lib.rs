//! # anomex-detectors
//!
//! From-scratch implementations of the three unsupervised outlier
//! detectors the paper pairs with every explanation algorithm (§2.1):
//!
//! * [`lof::Lof`] — Local Outlier Factor (density-based; Breunig et al.,
//!   SIGMOD 2000), the paper's `k = 15`;
//! * [`abod::FastAbod`] — Fast Angle-Based Outlier Detection (Kriegel et
//!   al., KDD 2008), the paper's `k = 10`;
//! * [`iforest::IsolationForest`] — Isolation Forest (Liu et al., ICDM
//!   2008), the paper's `t = 100` trees, `ψ = 256`, averaged over 10
//!   repetitions.
//!
//! All detectors implement the [`Detector`] trait: they consume a
//! row-major [`ProjectedMatrix`] (a dataset projected onto a subspace)
//! and emit one outlyingness score per row, **larger = more outlying**.
//! Per-subspace z-score standardization of those scores (paper §2.2)
//! lives in [`zscore`].
//!
//! ```
//! use anomex_dataset::Dataset;
//! use anomex_detectors::{lof::Lof, Detector};
//!
//! // Nine clustered points and one far-away outlier.
//! let mut rows: Vec<Vec<f64>> = (0..9)
//!     .map(|i| vec![(i % 3) as f64 * 0.01, (i / 3) as f64 * 0.01])
//!     .collect();
//! rows.push(vec![5.0, 5.0]);
//! let ds = Dataset::from_rows(rows).unwrap();
//! let scores = Lof::new(3).unwrap().score_all(&ds.full_matrix());
//! let top = (0..10).max_by(|&a, &b| scores[a].total_cmp(&scores[b])).unwrap();
//! assert_eq!(top, 9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod abod;
pub mod approx;
pub mod fit;
pub mod iforest;
pub mod kdtree;
pub mod kernels;
pub mod knn;
pub mod knndist;
pub mod loda;
pub mod lof;
pub mod simd;
pub mod spec;
pub mod zscore;

pub use abod::{FastAbod, FittedFastAbod};
pub use fit::{fit_model, FittedModel, PrecomputedScores};
pub use iforest::{FittedIsolationForest, IsolationForest};
pub use knn::{NeighborBackend, Precision};
pub use knndist::{FittedKnnDist, KnnDist};
pub use loda::Loda;
pub use lof::{FittedLof, Lof};
pub use spec::build_detector;

use anomex_dataset::distances::SqDistMatrix;
use anomex_dataset::ProjectedMatrix;

/// An unsupervised outlier detector.
///
/// Implementations are pure functions of the input matrix (plus their own
/// configuration and seed): calling [`Detector::score_all`] twice on the
/// same data yields identical scores. This determinism is what lets the
/// explanation framework cache per-subspace score vectors.
pub trait Detector: Send + Sync {
    /// Scores every row of `data`; **larger = more outlying**. The
    /// returned vector has exactly `data.n_rows()` finite entries.
    fn score_all(&self, data: &ProjectedMatrix) -> Vec<f64>;

    /// Short identifier used in reports (e.g. `"LOF"`).
    fn name(&self) -> &'static str;

    /// Scores every row from a precomputed pairwise squared-distance
    /// matrix — the consumer side of the incremental subspace-distance
    /// path ([`anomex_dataset::distances::IncrementalDistances`]).
    ///
    /// Returns `None` (the default) when the detector needs raw
    /// coordinates (e.g. Isolation Forest, LODA); distance-only
    /// detectors (LOF, kNN-distance, Fast ABOD) override it. When
    /// `Some`, the scores are semantically equivalent to
    /// [`Detector::score_all`] on the matching projection — LOF and
    /// kNN-distance are bit-identical, Fast ABOD agrees to rounding
    /// (its distance-only inner products go through the polarization
    /// identity, which reassociates the arithmetic).
    fn score_from_sq_dists(&self, _dists: &SqDistMatrix) -> Option<Vec<f64>> {
        None
    }

    /// Freezes the detector's data-dependent state against `data`,
    /// entering the fit/score lifecycle ([`fit`](crate::fit)).
    ///
    /// Returns `None` (the default) when the detector has no dedicated
    /// fit path; callers wanting a model unconditionally should use
    /// [`fit_model`], which falls back to [`PrecomputedScores`]. When
    /// `Some`, the model's [`FittedModel::score_fit_rows`] is
    /// bit-identical to [`Detector::score_all`] on `data`.
    fn fit(&self, _data: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        None
    }
}

impl<T: Detector + ?Sized> Detector for &T {
    fn score_all(&self, data: &ProjectedMatrix) -> Vec<f64> {
        (**self).score_all(data)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn score_from_sq_dists(&self, dists: &SqDistMatrix) -> Option<Vec<f64>> {
        (**self).score_from_sq_dists(dists)
    }
    fn fit(&self, data: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        (**self).fit(data)
    }
}

impl Detector for Box<dyn Detector> {
    fn score_all(&self, data: &ProjectedMatrix) -> Vec<f64> {
        (**self).score_all(data)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn score_from_sq_dists(&self, dists: &SqDistMatrix) -> Option<Vec<f64>> {
        (**self).score_from_sq_dists(dists)
    }
    fn fit(&self, data: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        (**self).fit(data)
    }
}

/// Configuration errors shared by the detector constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorError {
    /// A hyper-parameter was outside its valid domain.
    InvalidParameter {
        /// The detector being configured.
        detector: &'static str,
        /// Description of the violated constraint.
        detail: &'static str,
    },
}

impl std::fmt::Display for DetectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorError::InvalidParameter { detector, detail } => {
                write!(f, "{detector}: {detail}")
            }
        }
    }
}

impl std::error::Error for DetectorError {}

/// Result alias for detector construction.
pub type Result<T> = std::result::Result<T, DetectorError>;

/// The three paper detectors with the paper's hyper-parameters
/// (`LOF k=15`, `Fast ABOD k=10`, `iForest t=100 ψ=256 reps=10`), in the
/// order they appear in every figure. Handy for building the 12 pipelines.
///
/// # Errors
/// Never with the constants baked in here; the `Result` keeps this
/// panic-free and lets callers compose it with other fallible
/// construction.
pub fn paper_detectors(seed: u64) -> Result<Vec<Box<dyn Detector>>> {
    Ok(vec![
        Box::new(Lof::new(15)?),
        Box::new(FastAbod::new(10)?),
        Box::new(
            IsolationForest::builder()
                .trees(100)
                .subsample(256)
                .repetitions(10)
                .seed(seed)
                .build()?,
        ),
    ])
}
