//! Detector construction from canonical [`DetectorSpec`] values.
//!
//! The one place a typed spec becomes a live detector — serve, eval
//! and core all route through here, so a spec builds the exact same
//! detector everywhere.

use crate::iforest::IsolationForest;
use crate::{Detector, FastAbod, KnnDist, Lof, Result};
use anomex_spec::DetectorSpec;

/// Builds the detector a [`DetectorSpec`] describes.
///
/// # Errors
/// [`crate::DetectorError::InvalidParameter`] when the spec carries an
/// out-of-range hyper-parameter (e.g. `k = 0`).
pub fn build_detector(spec: &DetectorSpec) -> Result<Box<dyn Detector>> {
    Ok(match *spec {
        DetectorSpec::Lof {
            k,
            backend,
            precision,
        } => Box::new(Lof::new(k)?.with_backend(backend).with_precision(precision)),
        DetectorSpec::FastAbod {
            k,
            backend,
            precision,
        } => Box::new(
            FastAbod::new(k)?
                .with_backend(backend)
                .with_precision(precision),
        ),
        DetectorSpec::KnnDist {
            k,
            backend,
            precision,
        } => Box::new(
            KnnDist::new(k)?
                .with_backend(backend)
                .with_precision(precision),
        ),
        DetectorSpec::IsolationForest {
            trees,
            psi,
            reps,
            seed,
        } => Box::new(
            IsolationForest::builder()
                .trees(trees)
                .subsample(psi)
                .repetitions(reps)
                .seed(seed)
                .build()?,
        ),
    })
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_spec::NeighborBackend;

    #[test]
    fn builds_every_paper_detector() {
        for compact in [
            "lof:k=15",
            "abod:k=10",
            "knndist:k=5",
            "iforest:trees=100,psi=256,reps=10,seed=0",
        ] {
            let spec = DetectorSpec::parse(compact).unwrap();
            let det = build_detector(&spec).unwrap();
            assert_eq!(
                spec.canonical(),
                DetectorSpec::parse(compact).unwrap().canonical()
            );
            let _ = det.name();
        }
    }

    #[test]
    fn invalid_parameters_surface_as_errors() {
        assert!(build_detector(&DetectorSpec::Lof {
            k: 0,
            backend: NeighborBackend::Exact,
            precision: anomex_spec::Precision::F64,
        })
        .is_err());
        assert!(build_detector(&DetectorSpec::IsolationForest {
            trees: 0,
            psi: 256,
            reps: 10,
            seed: 0,
        })
        .is_err());
    }

    #[test]
    fn backend_flows_from_spec_to_detector() {
        let ds = anomex_dataset::Dataset::from_rows(
            (0..40)
                .map(|i| vec![f64::from(i % 8) * 0.3, f64::from(i / 8) * 0.3])
                .collect(),
        )
        .unwrap();
        let m = ds.full_matrix();
        for compact in [
            "lof:k=5,backend=kdtree",
            "abod:k=4,nn=kd",
            "knndist:k=3,backend=exact",
            "lof:k=5,precision=f32",
            "knndist:k=3,prec=single",
        ] {
            let spec = DetectorSpec::parse(compact).unwrap();
            let det = build_detector(&spec).unwrap();
            // The built detector scores identically to the directly
            // configured one — the spec layer adds no drift.
            let direct: Box<dyn Detector> = match spec {
                DetectorSpec::Lof {
                    k,
                    backend,
                    precision,
                } => Box::new(
                    Lof::new(k)
                        .unwrap()
                        .with_backend(backend)
                        .with_precision(precision),
                ),
                DetectorSpec::FastAbod {
                    k,
                    backend,
                    precision,
                } => Box::new(
                    FastAbod::new(k)
                        .unwrap()
                        .with_backend(backend)
                        .with_precision(precision),
                ),
                DetectorSpec::KnnDist {
                    k,
                    backend,
                    precision,
                } => Box::new(
                    KnnDist::new(k)
                        .unwrap()
                        .with_backend(backend)
                        .with_precision(precision),
                ),
                DetectorSpec::IsolationForest { .. } => unreachable!("not in the list"),
            };
            assert_eq!(det.score_all(&m), direct.score_all(&m), "{compact}");
        }
    }
}
