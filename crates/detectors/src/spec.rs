//! Detector construction from canonical [`DetectorSpec`] values.
//!
//! The one place a typed spec becomes a live detector — serve, eval
//! and core all route through here, so a spec builds the exact same
//! detector everywhere.

use crate::iforest::IsolationForest;
use crate::{Detector, FastAbod, KnnDist, Lof, Result};
use anomex_spec::DetectorSpec;

/// Builds the detector a [`DetectorSpec`] describes.
///
/// # Errors
/// [`crate::DetectorError::InvalidParameter`] when the spec carries an
/// out-of-range hyper-parameter (e.g. `k = 0`).
pub fn build_detector(spec: &DetectorSpec) -> Result<Box<dyn Detector>> {
    Ok(match *spec {
        DetectorSpec::Lof { k } => Box::new(Lof::new(k)?),
        DetectorSpec::FastAbod { k } => Box::new(FastAbod::new(k)?),
        DetectorSpec::KnnDist { k } => Box::new(KnnDist::new(k)?),
        DetectorSpec::IsolationForest {
            trees,
            psi,
            reps,
            seed,
        } => Box::new(
            IsolationForest::builder()
                .trees(trees)
                .subsample(psi)
                .repetitions(reps)
                .seed(seed)
                .build()?,
        ),
    })
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn builds_every_paper_detector() {
        for compact in [
            "lof:k=15",
            "abod:k=10",
            "knndist:k=5",
            "iforest:trees=100,psi=256,reps=10,seed=0",
        ] {
            let spec = DetectorSpec::parse(compact).unwrap();
            let det = build_detector(&spec).unwrap();
            assert_eq!(
                spec.canonical(),
                DetectorSpec::parse(compact).unwrap().canonical()
            );
            let _ = det.name();
        }
    }

    #[test]
    fn invalid_parameters_surface_as_errors() {
        assert!(build_detector(&DetectorSpec::Lof { k: 0 }).is_err());
        assert!(build_detector(&DetectorSpec::IsolationForest {
            trees: 0,
            psi: 256,
            reps: 10,
            seed: 0,
        })
        .is_err());
    }
}
