//! Distance-based kNN outlier detector — the classic global baseline
//! (Ramaswamy et al., SIGMOD 2000 style).
//!
//! The paper's detector selection (§3.1) deliberately *excludes*
//! distance-based detectors because the experimental studies it cites
//! report them frequently outperformed by LOF/ABOD/iForest; this
//! implementation exists as the **baseline** that lets users reproduce
//! that comparison themselves (see the `detector_shootout` example and
//! the ablation benches).
//!
//! The score of a point is an aggregate of its distances to its `k`
//! nearest neighbours — either the distance to the k-th neighbour
//! (max-aggregation) or the mean over all k (mean-aggregation).

use crate::fit::FittedModel;
use crate::kernels::knn_table_from_sq_dists;
use crate::knn::{knn_table_with_precision, merge_knn_exact, KnnTable, NeighborBackend, Precision};
use crate::{Detector, DetectorError, Result};
use anomex_dataset::distances::SqDistMatrix;
use anomex_dataset::ProjectedMatrix;

/// How the k neighbour distances collapse into one score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KnnAggregation {
    /// Distance to the k-th nearest neighbour (the original kNN-outlier
    /// definition).
    Max,
    /// Mean distance over all k neighbours (smoother, the common
    /// practical choice).
    #[default]
    Mean,
}

/// The kNN-distance detector.
///
/// ```
/// use anomex_detectors::knndist::KnnDist;
/// let det = KnnDist::new(5).unwrap();
/// assert_eq!(det.k(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnDist {
    k: usize,
    aggregation: KnnAggregation,
    backend: NeighborBackend,
    precision: Precision,
}

impl KnnDist {
    /// Creates the detector with neighbourhood size `k ≥ 1`.
    ///
    /// # Errors
    /// [`DetectorError::InvalidParameter`] when `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(DetectorError::InvalidParameter {
                detector: "KnnDist",
                detail: "k must be at least 1",
            });
        }
        Ok(KnnDist {
            k,
            aggregation: KnnAggregation::default(),
            backend: NeighborBackend::default(),
            precision: Precision::default(),
        })
    }

    /// The configured neighbourhood size.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Selects the distance aggregation.
    #[must_use]
    pub fn with_aggregation(mut self, agg: KnnAggregation) -> Self {
        self.aggregation = agg;
        self
    }

    /// Selects the neighbor backend.
    #[must_use]
    pub fn with_backend(mut self, backend: NeighborBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The configured neighbor backend.
    #[must_use]
    pub fn backend(&self) -> NeighborBackend {
        self.backend
    }

    /// Selects the kernel storage precision (f64 by default).
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The configured storage precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Collapses each row's neighbour distances into one score.
    fn aggregate(&self, knn: &KnnTable) -> Vec<f64> {
        (0..knn.n_rows())
            .map(|i| {
                let d = knn.distances(i);
                match self.aggregation {
                    KnnAggregation::Max => *d.last().expect("k >= 1"), // anomex: allow(panic-path) constructor rejects k = 0
                    KnnAggregation::Mean => d.iter().sum::<f64>() / d.len() as f64,
                }
            })
            .collect()
    }
}

impl Detector for KnnDist {
    fn score_all(&self, data: &ProjectedMatrix) -> Vec<f64> {
        let knn = knn_table_with_precision(data, self.k, self.backend, self.precision);
        self.aggregate(&knn)
    }

    fn name(&self) -> &'static str {
        "KnnDist"
    }

    fn score_from_sq_dists(&self, dists: &SqDistMatrix) -> Option<Vec<f64>> {
        // The distance-memo path bypasses the backend dispatch and its
        // distances were computed in f64, so it only stands in for
        // `score_all` under the default exact/f64 configuration.
        if self.backend != NeighborBackend::Exact || self.precision != Precision::F64 {
            return None;
        }
        Some(self.aggregate(&knn_table_from_sq_dists(dists, self.k)))
    }

    fn fit(&self, data: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        Some(Box::new(FittedKnnDist::fit(*self, data)))
    }
}

/// kNN-distance frozen against one matrix: the kNN table is computed
/// once at fit time; scoring replays only the aggregation. The
/// projected coordinates are kept alongside so the model can absorb
/// appended rows ([`FittedModel::append_rows`]).
#[derive(Debug, Clone)]
pub struct FittedKnnDist {
    det: KnnDist,
    knn: KnnTable,
    data: ProjectedMatrix,
}

impl FittedKnnDist {
    /// Builds the kNN table of `data` and freezes it together with the
    /// coordinates.
    ///
    /// # Panics
    /// Panics when `data` has fewer than 2 rows (kNN is undefined).
    #[must_use]
    pub fn fit(det: KnnDist, data: &ProjectedMatrix) -> Self {
        let knn = knn_table_with_precision(data, det.k, det.backend, det.precision);
        FittedKnnDist {
            det,
            knn,
            data: data.clone(),
        }
    }

    /// The frozen kNN table.
    #[must_use]
    pub fn knn(&self) -> &KnnTable {
        &self.knn
    }

    /// Aggregated distances of the fit rows, bit-identical to
    /// [`Detector::score_all`] on the fit matrix.
    #[must_use]
    pub fn score_all(&self) -> Vec<f64> {
        self.det.aggregate(&self.knn)
    }
}

impl FittedModel for FittedKnnDist {
    fn score_fit_rows(&self) -> Vec<f64> {
        self.score_all()
    }

    fn name(&self) -> &'static str {
        "KnnDist"
    }

    fn n_rows(&self) -> usize {
        self.knn.n_rows()
    }

    fn append_rows(&self, added: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        if added.dim() != self.data.dim() {
            return None;
        }
        if added.n_rows() == 0 {
            return Some(Box::new(self.clone()));
        }
        let extended = self.data.concat(added);
        if self.det.backend == NeighborBackend::Exact && self.det.precision == Precision::F64 {
            crate::fit::obs_append_merges().incr();
            let knn = merge_knn_exact(&self.knn, &extended, self.det.k);
            Some(Box::new(FittedKnnDist {
                det: self.det,
                knn,
                data: extended,
            }))
        } else {
            crate::fit::obs_append_rebuilds().incr();
            Some(Box::new(FittedKnnDist::fit(self.det, &extended)))
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;

    fn cluster_with_outlier() -> Dataset {
        let mut rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64 * 0.01, (i / 5) as f64 * 0.01])
            .collect();
        rows.push(vec![3.0, 3.0]);
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn outlier_scores_highest_under_both_aggregations() {
        let ds = cluster_with_outlier();
        for agg in [KnnAggregation::Max, KnnAggregation::Mean] {
            let det = KnnDist::new(5).unwrap().with_aggregation(agg);
            let scores = det.score_all(&ds.full_matrix());
            let top = (0..scores.len())
                .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
                .unwrap();
            assert_eq!(top, 20, "{agg:?}");
        }
    }

    #[test]
    fn max_aggregation_equals_kth_distance() {
        let ds = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![3.0], vec![6.0]]).unwrap();
        let det = KnnDist::new(2)
            .unwrap()
            .with_aggregation(KnnAggregation::Max);
        let scores = det.score_all(&ds.full_matrix());
        // Point 0: neighbours at 1 and 3 → k-th distance 3.
        assert_eq!(scores[0], 3.0);
        // Point 3: neighbours at 3 and 5 → k-th distance 5.
        assert_eq!(scores[3], 5.0);
    }

    #[test]
    fn mean_aggregation_averages() {
        let ds = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![3.0], vec![6.0]]).unwrap();
        let det = KnnDist::new(2)
            .unwrap()
            .with_aggregation(KnnAggregation::Mean);
        let scores = det.score_all(&ds.full_matrix());
        assert_eq!(scores[0], 2.0); // (1 + 3) / 2
    }

    #[test]
    fn misses_local_outliers_that_lof_catches() {
        // The textbook LOF-vs-kNN failure mode: a point just outside a
        // dense cluster scores lower (global kNN) than sparse-cluster
        // members, while LOF ranks it first — the reason the paper's
        // testbed uses LOF rather than kNN distance.
        use crate::lof::Lof;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let mut rows = Vec::new();
        for _ in 0..60 {
            rows.push(vec![rng.gen::<f64>() * 0.05, rng.gen::<f64>() * 0.05]);
        }
        for _ in 0..20 {
            rows.push(vec![
                5.0 + rng.gen::<f64>() * 3.0,
                5.0 + rng.gen::<f64>() * 3.0,
            ]);
        }
        let probe = rows.len();
        rows.push(vec![0.5, 0.5]);
        let ds = Dataset::from_rows(rows).unwrap();
        let knn_scores = KnnDist::new(10).unwrap().score_all(&ds.full_matrix());
        let lof_scores = Lof::new(10).unwrap().score_all(&ds.full_matrix());
        let rank = |scores: &[f64]| {
            let mut idx: Vec<usize> = (0..scores.len()).collect();
            idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
            idx.iter().position(|&i| i == probe).unwrap()
        };
        assert_eq!(
            rank(&lof_scores),
            0,
            "LOF must rank the local outlier first"
        );
        assert!(
            rank(&knn_scores) > 0,
            "global kNN distance should be fooled by the sparse cluster"
        );
    }

    #[test]
    fn rejects_zero_k() {
        assert!(KnnDist::new(0).is_err());
    }

    #[test]
    fn append_then_score_equals_refit_then_score() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let all = Dataset::from_rows(rows.clone()).unwrap().full_matrix();
        let base = Dataset::from_rows(rows[..100].to_vec())
            .unwrap()
            .full_matrix();
        let added = Dataset::from_rows(rows[100..].to_vec())
            .unwrap()
            .full_matrix();
        for agg in [KnnAggregation::Max, KnnAggregation::Mean] {
            let det = KnnDist::new(15).unwrap().with_aggregation(agg);
            let fitted = FittedKnnDist::fit(det, &base);
            let appended = FittedModel::append_rows(&fitted, &added).unwrap();
            assert_eq!(appended.n_rows(), all.n_rows());
            assert_eq!(appended.score_fit_rows(), det.score_all(&all), "{agg:?}");
            assert_eq!(
                appended.score_fit_rows(),
                FittedKnnDist::fit(det, &all).score_fit_rows(),
                "{agg:?}"
            );
        }
        // Dimensionality mismatch is rejected rather than mangled.
        let fitted = FittedKnnDist::fit(KnnDist::new(5).unwrap(), &base);
        let wrong = Dataset::from_rows(vec![vec![1.0], vec![2.0]])
            .unwrap()
            .full_matrix();
        assert!(FittedModel::append_rows(&fitted, &wrong).is_none());
    }

    #[test]
    fn fitted_model_is_bit_identical_to_score_all() {
        let ds = cluster_with_outlier();
        let m = ds.full_matrix();
        for agg in [KnnAggregation::Max, KnnAggregation::Mean] {
            let det = KnnDist::new(5).unwrap().with_aggregation(agg);
            let fitted = FittedKnnDist::fit(det, &m);
            assert_eq!(fitted.score_fit_rows(), det.score_all(&m), "{agg:?}");
            assert_eq!(fitted.n_rows(), m.n_rows());
        }
    }
}
