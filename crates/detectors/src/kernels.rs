//! Cache-friendly distance kernels shared by the kNN-based detectors.
//!
//! The cost model of subspace explanation is dominated by detector
//! re-scoring across thousands of projections; every score-cache *miss*
//! lands in an O(N²·d) kNN scan. This module makes that miss path fast:
//!
//! * [`GatheredMatrix`] — a column-major gather of the projection plus
//!   per-row squared norms, the shared read-only input of the kernel;
//! * [`GatheredMatrix::sq_dists_block_into`] — a blocked pairwise
//!   squared-distance kernel using the norm trick
//!   `‖a − b‖² = ‖a‖² + ‖b‖² − 2⟨a, b⟩`, whose inner loops walk
//!   contiguous columns (auto-vectorizable) and reuse caller scratch
//!   (zero per-row allocation);
//! * [`knn_table_blocked`] — the production kNN builder: blocked kernel
//!   plus parallel row blocks via [`anomex_parallel`];
//! * [`knn_table_naive`] — the straightforward row-by-row `sq_dist`
//!   scan, kept as the sequential reference implementation that the
//!   equivalence property tests and benches compare against;
//! * [`knn_table_from_sq_dists`] — kNN from a precomputed
//!   [`SqDistMatrix`] (the incremental subspace-distance path).
//!
//! All three kNN builders exclude a row's self-distance *by index*
//! rather than writing an `f64::INFINITY` sentinel into the distance
//! buffer, so distance rows stay clean and shareable between kernels.
//! The production builders select neighbours with a sampled-threshold
//! scan (`bottom_k_nonneg`): a strided sample picks a cutoff just above
//! the k-th-smallest quantile, one vectorizable fixed-threshold pass
//! compacts the few candidates below it, and an exact `select_nth`
//! finishes on that shortlist (falling back to the reference selection
//! on the rare sample undershoot). The naive builder keeps the
//! general-purpose [`bottom_k_asc_excluding`] selection as the
//! reference. Both produce identical `(value, index)`-ordered results.
//!
//! Numerics: the norm trick is algebraically exact but reassociates the
//! floating-point computation, so blocked distances can differ from the
//! naive scan by O(ε·‖a‖·‖b‖) — exact zeros for identical rows are
//! still produced exactly (the cancellation is bitwise), and negative
//! rounding residue is clamped at 0. The naive and matrix-based paths
//! accumulate per-feature terms in ascending feature order and agree
//! bit-for-bit.

use crate::knn::KnnTable;
use crate::simd::{self, GatheredMatrixF32};
use anomex_dataset::distances::SqDistMatrix;
use anomex_dataset::view::sq_dist;
use anomex_dataset::ProjectedMatrix;
use anomex_parallel::par_map;
use anomex_stats::rank::bottom_k_asc_excluding;
use std::sync::OnceLock;

/// Process-wide kernel meters: which kNN build path ran, how many
/// blocked-kernel passes it took, and how often the sampled-threshold
/// selection had to fall back to the reference scan. Relaxed counters
/// only — nothing here can perturb a distance or a neighbour order.
fn obs_blocked_builds() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("detectors.knn.blocked_builds"))
}

fn obs_naive_builds() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("detectors.knn.naive_builds"))
}

fn obs_matrix_builds() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("detectors.knn.matrix_builds"))
}

fn obs_block_passes() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("detectors.knn.block_passes"))
}

fn obs_selection_fallbacks() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("detectors.knn.selection_fallbacks"))
}

fn obs_f32_builds() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("detectors.knn.f32_builds"))
}

/// Rows per kernel block: the dot-product accumulators of a block
/// (`BLOCK_ROWS × n`) stay resident while each gathered column streams
/// through once, amortizing column loads over the block.
const BLOCK_ROWS: usize = 8;

/// Row blocks per parallel work item (so each worker chunk reuses one
/// scratch allocation across several blocks).
const BLOCKS_PER_CHUNK: usize = 4;

/// A column-major gathered copy of a projected matrix plus per-row
/// squared norms — the shared, read-only input of the blocked kernel.
pub struct GatheredMatrix {
    /// Column-major values: `cols[t * n_rows + i]` is row `i`, feature `t`.
    cols: Vec<f64>,
    /// `‖row_i‖²` for every row.
    sq_norms: Vec<f64>,
    n_rows: usize,
    dim: usize,
}

impl GatheredMatrix {
    /// Gathers `data` (O(N·d), done once per kNN build).
    #[must_use]
    pub fn new(data: &ProjectedMatrix) -> Self {
        let mut cols = Vec::new();
        data.gather_columns_into(&mut cols);
        let mut sq_norms = Vec::new();
        data.sq_norms_into(&mut sq_norms);
        GatheredMatrix {
            cols,
            sq_norms,
            n_rows: data.n_rows(),
            dim: data.dim(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The squared norm of every row.
    #[must_use]
    pub fn sq_norms(&self) -> &[f64] {
        &self.sq_norms
    }

    /// One gathered column.
    ///
    /// # Panics
    /// Panics when `t` is out of bounds.
    #[must_use]
    pub fn column(&self, t: usize) -> &[f64] {
        &self.cols[t * self.n_rows..(t + 1) * self.n_rows]
    }

    /// Writes the squared distances of rows `i0..i1` to *every* row into
    /// `out` (`out[(i − i0) * n_rows + j] = ‖row_i − row_j‖²`), via the
    /// norm trick over contiguous columns. `out` doubles as the
    /// dot-product accumulator; only its first `(i1 − i0) · n_rows`
    /// entries are touched. Values are clamped at 0 so rounding residue
    /// never produces negative squared distances.
    ///
    /// The dot phase runs the feature-blocked 4-lane kernels of
    /// [`crate::simd`]: features fold in blocks of four per accumulator
    /// read-modify-write, with the element dimension auto-vectorized.
    /// Per output element the accumulation order is ascending feature
    /// order — the same sequence of roundings as
    /// [`sq_dists_block_scalar_into`](Self::sq_dists_block_scalar_into),
    /// so results are **bit-identical** to the scalar reference (the
    /// crosscheck suite pins this).
    ///
    /// # Panics
    /// Panics when the row range is invalid or `out` is too small.
    pub fn sq_dists_block_into(&self, i0: usize, i1: usize, out: &mut [f64]) {
        assert!(
            i0 <= i1 && i1 <= self.n_rows,
            "invalid row block {i0}..{i1}"
        );
        let n = self.n_rows;
        let rows = i1 - i0;
        let out = &mut out[..rows * n];
        out.fill(0.0);
        // Dot products: out[bi * n + j] = ⟨row_{i0+bi}, row_j⟩, feature
        // blocks of four ascending, with the remainder features *and*
        // the norm-trick finish fused into one widened tail pass
        // (width 4–7) — e.g. d = 5 is a single sweep over the block.
        // Per element the rounding sequence is unchanged: all features
        // ascending, then the finish.
        let dim = self.dim;
        if dim == 0 {
            for (bi, acc) in out.chunks_exact_mut(n).enumerate() {
                simd::finish_norm_trick(acc, self.sq_norms[i0 + bi], &self.sq_norms);
            }
            return;
        }
        if dim < simd::LANES {
            // 1–3 features: single-feature passes, finish fused into
            // the last one.
            for t in 0..dim {
                let col = self.column(t);
                let last = t + 1 == dim;
                for (bi, acc) in out.chunks_exact_mut(n).enumerate() {
                    let i = i0 + bi;
                    if last {
                        simd::axpy1_finish(acc, col[i], col, self.sq_norms[i], &self.sq_norms);
                    } else {
                        simd::axpy1(acc, col[i], col);
                    }
                }
            }
            return;
        }
        let rem = dim % simd::LANES;
        let tail_start = dim - simd::LANES - rem;
        let mut t = 0;
        while t < tail_start {
            let c0 = self.column(t);
            let c1 = self.column(t + 1);
            let c2 = self.column(t + 2);
            let c3 = self.column(t + 3);
            for (bi, acc) in out.chunks_exact_mut(n).enumerate() {
                let i = i0 + bi;
                simd::axpy4(acc, [c0[i], c1[i], c2[i], c3[i]], [c0, c1, c2, c3]);
            }
            t += simd::LANES;
        }
        let ts = tail_start;
        let c0 = self.column(ts);
        let c1 = self.column(ts + 1);
        let c2 = self.column(ts + 2);
        let c3 = self.column(ts + 3);
        for (bi, acc) in out.chunks_exact_mut(n).enumerate() {
            let i = i0 + bi;
            let nsq_i = self.sq_norms[i];
            match rem {
                1 => {
                    let c4 = self.column(ts + 4);
                    simd::axpy5_finish(
                        acc,
                        [c0[i], c1[i], c2[i], c3[i], c4[i]],
                        [c0, c1, c2, c3, c4],
                        nsq_i,
                        &self.sq_norms,
                    );
                }
                2 => {
                    let c4 = self.column(ts + 4);
                    let c5 = self.column(ts + 5);
                    simd::axpy6_finish(
                        acc,
                        [c0[i], c1[i], c2[i], c3[i], c4[i], c5[i]],
                        [c0, c1, c2, c3, c4, c5],
                        nsq_i,
                        &self.sq_norms,
                    );
                }
                3 => {
                    let c4 = self.column(ts + 4);
                    let c5 = self.column(ts + 5);
                    let c6 = self.column(ts + 6);
                    simd::axpy7_finish(
                        acc,
                        [c0[i], c1[i], c2[i], c3[i], c4[i], c5[i], c6[i]],
                        [c0, c1, c2, c3, c4, c5, c6],
                        nsq_i,
                        &self.sq_norms,
                    );
                }
                _ => {
                    simd::axpy4_finish(
                        acc,
                        [c0[i], c1[i], c2[i], c3[i]],
                        [c0, c1, c2, c3],
                        nsq_i,
                        &self.sq_norms,
                    );
                }
            }
        }
    }

    /// The historical scalar reference implementation of
    /// [`sq_dists_block_into`](Self::sq_dists_block_into): one feature
    /// folded per accumulator pass, no unrolling. Kept as the ground
    /// truth the crosscheck and property suites compare the fast
    /// kernels against, bit for bit.
    ///
    /// # Panics
    /// Panics when the row range is invalid or `out` is too small.
    pub fn sq_dists_block_scalar_into(&self, i0: usize, i1: usize, out: &mut [f64]) {
        assert!(
            i0 <= i1 && i1 <= self.n_rows,
            "invalid row block {i0}..{i1}"
        );
        let n = self.n_rows;
        let rows = i1 - i0;
        let out = &mut out[..rows * n];
        out.fill(0.0);
        // Dot products: out[bi * n + j] = ⟨row_{i0+bi}, row_j⟩.
        for t in 0..self.dim {
            let col = self.column(t);
            for bi in 0..rows {
                let a = col[i0 + bi];
                let acc = &mut out[bi * n..(bi + 1) * n];
                for (accv, &cv) in acc.iter_mut().zip(col) {
                    *accv += a * cv;
                }
            }
        }
        // Norm trick + clamp.
        for bi in 0..rows {
            let nsq_i = self.sq_norms[i0 + bi];
            let acc = &mut out[bi * n..(bi + 1) * n];
            for (accv, &nsq_j) in acc.iter_mut().zip(&self.sq_norms) {
                *accv = (nsq_i + nsq_j - 2.0 * *accv).max(0.0);
            }
        }
    }
}

/// Strided sample size used to estimate the selection threshold. With
/// `n ≥ MIN_SAMPLED_LEN` rows the sample's r-th smallest value sits just
/// above the `k/n` quantile, so the candidate pass keeps only a few
/// dozen survivors.
const SELECT_SAMPLE: usize = 64;

/// Minimum row length for the sampled-threshold path; shorter rows go
/// straight to the reference selection (a shortlist would not pay for
/// the sampling pass there).
const MIN_SAMPLED_LEN: usize = 256;

/// Tombstone for the self-distance entry in the candidate shortlist.
/// `u64::MAX` is a NaN bit pattern, which the precondition on
/// [`bottom_k_nonneg`] rules out for real values, and it sorts after
/// every live candidate.
const DEAD_CANDIDATE: (u64, usize) = (u64::MAX, usize::MAX);

/// Picks a cutoff for row `xs`: the r-th smallest of a strided
/// [`SELECT_SAMPLE`]-point sample, with `r` two ranks above the sample
/// rank of the `k/n` quantile. Deterministic (the sample is a fixed
/// stride, shifted off the excluded slot) and ≥ the true k-th smallest
/// with high probability; the caller falls back when it is not.
fn sampled_threshold(xs: &[f64], k: usize, exclude: usize) -> f64 {
    let n = xs.len();
    let stride = n / SELECT_SAMPLE;
    let mut sample = [0u64; SELECT_SAMPLE];
    for (s, slot) in sample.iter_mut().enumerate() {
        let mut j = s * stride;
        if j == exclude {
            j += 1;
        }
        *slot = xs[j].to_bits();
    }
    let r = (SELECT_SAMPLE * (k + 1)).div_ceil(n) + 2;
    let (_, &mut rth, _) = sample.select_nth_unstable(r - 1);
    f64::from_bits(rth)
}

/// The `k` smallest `(value, index)` pairs of `xs` excluding index
/// `exclude`, ascending with ties broken by index — the same selection
/// contract as [`bottom_k_asc_excluding`], specialized for squared
/// distances.
///
/// Two-phase: [`sampled_threshold`] picks a cutoff `t` just above the
/// `k/n` quantile, then one fixed-threshold pass compacts every element
/// `≤ t` into `scratch` (the gate is a branch-free eight-wide compare,
/// the compaction a branchless conditional append, so the pass
/// vectorizes). If at least `k` non-self candidates survive — every
/// value `≤ t` is among them, so they provably contain the k smallest —
/// an exact `select_nth` on the shortlist finishes; otherwise the row
/// falls back to the reference selection. Candidates are keyed on the
/// raw IEEE bit pattern, which orders identically to `f64::total_cmp`
/// under a precondition the distance kernels guarantee: **every value
/// is non-NaN with a clear sign bit** (no negatives, no `-0.0`; `+∞` is
/// fine). Squared Euclidean distances satisfy this by construction —
/// sums and products of finite values clamped at `+0.0`.
fn bottom_k_nonneg(
    xs: &[f64],
    k: usize,
    exclude: usize,
    scratch: &mut Vec<(u64, usize)>,
) -> Vec<(f64, usize)> {
    debug_assert!(
        xs.iter().all(|v| !v.is_nan() && v.is_sign_positive()),
        "selection requires non-NaN, sign-positive values"
    );
    let n = xs.len();
    if n < MIN_SAMPLED_LEN || n < 4 * k {
        return bottom_k_reference(xs, k, exclude);
    }
    let t = sampled_threshold(xs, k, exclude);
    if scratch.len() < n + 8 {
        scratch.resize(n + 8, DEAD_CANDIDATE);
    }
    let mut len = 0usize;
    let mut groups = xs.chunks_exact(8);
    let mut base = 0usize;
    for q in &mut groups {
        let any = (q[0] <= t)
            | (q[1] <= t)
            | (q[2] <= t)
            | (q[3] <= t)
            | (q[4] <= t)
            | (q[5] <= t)
            | (q[6] <= t)
            | (q[7] <= t);
        if any {
            for (jj, &v) in q.iter().enumerate() {
                scratch[len] = (v.to_bits(), base + jj);
                len += usize::from(v <= t);
            }
        }
        base += 8;
    }
    for (jj, &v) in groups.remainder().iter().enumerate() {
        scratch[len] = (v.to_bits(), base + jj);
        len += usize::from(v <= t);
    }
    let hits = &mut scratch[..len];
    let mut live = len;
    for h in hits.iter_mut() {
        if h.1 == exclude {
            *h = DEAD_CANDIDATE;
            live -= 1;
            break;
        }
    }
    if live < k {
        obs_selection_fallbacks().incr();
        return bottom_k_reference(xs, k, exclude);
    }
    if k < hits.len() {
        hits.select_nth_unstable(k - 1);
    }
    let head = &mut hits[..k];
    head.sort_unstable();
    head.iter().map(|&(b, j)| (f64::from_bits(b), j)).collect()
}

/// The general-purpose selection as `(value, index)` pairs — the small-
/// row path and sample-undershoot fallback of [`bottom_k_nonneg`].
fn bottom_k_reference(xs: &[f64], k: usize, exclude: usize) -> Vec<(f64, usize)> {
    bottom_k_asc_excluding(xs, k, exclude)
        .into_iter()
        .map(|j| (xs[j], j))
        .collect()
}

/// Selects the `k` nearest neighbours of row `i` from its squared
/// distances, appending indices and (root) distances to the flat output
/// vectors. `scratch` is the reusable candidate shortlist.
fn select_row(
    sq_dists: &[f64],
    i: usize,
    k: usize,
    neighbors: &mut Vec<usize>,
    distances: &mut Vec<f64>,
    scratch: &mut Vec<(u64, usize)>,
) {
    let selected = bottom_k_nonneg(sq_dists, k, i, scratch);
    debug_assert_eq!(selected.len(), k);
    for (v, j) in selected {
        distances.push(v.sqrt());
        neighbors.push(j);
    }
}

/// The reference selection: the general-purpose index-excluding
/// [`bottom_k_asc_excluding`] (an `n`-sized index vector plus
/// `select_nth` per row), kept on the naive path so the benchmarks
/// compare the full production kernel — distances *and* selection —
/// against the straightforward implementation.
fn select_row_reference(
    sq_dists: &[f64],
    i: usize,
    k: usize,
    neighbors: &mut Vec<usize>,
    distances: &mut Vec<f64>,
) {
    let idx = bottom_k_asc_excluding(sq_dists, k, i);
    debug_assert_eq!(idx.len(), k);
    for &j in &idx {
        distances.push(sq_dists[j].sqrt());
    }
    neighbors.extend(idx);
}

/// The blocked-kernel input both storage precisions expose: a row
/// count plus the block distance pass. Lets one parallel driver serve
/// the f64 and f32 gathers.
trait BlockSource: Sync {
    fn src_n_rows(&self) -> usize;
    fn block_into(&self, i0: usize, i1: usize, out: &mut [f64]);
}

impl BlockSource for GatheredMatrix {
    fn src_n_rows(&self) -> usize {
        self.n_rows()
    }

    fn block_into(&self, i0: usize, i1: usize, out: &mut [f64]) {
        self.sq_dists_block_into(i0, i1, out);
    }
}

impl BlockSource for GatheredMatrixF32 {
    fn src_n_rows(&self) -> usize {
        self.n_rows()
    }

    fn block_into(&self, i0: usize, i1: usize, out: &mut [f64]) {
        self.sq_dists_block_into(i0, i1, out);
    }
}

/// Computes the kNN table with the blocked norm-trick kernel, row
/// blocks fanned out across cores (deterministic: per-row outputs are
/// independent of the thread schedule).
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table_blocked(data: &ProjectedMatrix, k: usize) -> KnnTable {
    let n = data.n_rows();
    assert!(n >= 2, "kNN needs at least two rows");
    assert!(k >= 1, "k must be at least 1");
    let k = k.min(n - 1);
    obs_blocked_builds().incr();
    knn_table_blocked_impl(&GatheredMatrix::new(data), k)
}

/// The `precision=f32` twin of [`knn_table_blocked`]: gathers columns
/// as `f32` (one rounding per element) and accumulates in `f64`.
/// Squared distances differ from the f64 kernel only through that
/// gather rounding; duplicate rows still measure exactly `0.0`, so
/// self-exclusion and tie order behave identically.
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table_blocked_f32(data: &ProjectedMatrix, k: usize) -> KnnTable {
    let n = data.n_rows();
    assert!(n >= 2, "kNN needs at least two rows");
    assert!(k >= 1, "k must be at least 1");
    let k = k.min(n - 1);
    obs_blocked_builds().incr();
    obs_f32_builds().incr();
    knn_table_blocked_impl(&GatheredMatrixF32::new(data), k)
}

/// The shared parallel block driver behind both precisions.
fn knn_table_blocked_impl<S: BlockSource>(gathered_ref: &S, k: usize) -> KnnTable {
    let n = gathered_ref.src_n_rows();
    let chunk = BLOCK_ROWS * BLOCKS_PER_CHUNK;
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(n)))
        .collect();
    let parts: Vec<(Vec<usize>, Vec<f64>)> = par_map(&ranges, |&(start, end)| {
        let mut scratch = vec![0.0f64; BLOCK_ROWS * n];
        let mut shortlist: Vec<(u64, usize)> = Vec::new();
        let mut neighbors = Vec::with_capacity((end - start) * k);
        let mut distances = Vec::with_capacity((end - start) * k);
        let mut blocks = 0u64;
        let mut i0 = start;
        while i0 < end {
            let i1 = (i0 + BLOCK_ROWS).min(end);
            gathered_ref.block_into(i0, i1, &mut scratch);
            blocks += 1;
            for i in i0..i1 {
                let row = &scratch[(i - i0) * n..(i - i0 + 1) * n];
                select_row(row, i, k, &mut neighbors, &mut distances, &mut shortlist);
            }
            i0 = i1;
        }
        obs_block_passes().add(blocks);
        (neighbors, distances)
    });

    let mut neighbors = Vec::with_capacity(n * k);
    let mut distances = Vec::with_capacity(n * k);
    for (nb, di) in parts {
        neighbors.extend(nb);
        distances.extend(di);
    }
    KnnTable::from_flat(neighbors, distances, n, k)
}

/// Computes the kNN table with the sequential row-by-row [`sq_dist`]
/// scan — the reference implementation the blocked kernel is tested and
/// benchmarked against.
///
/// # Panics
/// Panics if `data` has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table_naive(data: &ProjectedMatrix, k: usize) -> KnnTable {
    let n = data.n_rows();
    assert!(n >= 2, "kNN needs at least two rows");
    assert!(k >= 1, "k must be at least 1");
    let k = k.min(n - 1);
    obs_naive_builds().incr();

    let mut neighbors = Vec::with_capacity(n * k);
    let mut distances = Vec::with_capacity(n * k);
    let mut row_dists = vec![0.0f64; n];
    for i in 0..n {
        let ri = data.row(i);
        for (j, dj) in row_dists.iter_mut().enumerate() {
            *dj = sq_dist(ri, data.row(j));
        }
        select_row_reference(&row_dists, i, k, &mut neighbors, &mut distances);
    }
    KnnTable::from_flat(neighbors, distances, n, k)
}

/// Builds the kNN table from a precomputed pairwise squared-distance
/// matrix — the consumer side of the incremental subspace-distance path
/// ([`anomex_dataset::distances::IncrementalDistances`]).
///
/// # Panics
/// Panics if the matrix has fewer than 2 rows or `k == 0`.
#[must_use]
pub fn knn_table_from_sq_dists(dists: &SqDistMatrix, k: usize) -> KnnTable {
    let n = dists.n_rows();
    assert!(n >= 2, "kNN needs at least two rows");
    assert!(k >= 1, "k must be at least 1");
    let k = k.min(n - 1);
    obs_matrix_builds().incr();

    let mut neighbors = Vec::with_capacity(n * k);
    let mut distances = Vec::with_capacity(n * k);
    let mut shortlist: Vec<(u64, usize)> = Vec::new();
    for i in 0..n {
        select_row(
            dists.row(i),
            i,
            k,
            &mut neighbors,
            &mut distances,
            &mut shortlist,
        );
    }
    KnnTable::from_flat(neighbors, distances, n, k)
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, d: usize, seed: u64) -> ProjectedMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_rows(
            (0..n)
                .map(|_| (0..d).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect(),
        )
        .unwrap()
        .full_matrix()
    }

    #[test]
    fn block_kernel_matches_sq_dist() {
        let m = random_matrix(37, 3, 7);
        let g = GatheredMatrix::new(&m);
        let mut out = vec![0.0; BLOCK_ROWS * m.n_rows()];
        let mut i0 = 0;
        while i0 < m.n_rows() {
            let i1 = (i0 + BLOCK_ROWS).min(m.n_rows());
            g.sq_dists_block_into(i0, i1, &mut out);
            for i in i0..i1 {
                for j in 0..m.n_rows() {
                    let want = m.sq_dist(i, j);
                    let got = out[(i - i0) * m.n_rows() + j];
                    assert!(
                        (got - want).abs() < 1e-9 * want.max(1.0),
                        "({i},{j}): {got} vs {want}"
                    );
                }
            }
            i0 = i1;
        }
    }

    #[test]
    fn identical_rows_give_exact_zero() {
        let m = Dataset::from_rows(vec![vec![3.5, -2.25, 0.5]; 9])
            .unwrap()
            .full_matrix();
        let g = GatheredMatrix::new(&m);
        let mut out = vec![0.0; BLOCK_ROWS * 9];
        g.sq_dists_block_into(0, 8, &mut out);
        assert!(out[..8 * 9].iter().all(|&d| d == 0.0));
    }

    #[test]
    fn blocked_and_naive_tables_agree() {
        let m = random_matrix(83, 4, 11);
        let blocked = knn_table_blocked(&m, 6);
        let naive = knn_table_naive(&m, 6);
        assert_eq!(blocked.k(), naive.k());
        for i in 0..m.n_rows() {
            for (a, b) in blocked.distances(i).iter().zip(naive.distances(i)) {
                assert!((a - b).abs() < 1e-9, "row {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn matrix_path_is_bit_identical_to_naive() {
        let ds = Dataset::from_rows(
            (0..40)
                .map(|i| vec![(i % 7) as f64 * 0.3, (i % 5) as f64 * 1.7, i as f64 * 0.01])
                .collect(),
        )
        .unwrap();
        let inc = anomex_dataset::IncrementalDistances::new(4);
        let s = anomex_dataset::Subspace::full(3);
        let dists = inc.sq_dists(&ds, &s);
        let from_matrix = knn_table_from_sq_dists(&dists, 5);
        let naive = knn_table_naive(&ds.project(&s), 5);
        assert_eq!(from_matrix, naive);
    }

    #[test]
    fn sampled_selection_matches_general_selection() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut shortlist: Vec<(u64, usize)> = Vec::new();
        for trial in 0..120 {
            // Alternate short rows (reference path) and long rows (the
            // sampled-threshold path, incl. its undershoot fallback).
            let n = if trial % 2 == 0 {
                5 + trial % 60
            } else {
                MIN_SAMPLED_LEN + 17 * (trial % 50)
            };
            // Coarse grid on a third of the trials to force exact ties.
            let xs: Vec<f64> = (0..n)
                .map(|_| {
                    let v = rng.gen_range(0.0..8.0);
                    if trial % 3 == 0 {
                        (v * 2.0).round() * 0.5
                    } else {
                        v
                    }
                })
                .collect();
            let exclude = trial % n;
            for k in [1usize, 3, 15, 40] {
                let k = k.min(n - 1);
                let want = bottom_k_asc_excluding(&xs, k, exclude);
                let got: Vec<usize> = bottom_k_nonneg(&xs, k, exclude, &mut shortlist)
                    .into_iter()
                    .map(|(_, j)| j)
                    .collect();
                assert_eq!(got, want, "n={n} k={k} exclude={exclude}");
            }
        }
    }

    #[test]
    fn sampled_threshold_undershoot_falls_back_to_reference() {
        // Deterministic construction that forces the undershoot branch:
        // n = 256 rows with SELECT_SAMPLE = 64 gives stride 4, so the
        // sample reads exactly the indices 0, 4, …, 252. Plant the 64
        // smallest values 1.0..=64.0 on those sampled slots and park
        // everything else at 1000 + j. The sample rank for k = 40 is
        // r = ceil(64·41 / 256) + 2 = 13, so the threshold lands on
        // t = 13.0 — but only the 13 planted values ≤ t survive the
        // compaction pass, far short of k = 40 live candidates, and the
        // row must take the reference fallback.
        assert_eq!(SELECT_SAMPLE, 64, "construction assumes a 64-point sample");
        let n = MIN_SAMPLED_LEN;
        let k = 40;
        let exclude = 2; // non-sampled, non-candidate slot
        let mut xs: Vec<f64> = (0..n).map(|j| 1000.0 + j as f64).collect();
        for s in 0..SELECT_SAMPLE {
            xs[s * 4] = (s + 1) as f64;
        }
        assert_eq!(sampled_threshold(&xs, k, exclude), 13.0);

        let before = obs_selection_fallbacks().get();
        let mut shortlist: Vec<(u64, usize)> = Vec::new();
        let got = bottom_k_nonneg(&xs, k, exclude, &mut shortlist);
        assert!(
            obs_selection_fallbacks().get() > before,
            "the undershoot branch must record a selection fallback"
        );
        // Pinned output: the k smallest live at the first 40 sampled
        // slots, ascending — and must agree with the general selection.
        let want: Vec<(f64, usize)> = (0..k).map(|s| ((s + 1) as f64, 4 * s)).collect();
        assert_eq!(got, want);
        assert_eq!(got, bottom_k_reference(&xs, k, exclude));
        let general = bottom_k_asc_excluding(&xs, k, exclude);
        assert_eq!(got.iter().map(|&(_, j)| j).collect::<Vec<_>>(), general);
    }

    #[test]
    fn simd_block_kernel_is_bitwise_scalar() {
        // The unrolled kernel must reproduce the scalar reference to the
        // last bit for every row-count/dim residue mod 4 (the golden
        // artifacts depend on this).
        for (n, d) in [(12, 4), (13, 5), (14, 6), (15, 7), (9, 1), (21, 3)] {
            let m = random_matrix(n, d, 100 + (n * d) as u64);
            let g = GatheredMatrix::new(&m);
            let rows = BLOCK_ROWS.min(n);
            let mut fast = vec![0.0; rows * n];
            let mut reference = vec![0.0; rows * n];
            let mut i0 = 0;
            while i0 < n {
                let i1 = (i0 + rows).min(n);
                g.sq_dists_block_into(i0, i1, &mut fast);
                g.sq_dists_block_scalar_into(i0, i1, &mut reference);
                let len = (i1 - i0) * n;
                assert!(
                    fast[..len]
                        .iter()
                        .zip(&reference[..len])
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "n={n} d={d} block {i0}..{i1}"
                );
                i0 = i1;
            }
        }
    }

    #[test]
    fn f32_table_matches_f64_ranks() {
        let m = random_matrix(90, 5, 23);
        let f64_table = knn_table_blocked(&m, 6);
        let f32_table = knn_table_blocked_f32(&m, 6);
        assert_eq!(f64_table.k(), f32_table.k());
        for i in 0..m.n_rows() {
            // Continuous random data has no near-ties at f32 resolution,
            // so neighbour identity must match exactly and distances to
            // f32 relative accuracy.
            assert_eq!(f64_table.neighbors(i), f32_table.neighbors(i), "row {i}");
            for (a, b) in f64_table.distances(i).iter().zip(f32_table.distances(i)) {
                assert!(
                    (a - b).abs() <= 1e-5 * a.abs().max(1.0),
                    "row {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn sampled_selection_handles_constant_rows() {
        // Every element ties: the threshold pass collects the whole row
        // and the (value, index) order must still match the reference.
        let xs = vec![2.5f64; MIN_SAMPLED_LEN * 2];
        let mut shortlist: Vec<(u64, usize)> = Vec::new();
        let want = bottom_k_asc_excluding(&xs, 15, 3);
        let got: Vec<usize> = bottom_k_nonneg(&xs, 15, 3, &mut shortlist)
            .into_iter()
            .map(|(_, j)| j)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn fast_and_reference_selection_build_identical_tables() {
        // knn_table_from_sq_dists uses the sampled-threshold selection,
        // knn_table_naive the general one; the tables must be equal
        // bit-for-bit (same distances folded in the same order). The
        // duplicate-heavy grid keeps ties in play and n is large enough
        // to take the sampled path rather than the small-row fallback.
        let n = MIN_SAMPLED_LEN + 44;
        let ds = Dataset::from_rows(
            (0..n)
                .map(|i| vec![(i % 4) as f64, (i % 9) as f64 * 0.25])
                .collect::<Vec<Vec<f64>>>(),
        )
        .unwrap();
        let inc = anomex_dataset::IncrementalDistances::new(2);
        let dists = inc.sq_dists(&ds, &anomex_dataset::Subspace::full(2));
        assert_eq!(
            knn_table_from_sq_dists(&dists, 7),
            knn_table_naive(&ds.full_matrix(), 7)
        );
    }

    #[test]
    fn partial_final_block_is_handled() {
        // n deliberately not a multiple of the block size.
        let m = random_matrix(BLOCK_ROWS * 2 + 3, 2, 3);
        let blocked = knn_table_blocked(&m, 4);
        let naive = knn_table_naive(&m, 4);
        for i in 0..m.n_rows() {
            for (a, b) in blocked.distances(i).iter().zip(naive.distances(i)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
