//! The fit/score lifecycle split: freeze a detector's expensive,
//! data-dependent state once, then serve scores from it many times.
//!
//! The evaluation harness refits every detector from scratch per
//! (dataset, detector, subspace) request — fine for offline tables,
//! wasteful for a serving path that answers many queries against the
//! same projection. A [`FittedModel`] is the frozen product of one such
//! fit: LOF and kNN-distance freeze their [`crate::knn::KnnTable`],
//! Fast ABOD its kNN reference set plus the projected coordinates, and
//! Isolation Forest its trained tree ensembles.
//!
//! The contract is **bit-identity**: [`FittedModel::score_fit_rows`]
//! must return exactly the vector [`Detector::score_all`] would produce
//! on the matrix the model was fitted to — same arithmetic, same
//! accumulation order. The serving registry
//! (`anomex-serve`) relies on this to guarantee that a registry-served
//! score equals the direct engine call.
//!
//! ```
//! use anomex_dataset::Dataset;
//! use anomex_detectors::fit::fit_model;
//! use anomex_detectors::{Detector, Lof};
//!
//! let ds = Dataset::from_rows(
//!     (0..12).map(|i| vec![f64::from(i % 4), f64::from(i / 4)]).collect(),
//! )
//! .unwrap();
//! let m = ds.full_matrix();
//! let lof = Lof::new(3).unwrap();
//! let fitted = fit_model(&lof, &m);
//! assert_eq!(fitted.score_fit_rows(), lof.score_all(&m));
//! ```

use crate::Detector;
use anomex_dataset::ProjectedMatrix;
use std::sync::OnceLock;

/// Process-wide meters separating *incremental update* work (an exact
/// kNN merge absorbed the new rows without rescanning old pairs) from
/// *rebuild* work (the model refit itself from scratch on the extended
/// matrix). The serve registry's append path is judged by this split.
pub(crate) fn obs_append_merges() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("detectors.append.merges"))
}

pub(crate) fn obs_append_rebuilds() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("detectors.append.rebuilds"))
}

/// A detector frozen against one projected matrix: the expensive
/// data-dependent state (kNN tables, tree ensembles, reference sets) is
/// computed once at fit time, after which scoring is read-only and safe
/// to share across threads.
pub trait FittedModel: Send + Sync {
    /// Scores of the rows the model was fitted on, **bit-identical** to
    /// [`Detector::score_all`] over the fit matrix.
    fn score_fit_rows(&self) -> Vec<f64>;

    /// Short identifier of the underlying detector (e.g. `"LOF"`).
    fn name(&self) -> &'static str;

    /// Number of rows of the fit matrix.
    fn n_rows(&self) -> usize;

    /// Absorbs `added` rows, returning a **new** model fitted to the
    /// extended matrix (old rows first, `added` below). Models are
    /// Arc-shared by the serve registry, so ingestion is copy-on-write
    /// — the receiver is never mutated.
    ///
    /// The returned model is bit-identical to refitting the detector on
    /// the extended matrix: exact-backend kNN models merge their stored
    /// table with the new rows (counted by `detectors.append.merges`);
    /// other models refit in place (counted by
    /// `detectors.append.rebuilds`), which for the seeded Isolation
    /// Forest is the identical computation a fresh fit would run.
    ///
    /// Returns `None` (the default) when the model cannot absorb rows:
    /// no stored coordinates ([`PrecomputedScores`]) or a
    /// dimensionality mismatch. Callers then refit from scratch.
    fn append_rows(&self, added: &ProjectedMatrix) -> Option<Box<dyn FittedModel>> {
        let _ = added;
        None
    }
}

/// Fallback fitted model for detectors without a dedicated fit path
/// (e.g. LODA): the "frozen state" is the score vector itself, computed
/// eagerly at fit time.
pub struct PrecomputedScores {
    name: &'static str,
    scores: Vec<f64>,
}

impl PrecomputedScores {
    /// Runs `detector` on `data` once and freezes the resulting scores.
    #[must_use]
    pub fn fit(detector: &dyn Detector, data: &ProjectedMatrix) -> Self {
        PrecomputedScores {
            name: detector.name(),
            scores: detector.score_all(data),
        }
    }
}

impl FittedModel for PrecomputedScores {
    fn score_fit_rows(&self) -> Vec<f64> {
        self.scores.clone()
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn n_rows(&self) -> usize {
        self.scores.len()
    }
}

/// Fits `detector` to `data`: the detector's dedicated fit path when it
/// has one ([`Detector::fit`]), the [`PrecomputedScores`] fallback
/// otherwise. Either way the returned model's scores are bit-identical
/// to `detector.score_all(data)`.
#[must_use]
pub fn fit_model(detector: &dyn Detector, data: &ProjectedMatrix) -> Box<dyn FittedModel> {
    detector
        .fit(data)
        .unwrap_or_else(|| Box::new(PrecomputedScores::fit(detector, data)))
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use crate::Loda;
    use anomex_dataset::Dataset;

    #[test]
    fn fallback_freezes_scores() {
        let ds = Dataset::from_rows(
            (0..20)
                .map(|i| vec![f64::from(i % 5) * 0.1, f64::from(i / 5) * 0.1])
                .collect(),
        )
        .unwrap();
        let m = ds.full_matrix();
        let loda = Loda::builder().projections(10).seed(7).build().unwrap();
        let fitted = fit_model(&loda, &m);
        assert_eq!(fitted.name(), loda.name());
        assert_eq!(fitted.n_rows(), m.n_rows());
        assert_eq!(fitted.score_fit_rows(), loda.score_all(&m));
        // Scoring twice from the frozen state is free of re-fit drift.
        assert_eq!(fitted.score_fit_rows(), fitted.score_fit_rows());
    }
}
