//! Property-based tests for subspaces, datasets and the CSV codec.

use anomex_dataset::csv::{read_csv, write_csv};
use anomex_dataset::subspace::{enumerate_subspaces, n_choose_k};
use anomex_dataset::{Dataset, Subspace};
use proptest::prelude::*;

fn feature_set() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..64, 0..12)
}

fn small_matrix() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        prop::collection::vec(prop::collection::vec(-1e3f64..1e3, c..=c), r..=r)
    })
}

proptest! {
    #[test]
    fn subspace_canonical_idempotent(fs in feature_set()) {
        let a = Subspace::new(fs.clone());
        let b = Subspace::new(a.iter().collect::<Vec<_>>());
        prop_assert_eq!(&a, &b);
        // Sorted, deduplicated.
        for w in a.features().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn subspace_union_laws(a in feature_set(), b in feature_set()) {
        let sa = Subspace::new(a);
        let sb = Subspace::new(b);
        let u = sa.union(&sb);
        // Commutative, absorbing, superset of both.
        prop_assert_eq!(&u, &sb.union(&sa));
        prop_assert!(u.is_superset_of(&sa));
        prop_assert!(u.is_superset_of(&sb));
        prop_assert_eq!(&u.union(&sa), &u);
        // |A∪B| = |A| + |B| − |A∩B|
        prop_assert_eq!(u.dim(), sa.dim() + sb.dim() - sa.intersection_size(&sb));
    }

    #[test]
    fn subset_iff_union_absorbs(a in feature_set(), b in feature_set()) {
        let sa = Subspace::new(a);
        let sb = Subspace::new(b);
        prop_assert_eq!(sa.is_subset_of(&sb), sa.union(&sb) == sb);
    }

    #[test]
    fn extend_adds_exactly_one(a in feature_set(), f in 0usize..64) {
        let s = Subspace::new(a);
        match s.extended_with(f) {
            Some(e) => {
                prop_assert_eq!(e.dim(), s.dim() + 1);
                prop_assert!(e.contains(f));
                prop_assert!(e.is_superset_of(&s));
            }
            None => prop_assert!(s.contains(f)),
        }
    }

    #[test]
    fn enumeration_count_matches_binomial(d in 1usize..9, k in 1usize..5) {
        let n = enumerate_subspaces(d, k).count();
        prop_assert_eq!(n as u128, n_choose_k(d, k));
        // All enumerated subspaces have the right dim and are unique.
        let all: Vec<Subspace> = enumerate_subspaces(d, k).collect();
        for s in &all {
            prop_assert_eq!(s.dim(), k.min(d));
        }
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), all.len());
    }

    #[test]
    fn dataset_rows_columns_agree(rows in small_matrix()) {
        let ds = Dataset::from_rows(rows.clone()).unwrap();
        prop_assert_eq!(ds.n_rows(), rows.len());
        prop_assert_eq!(ds.n_features(), rows[0].len());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(&ds.row(i), row);
        }
    }

    #[test]
    fn projection_preserves_values(rows in small_matrix()) {
        let ds = Dataset::from_rows(rows).unwrap();
        let sub = Subspace::new([0usize]);
        let proj = ds.project(&sub);
        for i in 0..ds.n_rows() {
            prop_assert_eq!(proj.row(i)[0], ds.value(i, 0));
        }
        let full = ds.full_matrix();
        for i in 0..ds.n_rows() {
            prop_assert_eq!(full.row(i).to_vec(), ds.row(i));
        }
    }

    #[test]
    fn min_max_scaled_in_unit_interval(rows in small_matrix()) {
        let ds = Dataset::from_rows(rows).unwrap().min_max_scaled();
        for f in 0..ds.n_features() {
            for &v in ds.column(f) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn correlation_symmetric_and_bounded(rows in small_matrix()) {
        let ds = Dataset::from_rows(rows).unwrap();
        for i in 0..ds.n_features() {
            for j in 0..ds.n_features() {
                let c = ds.correlation(i, j);
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
                prop_assert!((c - ds.correlation(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn csv_round_trip(rows in small_matrix()) {
        let ds = Dataset::from_rows(rows).unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(&buf[..], true).unwrap();
        prop_assert_eq!(back.n_rows(), ds.n_rows());
        prop_assert_eq!(back.n_features(), ds.n_features());
        for i in 0..ds.n_rows() {
            for f in 0..ds.n_features() {
                prop_assert_eq!(back.value(i, f), ds.value(i, f));
            }
        }
    }
}
