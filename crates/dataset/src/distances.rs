//! Incremental pairwise squared-distance matrices for subspace search.
//!
//! Stage-wise explorations (Beam, RefOut refinement) score chains of
//! subspaces `S ∪ {f}` that differ by a single feature. Squared
//! Euclidean distances decompose per feature —
//! `‖a_S − b_S‖² = Σ_{f ∈ S} (a_f − b_f)²` — so the pairwise distance
//! matrix of `S ∪ {f}` is the matrix of `S` plus the *per-feature
//! contribution plane* of `f`. [`IncrementalDistances`] memoizes both
//! the per-feature planes and recently built subspace matrices (bounded
//! FIFO residency), turning the O(N²·|S|) distance recomputation of a
//! cache miss into an O(N²) plane add whenever the canonical parent of
//! the requested subspace is still resident.
//!
//! **Determinism.** A matrix's values never depend on *how* it was
//! built: both the full build and the incremental build fold the
//! feature planes in ascending feature order (the incremental path only
//! extends the parent `S \ {max(S)}`, whose own fold is the ascending
//! prefix), so the floating-point result is bit-identical either way —
//! cache evictions can change cost, never scores.

use crate::dataset::Dataset;
use crate::subspace::Subspace;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};

/// A dense `n × n` matrix of pairwise squared Euclidean distances
/// (row-major, zero diagonal, symmetric).
#[derive(Debug, Clone, PartialEq)]
pub struct SqDistMatrix {
    data: Vec<f64>,
    n: usize,
}

impl SqDistMatrix {
    /// Wraps a row-major `n × n` buffer of squared distances.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    #[must_use]
    pub fn new(data: Vec<f64>, n: usize) -> Self {
        assert_eq!(
            data.len(),
            n * n,
            "buffer length {} does not match {n}x{n}",
            data.len()
        );
        SqDistMatrix { data, n }
    }

    /// Number of rows (= columns).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// The squared distances of row `i` to every row, as a slice of
    /// length `n_rows` — directly consumable by k-smallest selection.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The squared distance between rows `i` and `j`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }
}

/// Telemetry of an [`IncrementalDistances`] cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalDistancesStats {
    /// Requests answered by a resident subspace matrix.
    pub matrix_hits: usize,
    /// Matrices built as parent-matrix + one feature plane (the fast
    /// incremental path).
    pub incremental_builds: usize,
    /// Matrices built by folding every feature plane from scratch.
    pub full_builds: usize,
    /// Feature planes computed (a plane cache miss).
    pub planes_computed: usize,
}

/// Bounded caches shared under one lock; see [`IncrementalDistances`].
struct Caches {
    planes: HashMap<u16, Arc<Vec<f64>>>,
    plane_order: VecDeque<u16>,
    matrices: HashMap<Subspace, Arc<SqDistMatrix>>,
    matrix_order: VecDeque<Subspace>,
    stats: IncrementalDistancesStats,
}

/// A bounded, thread-safe memo of per-feature distance planes and
/// per-subspace distance matrices over one dataset — see the
/// [module docs](self).
///
/// The cache itself stores no dataset reference: the caller passes the
/// dataset to [`IncrementalDistances::sq_dists`] and is responsible for
/// always pairing one cache with one dataset (the same contract as the
/// score cache). Memory residency is bounded by `capacity` matrices
/// *and* `capacity` planes, each `n² × 8` bytes; evictions are FIFO and
/// only ever cost recomputation, never change values.
pub struct IncrementalDistances {
    capacity: usize,
    inner: Mutex<Caches>,
}

impl IncrementalDistances {
    /// A cache keeping at most `capacity ≥ 1` subspace matrices and
    /// `capacity` feature planes resident.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        IncrementalDistances {
            capacity,
            inner: Mutex::new(Caches {
                planes: HashMap::new(),
                plane_order: VecDeque::new(),
                matrices: HashMap::new(),
                matrix_order: VecDeque::new(),
                stats: IncrementalDistancesStats::default(),
            }),
        }
    }

    /// The configured residency bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the cache telemetry.
    #[must_use]
    pub fn stats(&self) -> IncrementalDistancesStats {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats
    }

    /// The pairwise squared-distance matrix of `dataset` projected onto
    /// `subspace`, built incrementally from the canonical parent
    /// `subspace \ {max feature}` when that matrix is still resident.
    ///
    /// Values are bit-deterministic regardless of cache state (see the
    /// [module docs](self)). The internal lock is held for the duration
    /// of a build: concurrent callers requesting cold subspaces
    /// serialize here, which is acceptable because the score cache above
    /// this layer already deduplicates concurrent misses per subspace.
    ///
    /// # Panics
    /// Panics when `subspace` is empty or references a feature out of
    /// bounds.
    #[must_use]
    pub fn sq_dists(&self, dataset: &Dataset, subspace: &Subspace) -> Arc<SqDistMatrix> {
        assert!(
            !subspace.is_empty(),
            "cannot build distances of the empty subspace"
        );
        let n = dataset.n_rows();
        // Poison recovery: the cache holds only derived data, so a
        // panicking earlier holder leaves nothing logically torn.
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // Reborrow the guard as a plain `&mut Caches` so the borrow
        // checker can split the disjoint field borrows below.
        let mut inner = &mut *guard;

        if let Some(m) = inner.matrices.get(subspace) {
            inner.stats.matrix_hits += 1;
            return Arc::clone(m);
        }

        let features = subspace.features();
        let last = features[features.len() - 1];
        let parent = if features.len() > 1 {
            Some(Subspace::new(
                features[..features.len() - 1].iter().map(|&f| f as usize),
            ))
        } else {
            None
        };

        let base: Option<Vec<f64>> = parent
            .as_ref()
            .and_then(|p| inner.matrices.get(p))
            .map(|m| m.data.clone());
        let mut data: Vec<f64> = match base {
            Some(data) => {
                // Incremental: parent fold (ascending prefix) + last plane.
                inner.stats.incremental_builds += 1;
                data
            }
            None => {
                // Full build: fold every plane in ascending feature order.
                let mut data = vec![0.0f64; n * n];
                for &f in &features[..features.len() - 1] {
                    let plane = Self::plane(&mut inner, dataset, f, self.capacity);
                    add_assign(&mut data, &plane);
                }
                inner.stats.full_builds += 1;
                data
            }
        };
        let last_plane = Self::plane(&mut inner, dataset, last, self.capacity);
        add_assign(&mut data, &last_plane);

        let matrix = Arc::new(SqDistMatrix::new(data, n));
        inner.matrices.insert(subspace.clone(), Arc::clone(&matrix));
        inner.matrix_order.push_back(subspace.clone());
        while inner.matrix_order.len() > self.capacity {
            if let Some(old) = inner.matrix_order.pop_front() {
                inner.matrices.remove(&old);
            }
        }
        matrix
    }

    /// The per-feature squared-difference plane of feature `f`
    /// (`plane[i * n + j] = (x_if − x_jf)²`), memoized FIFO-bounded.
    fn plane(inner: &mut Caches, dataset: &Dataset, f: u16, capacity: usize) -> Arc<Vec<f64>> {
        if let Some(p) = inner.planes.get(&f) {
            return Arc::clone(p);
        }
        let col = dataset.column(f as usize);
        let n = col.len();
        let mut plane = vec![0.0f64; n * n];
        for i in 0..n {
            let ci = col[i];
            let row = &mut plane[i * n..(i + 1) * n];
            for (j, out) in row.iter_mut().enumerate() {
                let d = ci - col[j];
                *out = d * d;
            }
        }
        let plane = Arc::new(plane);
        inner.planes.insert(f, Arc::clone(&plane));
        inner.plane_order.push_back(f);
        while inner.plane_order.len() > capacity {
            if let Some(old) = inner.plane_order.pop_front() {
                inner.planes.remove(&old);
            }
        }
        inner.stats.planes_computed += 1;
        plane
    }
}

/// Elementwise `out += plane`.
fn add_assign(out: &mut [f64], plane: &[f64]) {
    debug_assert_eq!(out.len(), plane.len());
    for (o, &p) in out.iter_mut().zip(plane) {
        *o += p;
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use crate::view::sq_dist;

    fn toy() -> Dataset {
        Dataset::from_rows(vec![
            vec![0.0, 1.0, 5.0],
            vec![1.0, 0.0, 2.0],
            vec![2.0, 2.0, 1.0],
            vec![0.5, 0.5, 0.5],
        ])
        .unwrap()
    }

    fn brute(ds: &Dataset, s: &Subspace) -> Vec<f64> {
        let m = ds.project(s);
        let n = m.n_rows();
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                out[i * n + j] = sq_dist(m.row(i), m.row(j));
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_projection_distances() {
        let ds = toy();
        let inc = IncrementalDistances::new(8);
        for s in [
            Subspace::new([0usize]),
            Subspace::new([0usize, 1]),
            Subspace::new([0usize, 1, 2]),
            Subspace::new([1usize, 2]),
        ] {
            let got = inc.sq_dists(&ds, &s);
            let want = brute(&ds, &s);
            assert_eq!(got.n_rows(), 4);
            for i in 0..4 {
                for j in 0..4 {
                    assert!(
                        (got.get(i, j) - want[i * 4 + j]).abs() < 1e-12,
                        "{s:?} at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_path_is_bit_identical_to_full_build() {
        let ds = toy();
        let s01 = Subspace::new([0usize, 1]);
        let s012 = Subspace::new([0usize, 1, 2]);

        // Warm parent → child built incrementally.
        let warm = IncrementalDistances::new(8);
        let _ = warm.sq_dists(&ds, &s01);
        let via_parent = warm.sq_dists(&ds, &s012);
        assert_eq!(warm.stats().incremental_builds, 1);

        // Cold cache → child folded from scratch.
        let cold = IncrementalDistances::new(8);
        let from_scratch = cold.sq_dists(&ds, &s012);
        assert_eq!(cold.stats().incremental_builds, 0);

        assert_eq!(
            *via_parent, *from_scratch,
            "fold order must match bit-for-bit"
        );
    }

    #[test]
    fn hits_and_eviction() {
        let ds = toy();
        let inc = IncrementalDistances::new(1);
        let s0 = Subspace::new([0usize]);
        let s1 = Subspace::new([1usize]);
        let a = inc.sq_dists(&ds, &s0);
        let b = inc.sq_dists(&ds, &s0);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(inc.stats().matrix_hits, 1);
        // Capacity 1: requesting another subspace evicts the first…
        let _ = inc.sq_dists(&ds, &s1);
        let c = inc.sq_dists(&ds, &s0);
        // …so this rebuild is value-identical but not pointer-identical.
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(*a, *c);
    }

    #[test]
    fn plane_memoization_counts() {
        let ds = toy();
        let inc = IncrementalDistances::new(8);
        let _ = inc.sq_dists(&ds, &Subspace::new([0usize, 1]));
        let _ = inc.sq_dists(&ds, &Subspace::new([0usize, 2]));
        // Features 0, 1, 2 each computed once; feature 0 reused.
        assert_eq!(inc.stats().planes_computed, 3);
    }

    #[test]
    #[should_panic(expected = "empty subspace")]
    fn rejects_empty_subspace() {
        let ds = toy();
        let inc = IncrementalDistances::new(2);
        let _ = inc.sq_dists(&ds, &Subspace::new(Vec::<usize>::new()));
    }
}
