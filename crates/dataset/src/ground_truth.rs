//! Ground truth: which points are outliers and which subspaces explain
//! them.
//!
//! Mirrors the paper's evaluation protocol (§3.3): each point of interest
//! `p` has a set `REL_p` of relevant subspaces; an explainer's output
//! `EXP_a(p)` is judged by exact membership of its subspaces in `REL_p`,
//! restricted to the points explained at the requested dimensionality.

use crate::subspace::Subspace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outlier points and their relevant subspaces.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// point id → relevant subspaces (each point appears once; the map is
    /// ordered so iteration is deterministic).
    relevant: BTreeMap<usize, Vec<Subspace>>,
}

impl GroundTruth {
    /// An empty ground truth.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `subspace` relevant for `point`. Duplicate declarations
    /// are ignored.
    pub fn add(&mut self, point: usize, subspace: Subspace) {
        let entry = self.relevant.entry(point).or_default();
        if !entry.contains(&subspace) {
            entry.push(subspace);
        }
    }

    /// All outlier point ids, ascending.
    #[must_use]
    pub fn outliers(&self) -> Vec<usize> {
        self.relevant.keys().copied().collect()
    }

    /// Number of outlier points.
    #[must_use]
    pub fn n_outliers(&self) -> usize {
        self.relevant.len()
    }

    /// The relevant subspaces of one point (empty if the point is not an
    /// outlier).
    #[must_use]
    pub fn relevant_for(&self, point: usize) -> &[Subspace] {
        self.relevant.get(&point).map_or(&[], Vec::as_slice)
    }

    /// The relevant subspaces of one point that have exactly `dim`
    /// features.
    #[must_use]
    pub fn relevant_for_at_dim(&self, point: usize, dim: usize) -> Vec<&Subspace> {
        self.relevant_for(point)
            .iter()
            .filter(|s| s.dim() == dim)
            .collect()
    }

    /// Points that, according to the ground truth, are explained by at
    /// least one subspace of exactly `dim` features. The paper's MAP and
    /// Mean Recall are computed over exactly this population.
    #[must_use]
    pub fn points_explained_at_dim(&self, dim: usize) -> Vec<usize> {
        self.relevant
            .iter()
            .filter(|(_, subs)| subs.iter().any(|s| s.dim() == dim))
            .map(|(&p, _)| p)
            .collect()
    }

    /// The deduplicated set of all relevant subspaces, ordered.
    #[must_use]
    pub fn relevant_subspaces(&self) -> Vec<Subspace> {
        let mut all: Vec<Subspace> = self.relevant.values().flatten().cloned().collect();
        all.sort();
        all.dedup();
        all
    }

    /// Histogram of relevant-subspace dimensionalities
    /// (dim → count of distinct relevant subspaces). Regenerates the data
    /// behind the paper's Figure 8.
    #[must_use]
    pub fn dimensionality_histogram(&self) -> BTreeMap<usize, usize> {
        let mut h = BTreeMap::new();
        for s in self.relevant_subspaces() {
            *h.entry(s.dim()).or_insert(0) += 1;
        }
        h
    }

    /// Average number of relevant subspaces per outlier (Table 1).
    #[must_use]
    pub fn mean_subspaces_per_outlier(&self) -> f64 {
        if self.relevant.is_empty() {
            return 0.0;
        }
        let total: usize = self.relevant.values().map(Vec::len).sum();
        total as f64 / self.relevant.len() as f64
    }

    /// Average number of outliers explained per relevant subspace (Table 1).
    #[must_use]
    pub fn mean_outliers_per_subspace(&self) -> f64 {
        let subs = self.relevant_subspaces();
        if subs.is_empty() {
            return 0.0;
        }
        let total: usize = subs
            .iter()
            .map(|s| {
                self.relevant
                    .values()
                    .filter(|rels| rels.contains(s))
                    .count()
            })
            .sum();
        total as f64 / subs.len() as f64
    }

    /// Fraction of outliers explained by exactly `k` relevant subspaces.
    #[must_use]
    pub fn fraction_with_k_subspaces(&self, k: usize) -> f64 {
        if self.relevant.is_empty() {
            return 0.0;
        }
        let n = self.relevant.values().filter(|v| v.len() == k).count();
        n as f64 / self.relevant.len() as f64
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn sample() -> GroundTruth {
        let mut gt = GroundTruth::new();
        gt.add(3, Subspace::new([0usize, 1]));
        gt.add(3, Subspace::new([0usize, 1, 2]));
        gt.add(7, Subspace::new([0usize, 1]));
        gt.add(9, Subspace::new([4usize, 5, 6]));
        gt
    }

    #[test]
    fn outlier_listing() {
        let gt = sample();
        assert_eq!(gt.outliers(), vec![3, 7, 9]);
        assert_eq!(gt.n_outliers(), 3);
        assert!(gt.relevant_for(42).is_empty());
    }

    #[test]
    fn duplicates_ignored() {
        let mut gt = sample();
        gt.add(3, Subspace::new([1usize, 0]));
        assert_eq!(gt.relevant_for(3).len(), 2);
    }

    #[test]
    fn dim_filtering() {
        let gt = sample();
        assert_eq!(gt.points_explained_at_dim(2), vec![3, 7]);
        assert_eq!(gt.points_explained_at_dim(3), vec![3, 9]);
        assert!(gt.points_explained_at_dim(5).is_empty());
        assert_eq!(gt.relevant_for_at_dim(3, 2).len(), 1);
    }

    #[test]
    fn subspace_dedup_and_histogram() {
        let gt = sample();
        assert_eq!(gt.relevant_subspaces().len(), 3); // {0,1} counted once
        let h = gt.dimensionality_histogram();
        assert_eq!(h[&2], 1);
        assert_eq!(h[&3], 2);
    }

    #[test]
    fn table1_statistics() {
        let gt = sample();
        assert!((gt.mean_subspaces_per_outlier() - 4.0 / 3.0).abs() < 1e-12);
        // {0,1} explains 2 points; the two 3d subspaces explain 1 each.
        assert!((gt.mean_outliers_per_subspace() - 4.0 / 3.0).abs() < 1e-12);
        assert!((gt.fraction_with_k_subspaces(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((gt.fraction_with_k_subspaces(2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ground_truth() {
        let gt = GroundTruth::new();
        assert_eq!(gt.mean_subspaces_per_outlier(), 0.0);
        assert_eq!(gt.mean_outliers_per_subspace(), 0.0);
        assert!(gt.outliers().is_empty());
    }
}
