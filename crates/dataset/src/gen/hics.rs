//! Generator for the *HiCS family* of subspace-outlier datasets
//! (paper §3.2, Table 1, Figure 8).
//!
//! The original testbed took the 100-dimensional HiCS benchmark dataset
//! (1000 points) and split it into five nested datasets of 14, 23, 39, 70
//! and 100 features. Each dataset partitions its features into disjoint
//! *blocks* of 2–5 highly correlated features; each block hosts dense
//! diagonal Gaussian clusters plus exactly **five** planted outliers that
//! deviate *jointly* inside the block while staying masked in
//! lower-dimensional projections. About 9 % of outliers deviate in two
//! blocks at once.
//!
//! We regenerate the family from this published recipe. The block layout
//! is fixed so the five presets reproduce Table 1 exactly:
//!
//! | preset | features | blocks (relevant subspaces) | outliers | contamination |
//! |--------|----------|------------------------------|----------|---------------|
//! | `D14`  | 14       | 4                            | 20       | 2 %           |
//! | `D23`  | 23       | 7                            | 34       | 3.4 %         |
//! | `D39`  | 39       | 12                           | 59       | 5.9 %         |
//! | `D70`  | 70       | 22                           | 100      | 10 %          |
//! | `D100` | 100      | 31                           | 143      | 14.3 %        |
//!
//! The presets are *nested*: `D23` extends `D14`'s feature space, and so
//! on, exactly like the paper's split of the one 100d source dataset.

use super::clusters::normal;
use super::Generated;
use crate::dataset::Dataset;
use crate::ground_truth::GroundTruth;
use crate::subspace::Subspace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Number of points in every HiCS-family dataset.
pub const N_ROWS: usize = 1000;

/// Outliers planted per block (paper Table 1: "# Outliers per Relevant
/// Subspace: 5").
pub const OUTLIERS_PER_BLOCK: usize = 5;

/// Radius (standard deviation) of the correlated "tube" the inliers of a
/// block live in. The data lives in `[0, 1]` by construction.
const TUBE_STD: f64 = 0.02;

/// Orthogonal displacement of a planted outlier from the tube, in units
/// of [`TUBE_STD`]. Chosen so LOF separates outliers cleanly in the full
/// block while lower-dimensional projections keep them mixed with the
/// inlier fringe.
const OUTLIER_MIN_DEV: f64 = 7.0;
const OUTLIER_MAX_DEV: f64 = 10.0;

/// Dense segments along the diagonal (the block's "clusters", Figure 6):
/// with probability [`SEGMENT_PROB`] an inlier's diagonal position is
/// drawn from one of these, otherwise uniformly from `[0.1, 0.9]`.
const SEGMENTS: [(f64, f64); 3] = [(0.15, 0.30), (0.45, 0.60), (0.70, 0.85)];
const SEGMENT_PROB: f64 = 0.7;

/// Dimensionality of each of the 31 blocks of the full 100d layout.
/// Cumulative feature counts hit exactly 14, 23, 39, 70 and 100 at block
/// counts 4, 7, 12, 22 and 31.
const BLOCK_DIMS: [usize; 31] = [
    2, 3, 4, 5, // 14 features, 4 blocks      (D14)
    2, 3, 4, // +9  → 23 features, 7 blocks   (D23)
    2, 2, 3, 4, 5, // +16 → 39 features, 12 blocks  (D39)
    2, 2, 3, 3, 3, 3, 3, 4, 4, 4, // +31 → 70 features, 22 blocks  (D70)
    2, 3, 3, 3, 3, 4, 4, 4, 4, // +30 → 100 features, 31 blocks (D100)
];

/// Pairs of blocks that share one outlier point (the paper's "~9 % of
/// outliers are explained by two subspaces"). Ordered so that the shares
/// active in each preset produce exactly the paper's distinct-outlier
/// counts: 0 shares in D14, 1 in D23/D39, 10 in D70, 12 in D100.
const SHARED_PAIRS: [(usize, usize); 12] = [
    (4, 5),
    (12, 13),
    (14, 15),
    (16, 17),
    (18, 19),
    (20, 21),
    (12, 14),
    (13, 15),
    (16, 18),
    (17, 19),
    (22, 23),
    (24, 25),
];

/// The five datasets of the HiCS family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HicsPreset {
    /// 14 features, 4 relevant subspaces, 20 outliers (2 %).
    D14,
    /// 23 features, 7 relevant subspaces, 34 outliers (3.4 %).
    D23,
    /// 39 features, 12 relevant subspaces, 59 outliers (5.9 %).
    D39,
    /// 70 features, 22 relevant subspaces, 100 outliers (10 %).
    D70,
    /// 100 features, 31 relevant subspaces, 143 outliers (14.3 %).
    D100,
}

impl HicsPreset {
    /// All presets in ascending dimensionality.
    #[must_use]
    pub fn all() -> [HicsPreset; 5] {
        [
            HicsPreset::D14,
            HicsPreset::D23,
            HicsPreset::D39,
            HicsPreset::D70,
            HicsPreset::D100,
        ]
    }

    /// Number of features.
    #[must_use]
    pub fn n_features(self) -> usize {
        match self {
            HicsPreset::D14 => 14,
            HicsPreset::D23 => 23,
            HicsPreset::D39 => 39,
            HicsPreset::D70 => 70,
            HicsPreset::D100 => 100,
        }
    }

    /// Number of blocks (planted relevant subspaces).
    #[must_use]
    pub fn n_blocks(self) -> usize {
        match self {
            HicsPreset::D14 => 4,
            HicsPreset::D23 => 7,
            HicsPreset::D39 => 12,
            HicsPreset::D70 => 22,
            HicsPreset::D100 => 31,
        }
    }

    /// Expected number of *distinct* outlier points.
    #[must_use]
    pub fn n_outliers(self) -> usize {
        let placements = OUTLIERS_PER_BLOCK * self.n_blocks();
        placements - self.n_shared()
    }

    fn n_shared(self) -> usize {
        let nb = self.n_blocks();
        SHARED_PAIRS
            .iter()
            .filter(|&&(a, b)| a < nb && b < nb)
            .count()
    }

    /// Short display name (e.g. `"HiCS-14d"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HicsPreset::D14 => "HiCS-14d",
            HicsPreset::D23 => "HiCS-23d",
            HicsPreset::D39 => "HiCS-39d",
            HicsPreset::D70 => "HiCS-70d",
            HicsPreset::D100 => "HiCS-100d",
        }
    }
}

/// The contiguous feature blocks of a preset, in layout order.
#[must_use]
pub fn block_layout(preset: HicsPreset) -> Vec<Subspace> {
    let mut blocks = Vec::with_capacity(preset.n_blocks());
    let mut start = 0usize;
    for &dim in BLOCK_DIMS.iter().take(preset.n_blocks()) {
        blocks.push(Subspace::new(start..start + dim));
        start += dim;
    }
    debug_assert_eq!(start, preset.n_features());
    blocks
}

/// Generates one dataset of the HiCS family.
///
/// The construction is fully deterministic in `(preset, seed)`.
///
/// ```
/// use anomex_dataset::gen::hics::{generate_hics, HicsPreset};
/// let g = generate_hics(HicsPreset::D23, 7);
/// assert_eq!(g.dataset.n_features(), 23);
/// assert_eq!(g.ground_truth.n_outliers(), 34);
/// ```
#[must_use]
pub fn generate_hics(preset: HicsPreset, seed: u64) -> Generated {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4869_4353); // "HiCS"
    let blocks = block_layout(preset);
    let n_blocks = blocks.len();

    // --- choose outlier rows -------------------------------------------------
    let mut rows: Vec<usize> = (0..N_ROWS).collect();
    rows.shuffle(&mut rng);
    let mut fresh = rows.into_iter();

    // Per-block outlier point ids (each block ends up with exactly 5).
    let mut block_outliers: Vec<Vec<usize>> = vec![Vec::new(); n_blocks];
    for &(a, b) in SHARED_PAIRS.iter() {
        if a < n_blocks && b < n_blocks {
            // anomex: allow(panic-path) pool holds N_ROWS ids, outlier draws are bounded well below it
            let p = fresh.next().expect("row pool exhausted");
            block_outliers[a].push(p);
            block_outliers[b].push(p);
        }
    }
    for bo in &mut block_outliers {
        while bo.len() < OUTLIERS_PER_BLOCK {
            // anomex: allow(panic-path) pool holds N_ROWS ids, outlier draws are bounded well below it
            bo.push(fresh.next().expect("row pool exhausted"));
        }
    }

    // --- fill the matrix block by block -------------------------------------
    //
    // Inliers of a block live in a thin correlated "tube" along the
    // block's diagonal: every coordinate equals a shared diagonal
    // position `t` (drawn from dense segments — the block's clusters —
    // or the broad background) plus N(0, TUBE_STD) noise. This yields
    //   * near-perfect intra-block correlation (Figure 6),
    //   * broad single-feature marginals, so *no* 1d projection can
    //     separate anything.
    // A planted outlier sits at the tube position `t0` displaced by
    // δ ∈ [7σ, 10σ] along a random direction orthogonal to the diagonal:
    //   * every 1d projection is a perfectly valid marginal value
    //     (masked),
    //   * a k-dim projection sees only the component of the displacement
    //     orthogonal to the projected diagonal (≈ δ·√(k/m)) — mixed with
    //     the inlier fringe for small k,
    //   * the full block sees the entire δ — cleanly separated.
    let mut columns = vec![vec![0.0f64; N_ROWS]; preset.n_features()];
    let mut gt = GroundTruth::new();

    for (bi, block) in blocks.iter().enumerate() {
        let m = block.dim();
        let outliers = &block_outliers[bi];
        let _ = bi;

        #[allow(clippy::needless_range_loop)] // row indexes *inner* vectors
        for row in 0..N_ROWS {
            if outliers.contains(&row) {
                continue; // filled below
            }
            let t = sample_diagonal_position(&mut rng);
            for f in block.iter() {
                columns[f][row] = normal(&mut rng, t, TUBE_STD).clamp(0.0, 1.0);
            }
        }

        for &row in outliers {
            let t0 = rng.gen_range(0.3..0.7);
            let u = random_orthogonal_unit(&mut rng, m);
            let delta = rng.gen_range(OUTLIER_MIN_DEV..OUTLIER_MAX_DEV) * TUBE_STD;
            for (j, f) in block.iter().enumerate() {
                let v = t0 + delta * u[j] + normal(&mut rng, 0.0, 0.2 * TUBE_STD);
                columns[f][row] = v.clamp(0.0, 1.0);
            }
            gt.add(row, block.clone());
        }
    }

    // anomex: allow(panic-path) every column is allocated with N_ROWS entries above
    let dataset = Dataset::from_columns(columns).expect("generator produces a valid matrix");
    Generated {
        dataset,
        ground_truth: gt,
        blocks,
    }
}

/// Draws an inlier's diagonal position: mostly from the dense segments
/// (the block's clusters), otherwise from the broad background.
fn sample_diagonal_position(rng: &mut StdRng) -> f64 {
    if rng.gen::<f64>() < SEGMENT_PROB {
        let (lo, hi) = SEGMENTS[rng.gen_range(0..SEGMENTS.len())];
        rng.gen_range(lo..hi)
    } else {
        rng.gen_range(0.1..0.9)
    }
}

/// A random unit vector orthogonal to the all-ones diagonal of an
/// `m`-dimensional block (Gram–Schmidt on a random Gaussian vector).
/// For `m = 2` this is `±(1, −1)/√2`.
fn random_orthogonal_unit(rng: &mut StdRng, m: usize) -> Vec<f64> {
    assert!(m >= 2);
    loop {
        let mut v: Vec<f64> = (0..m).map(|_| normal(rng, 0.0, 1.0)).collect();
        let mean = v.iter().sum::<f64>() / m as f64;
        for x in &mut v {
            *x -= mean; // remove the diagonal component
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-6 {
            for x in &mut v {
                *x /= norm;
            }
            return v;
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn layout_reproduces_table1() {
        for p in HicsPreset::all() {
            let blocks = block_layout(p);
            assert_eq!(blocks.len(), p.n_blocks(), "{:?}", p);
            let total: usize = blocks.iter().map(Subspace::dim).sum();
            assert_eq!(total, p.n_features(), "{:?}", p);
            // Blocks are pairwise disjoint.
            for i in 0..blocks.len() {
                for j in i + 1..blocks.len() {
                    assert_eq!(blocks[i].intersection_size(&blocks[j]), 0);
                }
            }
            // Block dimensionalities stay within the paper's 2–5d range.
            assert!(blocks.iter().all(|b| (2..=5).contains(&b.dim())));
        }
    }

    #[test]
    fn contamination_matches_paper() {
        let expected = [
            (HicsPreset::D14, 20),
            (HicsPreset::D23, 34),
            (HicsPreset::D39, 59),
            (HicsPreset::D70, 100),
            (HicsPreset::D100, 143),
        ];
        for (p, n) in expected {
            assert_eq!(p.n_outliers(), n, "{:?}", p);
            let g = generate_hics(p, 3);
            assert_eq!(g.ground_truth.n_outliers(), n, "{:?}", p);
            assert_eq!(g.dataset.n_rows(), N_ROWS);
        }
    }

    #[test]
    fn every_block_explains_exactly_five_outliers() {
        let g = generate_hics(HicsPreset::D39, 11);
        for block in &g.blocks {
            let count = g
                .ground_truth
                .outliers()
                .iter()
                .filter(|&&p| g.ground_truth.relevant_for(p).contains(block))
                .count();
            assert_eq!(count, OUTLIERS_PER_BLOCK, "block {block}");
        }
    }

    #[test]
    fn shared_outlier_fraction_is_about_nine_percent() {
        let g = generate_hics(HicsPreset::D100, 5);
        let two = g.ground_truth.fraction_with_k_subspaces(2);
        assert!((two - 12.0 / 143.0).abs() < 1e-12, "got {two}");
        let one = g.ground_truth.fraction_with_k_subspaces(1);
        assert!((one + two - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nested_block_layouts() {
        let small = block_layout(HicsPreset::D14);
        let large = block_layout(HicsPreset::D100);
        assert_eq!(&large[..4], &small[..]);
    }

    #[test]
    fn block_features_are_correlated() {
        let g = generate_hics(HicsPreset::D14, 21);
        for block in &g.blocks {
            let fs: Vec<usize> = block.iter().collect();
            for i in 0..fs.len() {
                for j in i + 1..fs.len() {
                    let corr = g.dataset.correlation(fs[i], fs[j]);
                    assert!(corr > 0.6, "intra-block corr({},{}) = {corr}", fs[i], fs[j]);
                }
            }
        }
        // Cross-block features should be roughly uncorrelated.
        let c = g.dataset.correlation(0, 13); // block 0 vs block 3
        assert!(c.abs() < 0.2, "cross-block corr = {c}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_hics(HicsPreset::D23, 99);
        let b = generate_hics(HicsPreset::D23, 99);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.ground_truth, b.ground_truth);
        let c = generate_hics(HicsPreset::D23, 100);
        assert_ne!(a.dataset, c.dataset);
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let g = generate_hics(HicsPreset::D70, 1);
        for f in 0..g.dataset.n_features() {
            for &v in g.dataset.column(f) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn outliers_deviate_jointly_in_their_block() {
        let g = generate_hics(HicsPreset::D14, 13);
        for block in &g.blocks {
            let proj = g.dataset.project(block);
            // Mean distance from an outlier to its nearest non-outlier
            // should exceed the typical inlier nearest-neighbour distance.
            let outliers: Vec<usize> = g
                .ground_truth
                .outliers()
                .into_iter()
                .filter(|&p| g.ground_truth.relevant_for(p).contains(block))
                .collect();
            let is_outlier = |i: usize| outliers.contains(&i);
            let nn = |i: usize| -> f64 {
                (0..proj.n_rows())
                    .filter(|&j| j != i && !is_outlier(j))
                    .map(|j| proj.sq_dist(i, j))
                    .fold(f64::INFINITY, f64::min)
                    .sqrt()
            };
            let out_nn: f64 = outliers.iter().map(|&p| nn(p)).sum::<f64>() / outliers.len() as f64;
            let inlier_sample: Vec<usize> = (0..proj.n_rows())
                .filter(|&i| !is_outlier(i))
                .take(50)
                .collect();
            let in_nn: f64 =
                inlier_sample.iter().map(|&p| nn(p)).sum::<f64>() / inlier_sample.len() as f64;
            assert!(
                out_nn > 3.0 * in_nn,
                "block {block}: outlier NN {out_nn:.4} vs inlier NN {in_nn:.4}"
            );
        }
    }
}
