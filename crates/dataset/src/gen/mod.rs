//! Synthetic dataset generators reproducing the paper's testbed (§3.2).
//!
//! * [`hics`] — the five *subspace-outlier* datasets (HiCS family).
//! * [`fullspace`] — the three *full-space-outlier* datasets standing in
//!   for the paper's real datasets (Breast, Breast Diagnostic,
//!   Electricity Meter).
//! * [`clusters`] — shared Gaussian-cluster sampling helpers.

pub mod clusters;
pub mod fullspace;
pub mod hics;

use crate::{Dataset, GroundTruth, Subspace};

/// A generated dataset together with its ground truth and (when the
/// construction is block-based) the planted relevant subspaces.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The data matrix.
    pub dataset: Dataset,
    /// Which points are outliers and which subspaces explain them.
    pub ground_truth: GroundTruth,
    /// The planted blocks (relevant subspaces) in construction order;
    /// empty for generators whose ground truth is derived rather than
    /// planted.
    pub blocks: Vec<Subspace>,
}
