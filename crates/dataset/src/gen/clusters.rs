//! Gaussian-cluster sampling helpers shared by the generators.

use rand::Rng;
use rand_distr_free::sample_standard_normal;

/// A tiny standard-normal sampler (Box–Muller) so the crate needs no
/// `rand_distr` dependency.
mod rand_distr_free {
    use rand::Rng;

    /// One standard-normal draw via the Box–Muller transform.
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Avoid u1 == 0 which would take ln(0).
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > f64::EPSILON {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// One standard-normal draw.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    sample_standard_normal(rng)
}

/// One `N(mean, std²)` draw.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * sample_standard_normal(rng)
}

/// Cluster centers evenly spaced on the interval `[lo, hi]` with a small
/// deterministic jitter; with a single cluster, the midpoint.
///
/// Centers on a shared interval are what make the features of a block
/// *correlated* (paper Figure 6): every coordinate of an inlier equals
/// its cluster's center value plus noise, so between-cluster variance is
/// common to all coordinates.
pub fn diagonal_centers<R: Rng + ?Sized>(rng: &mut R, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n >= 1 && hi > lo);
    if n == 1 {
        return vec![0.5 * (lo + hi)];
    }
    let span = hi - lo;
    let step = span / (n - 1) as f64;
    (0..n)
        .map(|i| {
            let jitter = (rng.gen::<f64>() - 0.5) * 0.2 * step;
            (lo + i as f64 * step + jitter).clamp(lo, hi)
        })
        .collect()
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn centers_spacing() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = diagonal_centers(&mut rng, 4, 0.2, 0.8);
        assert_eq!(c.len(), 4);
        assert!(c.iter().all(|&x| (0.2..=0.8).contains(&x)));
        for w in c.windows(2) {
            assert!(w[1] > w[0], "centers must stay ordered");
        }
        let single = diagonal_centers(&mut rng, 1, 0.0, 1.0);
        assert_eq!(single, vec![0.5]);
    }
}
