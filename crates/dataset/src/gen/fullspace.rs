//! Generator for the *full-space-outlier family* — the stand-in for the
//! paper's three real datasets (paper §3.2, Table 1).
//!
//! The paper evaluates on Breast (198×31, 20 outliers), Breast Diagnostic
//! (569×30, 57 outliers) and Electricity Meter (1205×23, 121 outliers),
//! all contaminated ~10 % with *full-space* outliers: points whose
//! deviation is spread across (almost) all features, so they are visible
//! in the full space, in projections, and in augmentations of their
//! relevant subspaces. The ground truth of those datasets was **not**
//! domain knowledge — the paper derives it by an exhaustive LOF scan over
//! 2–4d subspaces, keeping the top-scored subspace per outlier per
//! dimensionality.
//!
//! This generator reproduces that regime with matched shapes and
//! contamination: correlated Gaussian-mixture inliers (a low-rank factor
//! model) plus outliers offset in *every* coordinate. The exhaustive-LOF
//! ground-truth derivation lives in `anomex-eval`, mirroring the paper's
//! own procedure.

use super::clusters::{normal, standard_normal};
use super::Generated;
use crate::dataset::Dataset;
use crate::ground_truth::GroundTruth;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The three dataset shapes of the full-space family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FullSpacePreset {
    /// Stand-in for *Breast* (A): 198 points, 31 features, 20 outliers.
    BreastA,
    /// Stand-in for *Breast Diagnostic* (B): 569 points, 30 features, 57 outliers.
    BreastDiagB,
    /// Stand-in for *Electricity Meter* (C): 1205 points, 23 features, 121 outliers.
    ElectricityC,
}

impl FullSpacePreset {
    /// All presets in the paper's A/B/C order.
    #[must_use]
    pub fn all() -> [FullSpacePreset; 3] {
        [
            FullSpacePreset::BreastA,
            FullSpacePreset::BreastDiagB,
            FullSpacePreset::ElectricityC,
        ]
    }

    /// Number of points.
    #[must_use]
    pub fn n_rows(self) -> usize {
        match self {
            FullSpacePreset::BreastA => 198,
            FullSpacePreset::BreastDiagB => 569,
            FullSpacePreset::ElectricityC => 1205,
        }
    }

    /// Number of features.
    #[must_use]
    pub fn n_features(self) -> usize {
        match self {
            FullSpacePreset::BreastA => 31,
            FullSpacePreset::BreastDiagB => 30,
            FullSpacePreset::ElectricityC => 23,
        }
    }

    /// Number of outliers (~10 % contamination, paper Table 1).
    #[must_use]
    pub fn n_outliers(self) -> usize {
        match self {
            FullSpacePreset::BreastA => 20,
            FullSpacePreset::BreastDiagB => 57,
            FullSpacePreset::ElectricityC => 121,
        }
    }

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FullSpacePreset::BreastA => "Breast-like (A)",
            FullSpacePreset::BreastDiagB => "BreastDiag-like (B)",
            FullSpacePreset::ElectricityC => "Electricity-like (C)",
        }
    }
}

/// Number of latent factors in the inlier model (drives inter-feature
/// correlation, as observed in the real medical/metering data).
const N_FACTORS: usize = 3;
/// Number of inlier mixture components.
const N_CLUSTERS: usize = 3;
/// Factor loading scale.
const LOADING_STD: f64 = 0.05;
/// Independent per-feature noise.
const NOISE_STD: f64 = 0.03;

/// Generates a full-space-outlier dataset. Ground truth here records only
/// *which rows are outliers*; the relevant subspaces (which are derived,
/// not planted, exactly as in the paper) are attached later by the
/// exhaustive-LOF procedure in `anomex-eval`.
///
/// ```
/// use anomex_dataset::gen::fullspace::{generate_fullspace, FullSpacePreset};
/// let g = generate_fullspace(FullSpacePreset::BreastA, 1);
/// assert_eq!(g.dataset.n_rows(), 198);
/// assert_eq!(g.dataset.n_features(), 31);
/// assert_eq!(g.ground_truth.n_outliers(), 0); // derived later
/// ```
#[must_use]
pub fn generate_fullspace(preset: FullSpacePreset, seed: u64) -> Generated {
    let (ds, _outliers) = generate_fullspace_with_outliers(preset, seed);
    Generated {
        dataset: ds,
        ground_truth: GroundTruth::new(),
        blocks: Vec::new(),
    }
}

/// Like [`generate_fullspace`], additionally returning the planted
/// outlier row ids (ascending). These are the "points of interest" the
/// paper feeds to every pipeline for this dataset family.
#[must_use]
pub fn generate_fullspace_with_outliers(
    preset: FullSpacePreset,
    seed: u64,
) -> (Dataset, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4655_4C4C); // "FULL"
    let n = preset.n_rows();
    let d = preset.n_features();

    // Cluster centres in feature space.
    let centers: Vec<Vec<f64>> = (0..N_CLUSTERS)
        .map(|_| (0..d).map(|_| rng.gen_range(0.35..0.65)).collect())
        .collect();
    // Shared factor loadings (d × q) induce feature correlation.
    let loadings: Vec<Vec<f64>> = (0..d)
        .map(|_| {
            (0..N_FACTORS)
                .map(|_| standard_normal(&mut rng) * LOADING_STD)
                .collect()
        })
        .collect();

    let mut rows_idx: Vec<usize> = (0..n).collect();
    rows_idx.shuffle(&mut rng);
    let outliers: Vec<usize> = {
        let mut o: Vec<usize> = rows_idx[..preset.n_outliers()].to_vec();
        o.sort_unstable();
        o
    };

    let mut columns = vec![vec![0.0f64; n]; d];
    for row in 0..n {
        let c = &centers[rng.gen_range(0..N_CLUSTERS)];
        let factors: Vec<f64> = (0..N_FACTORS).map(|_| standard_normal(&mut rng)).collect();
        let is_outlier = outliers.binary_search(&row).is_ok();
        // A full-space outlier deviates in *every* coordinate: each gets
        // an extra offset of ~3–5 total noise std with random sign, on top
        // of the inlier model.
        for (f, col) in columns.iter_mut().enumerate() {
            let common: f64 = loadings[f].iter().zip(&factors).map(|(w, z)| w * z).sum();
            let mut v = c[f] + common + normal(&mut rng, 0.0, NOISE_STD);
            if is_outlier {
                let total_std =
                    ((N_FACTORS as f64) * LOADING_STD * LOADING_STD + NOISE_STD * NOISE_STD).sqrt();
                let magnitude = rng.gen_range(3.0..5.0) * total_std;
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                v += sign * magnitude;
            }
            col[row] = v;
        }
    }

    let ds = Dataset::from_columns(columns).expect("generator produces a valid matrix");
    (ds, outliers)
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn shapes_match_paper_table1() {
        for p in FullSpacePreset::all() {
            let (ds, outliers) = generate_fullspace_with_outliers(p, 5);
            assert_eq!(ds.n_rows(), p.n_rows(), "{:?}", p);
            assert_eq!(ds.n_features(), p.n_features(), "{:?}", p);
            assert_eq!(outliers.len(), p.n_outliers(), "{:?}", p);
            // ~10 % contamination.
            let ratio = outliers.len() as f64 / ds.n_rows() as f64;
            assert!((ratio - 0.10).abs() < 0.002, "{:?}: {ratio}", p);
        }
    }

    #[test]
    fn outlier_ids_sorted_unique_in_range() {
        let (ds, outliers) = generate_fullspace_with_outliers(FullSpacePreset::BreastDiagB, 9);
        for w in outliers.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*outliers.last().unwrap() < ds.n_rows());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_fullspace_with_outliers(FullSpacePreset::BreastA, 3);
        let b = generate_fullspace_with_outliers(FullSpacePreset::BreastA, 3);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let c = generate_fullspace_with_outliers(FullSpacePreset::BreastA, 4);
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn outliers_deviate_in_full_space() {
        let (ds, outliers) = generate_fullspace_with_outliers(FullSpacePreset::BreastA, 7);
        let full = ds.full_matrix();
        let is_outlier = |i: usize| outliers.binary_search(&i).is_ok();
        let nn = |i: usize| -> f64 {
            (0..full.n_rows())
                .filter(|&j| j != i && !is_outlier(j))
                .map(|j| full.sq_dist(i, j))
                .fold(f64::INFINITY, f64::min)
                .sqrt()
        };
        let out_nn: f64 = outliers.iter().map(|&p| nn(p)).sum::<f64>() / outliers.len() as f64;
        let inliers: Vec<usize> = (0..full.n_rows())
            .filter(|&i| !is_outlier(i))
            .take(40)
            .collect();
        let in_nn: f64 = inliers.iter().map(|&p| nn(p)).sum::<f64>() / inliers.len() as f64;
        assert!(
            out_nn > 2.0 * in_nn,
            "outlier NN {out_nn:.4} vs inlier NN {in_nn:.4}"
        );
    }

    #[test]
    fn outliers_visible_in_projections_too() {
        // Full-space outliers deviate in (almost) every 2d projection —
        // the property that separates this family from the HiCS family.
        let (ds, outliers) = generate_fullspace_with_outliers(FullSpacePreset::ElectricityC, 2);
        let proj = ds.project(&crate::Subspace::new([0usize, 1]));
        let is_outlier = |i: usize| outliers.binary_search(&i).is_ok();
        let nn = |i: usize| -> f64 {
            (0..proj.n_rows())
                .filter(|&j| j != i && !is_outlier(j))
                .map(|j| proj.sq_dist(i, j))
                .fold(f64::INFINITY, f64::min)
                .sqrt()
        };
        let out_nn: f64 = outliers.iter().take(30).map(|&p| nn(p)).sum::<f64>() / 30.0;
        let inliers: Vec<usize> = (0..proj.n_rows())
            .filter(|&i| !is_outlier(i))
            .take(30)
            .collect();
        let in_nn: f64 = inliers.iter().map(|&p| nn(p)).sum::<f64>() / inliers.len() as f64;
        assert!(
            out_nn > 1.5 * in_nn,
            "proj outlier NN {out_nn:.4} vs {in_nn:.4}"
        );
    }

    #[test]
    fn inlier_features_are_correlated() {
        let (ds, _) = generate_fullspace_with_outliers(FullSpacePreset::BreastA, 11);
        // With a shared 3-factor model some pairs must correlate clearly.
        let mut strong = 0;
        for i in 0..ds.n_features() {
            for j in i + 1..ds.n_features() {
                if ds.correlation(i, j).abs() > 0.3 {
                    strong += 1;
                }
            }
        }
        assert!(strong > 10, "only {strong} strongly correlated pairs");
    }
}
