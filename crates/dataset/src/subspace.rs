//! Feature subspaces: canonical, ordered sets of feature indices.
//!
//! A *subspace* is the unit of explanation in the whole framework: point
//! explainers rank subspaces per outlier, summarizers rank subspaces per
//! outlier *set*, and ground truth associates outliers with their relevant
//! subspaces. Canonical (sorted, deduplicated) representation makes
//! equality, hashing and subset tests cheap and unambiguous.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A canonical set of feature indices (sorted ascending, no duplicates).
///
/// Feature indices are stored as `u16` (≤ 65 535 features), which keeps
/// the type compact enough to be hashed millions of times during subspace
/// search.
///
/// ```
/// use anomex_dataset::Subspace;
/// let s = Subspace::new([3usize, 1, 3, 2]);
/// assert_eq!(s.features(), &[1, 2, 3]);
/// assert_eq!(s.dim(), 3);
/// assert!(s.is_superset_of(&Subspace::new([1usize, 3])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Subspace {
    features: Vec<u16>,
}

impl Subspace {
    /// Builds a canonical subspace from any collection of feature indices;
    /// duplicates are removed and order is normalized.
    ///
    /// # Panics
    /// Panics if any index exceeds `u16::MAX` (the framework targets
    /// datasets of at most 65 535 features).
    #[must_use]
    pub fn new<I>(features: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<usize>,
    {
        let mut f: Vec<u16> = features
            .into_iter()
            .map(|x| {
                let x: usize = x.into();
                // anomex: allow(panic-path) documented contract; feature counts are far below u16::MAX
                u16::try_from(x).expect("feature index exceeds u16::MAX")
            })
            .collect();
        f.sort_unstable();
        f.dedup();
        Subspace { features: f }
    }

    /// A single-feature subspace.
    #[must_use]
    pub fn single(feature: usize) -> Self {
        Subspace::new([feature])
    }

    /// The full feature space of a `d`-dimensional dataset: `{0, …, d−1}`.
    #[must_use]
    pub fn full(d: usize) -> Self {
        Subspace::new(0..d)
    }

    /// The sorted feature indices.
    #[must_use]
    pub fn features(&self) -> &[u16] {
        &self.features
    }

    /// Iterates the feature indices as `usize` (convenient for column access).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.features.iter().map(|&f| f as usize)
    }

    /// Number of features (the subspace's dimensionality).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.features.len()
    }

    /// Whether the subspace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Whether `feature` belongs to the subspace (binary search).
    #[must_use]
    pub fn contains(&self, feature: usize) -> bool {
        u16::try_from(feature)
            .map(|f| self.features.binary_search(&f).is_ok())
            .unwrap_or(false)
    }

    /// Whether every feature of `other` is contained in `self`.
    #[must_use]
    pub fn is_superset_of(&self, other: &Subspace) -> bool {
        if other.features.len() > self.features.len() {
            return false;
        }
        // Linear merge over both sorted lists.
        let mut it = self.features.iter();
        'outer: for &f in &other.features {
            for &g in it.by_ref() {
                match g.cmp(&f) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether every feature of `self` is contained in `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &Subspace) -> bool {
        other.is_superset_of(self)
    }

    /// Union of two subspaces (the *join* used by stage-wise search).
    #[must_use]
    pub fn union(&self, other: &Subspace) -> Subspace {
        let mut f = Vec::with_capacity(self.features.len() + other.features.len());
        f.extend_from_slice(&self.features);
        f.extend_from_slice(&other.features);
        f.sort_unstable();
        f.dedup();
        Subspace { features: f }
    }

    /// `self` extended with one feature; returns `None` if the feature is
    /// already present (the no-op join stage-wise searches must skip).
    #[must_use]
    pub fn extended_with(&self, feature: usize) -> Option<Subspace> {
        if self.contains(feature) {
            return None;
        }
        let f = u16::try_from(feature).ok()?;
        let pos = self.features.partition_point(|&g| g < f);
        let mut features = Vec::with_capacity(self.features.len() + 1);
        features.extend_from_slice(&self.features[..pos]);
        features.push(f);
        features.extend_from_slice(&self.features[pos..]);
        Some(Subspace { features })
    }

    /// Number of features shared with `other`.
    #[must_use]
    pub fn intersection_size(&self, other: &Subspace) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.features.len() && j < other.features.len() {
            match self.features[i].cmp(&other.features[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

impl fmt::Display for Subspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, feat) in self.features.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "F{feat}")?;
        }
        write!(f, "}}")
    }
}

impl<const N: usize> From<[usize; N]> for Subspace {
    fn from(fs: [usize; N]) -> Self {
        Subspace::new(fs)
    }
}

/// Enumerates every subspace of exactly `k` features drawn from a
/// `d`-dimensional feature space, in lexicographic order.
///
/// This is the exhaustive enumeration used by LookOut (fixed-`k` search)
/// and by the first stage of Beam and HiCS (`k = 2`). The number of
/// combinations is `C(d, k)`; callers are expected to keep `k` small.
///
/// ```
/// use anomex_dataset::subspace::enumerate_subspaces;
/// let all: Vec<_> = enumerate_subspaces(4, 2).collect();
/// assert_eq!(all.len(), 6); // C(4, 2)
/// ```
pub fn enumerate_subspaces(d: usize, k: usize) -> SubspaceCombinations {
    SubspaceCombinations::new(d, k)
}

/// Iterator over all `C(d, k)` canonical subspaces (see
/// [`enumerate_subspaces`]).
#[derive(Debug, Clone)]
pub struct SubspaceCombinations {
    d: usize,
    k: usize,
    current: Vec<u16>,
    done: bool,
}

impl SubspaceCombinations {
    fn new(d: usize, k: usize) -> Self {
        let done = k > d || k == 0;
        let current: Vec<u16> = (0..k as u16).collect();
        SubspaceCombinations {
            d,
            k,
            current,
            done,
        }
    }
}

impl Iterator for SubspaceCombinations {
    type Item = Subspace;

    fn next(&mut self) -> Option<Subspace> {
        if self.done {
            return None;
        }
        let out = Subspace {
            features: self.current.clone(),
        };
        // Advance to the next combination (standard odometer).
        let k = self.k;
        let d = self.d as u16;
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            let max_at_i = d - (k - i) as u16;
            if self.current[i] < max_at_i {
                self.current[i] += 1;
                for j in i + 1..k {
                    self.current[j] = self.current[j - 1] + 1;
                }
                break;
            }
        }
        Some(out)
    }
}

/// `C(n, k)` as `u128`, saturating; used for search-space accounting in
/// reports and benches.
#[must_use]
pub fn n_choose_k(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i + 1) as u128;
    }
    acc
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn canonicalizes() {
        let s = Subspace::new([5usize, 1, 3, 1, 5]);
        assert_eq!(s.features(), &[1, 3, 5]);
        assert_eq!(s.dim(), 3);
        assert_eq!(s, Subspace::new([3usize, 5, 1]));
    }

    #[test]
    fn display_format() {
        assert_eq!(Subspace::new([2usize, 0]).to_string(), "{F0,F2}");
        assert_eq!(Subspace::new(Vec::<usize>::new()).to_string(), "{}");
    }

    #[test]
    fn subset_superset() {
        let big = Subspace::new([0usize, 2, 4, 6]);
        let small = Subspace::new([2usize, 6]);
        assert!(big.is_superset_of(&small));
        assert!(small.is_subset_of(&big));
        assert!(!small.is_superset_of(&big));
        assert!(big.is_superset_of(&big));
        assert!(!big.is_superset_of(&Subspace::new([2usize, 5])));
        assert!(big.is_superset_of(&Subspace::new(Vec::<usize>::new())));
    }

    #[test]
    fn union_and_extend() {
        let a = Subspace::new([0usize, 3]);
        let b = Subspace::new([1usize, 3]);
        assert_eq!(a.union(&b), Subspace::new([0usize, 1, 3]));
        assert_eq!(a.extended_with(1), Some(Subspace::new([0usize, 1, 3])));
        assert_eq!(a.extended_with(3), None);
    }

    #[test]
    fn intersection_size() {
        let a = Subspace::new([0usize, 1, 2, 5]);
        let b = Subspace::new([1usize, 5, 9]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(b.intersection_size(&a), 2);
        assert_eq!(a.intersection_size(&Subspace::new([7usize])), 0);
    }

    #[test]
    fn contains_handles_out_of_range() {
        let s = Subspace::new([1usize, 2]);
        assert!(s.contains(2));
        assert!(!s.contains(70000)); // beyond u16
    }

    #[test]
    fn enumeration_counts_and_order() {
        let all: Vec<Subspace> = enumerate_subspaces(5, 3).collect();
        assert_eq!(all.len() as u128, n_choose_k(5, 3));
        // Lexicographic and unique.
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(all[0], Subspace::new([0usize, 1, 2]));
        assert_eq!(all[all.len() - 1], Subspace::new([2usize, 3, 4]));
    }

    #[test]
    fn enumeration_edge_cases() {
        assert_eq!(enumerate_subspaces(4, 0).count(), 0);
        assert_eq!(enumerate_subspaces(3, 4).count(), 0);
        assert_eq!(enumerate_subspaces(3, 3).count(), 1);
        assert_eq!(enumerate_subspaces(1, 1).count(), 1);
    }

    #[test]
    fn n_choose_k_values() {
        assert_eq!(n_choose_k(6, 2), 15);
        assert_eq!(n_choose_k(100, 5), 75_287_520);
        assert_eq!(n_choose_k(3, 5), 0);
        assert_eq!(n_choose_k(70, 5), 12_103_014);
    }

    #[test]
    fn full_space() {
        assert_eq!(Subspace::full(3), Subspace::new([0usize, 1, 2]));
    }
}
