//! Columnar, immutable-after-construction numeric datasets.
//!
//! Column-major layout fits the access pattern of subspace search: an
//! explainer touches a *few columns* of *every row* at a time, and a
//! projection onto a subspace simply gathers those columns.

use crate::subspace::Subspace;
use crate::view::ProjectedMatrix;
use crate::{DataError, Result};
use anomex_stats::descriptive;

/// An in-memory dataset of `n_rows × n_features` finite `f64` values,
/// stored column-major with optional feature names.
///
/// ```
/// use anomex_dataset::{Dataset, Subspace};
/// let ds = Dataset::from_rows(vec![
///     vec![1.0, 10.0, 100.0],
///     vec![2.0, 20.0, 200.0],
/// ]).unwrap();
/// assert_eq!(ds.n_rows(), 2);
/// assert_eq!(ds.value(1, 2), 200.0);
/// let proj = ds.project(&Subspace::new([0usize, 2]));
/// assert_eq!(proj.row(1), &[2.0, 200.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    columns: Vec<Vec<f64>>,
    names: Vec<String>,
    n_rows: usize,
}

impl Dataset {
    /// Builds a dataset from columns. All columns must have equal length;
    /// values must be finite.
    ///
    /// # Errors
    /// [`DataError::Shape`] on ragged or empty input or non-finite values.
    pub fn from_columns(columns: Vec<Vec<f64>>) -> Result<Self> {
        if columns.is_empty() {
            return Err(DataError::Shape("dataset needs at least one column".into()));
        }
        let n_rows = columns[0].len();
        if n_rows == 0 {
            return Err(DataError::Shape("dataset needs at least one row".into()));
        }
        for (i, c) in columns.iter().enumerate() {
            if c.len() != n_rows {
                return Err(DataError::Shape(format!(
                    "column {i} has {} rows, expected {n_rows}",
                    c.len()
                )));
            }
            if c.iter().any(|x| !x.is_finite()) {
                return Err(DataError::Shape(format!(
                    "column {i} contains non-finite values"
                )));
            }
        }
        let names = (0..columns.len()).map(|i| format!("F{i}")).collect();
        Ok(Dataset {
            columns,
            names,
            n_rows,
        })
    }

    /// Builds a dataset from row-major data.
    ///
    /// # Errors
    /// [`DataError::Shape`] on ragged/empty input or non-finite values.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        if rows.is_empty() {
            return Err(DataError::Shape("dataset needs at least one row".into()));
        }
        let d = rows[0].len();
        if d == 0 {
            return Err(DataError::Shape("dataset needs at least one column".into()));
        }
        let mut columns = vec![Vec::with_capacity(rows.len()); d];
        for (r, row) in rows.iter().enumerate() {
            if row.len() != d {
                return Err(DataError::Shape(format!(
                    "row {r} has {} values, expected {d}",
                    row.len()
                )));
            }
            for (c, &v) in row.iter().enumerate() {
                columns[c].push(v);
            }
        }
        Dataset::from_columns(columns)
    }

    /// Replaces the default `F0..Fd` feature names.
    ///
    /// # Errors
    /// [`DataError::Shape`] if the name count differs from the feature count.
    pub fn with_names<S: Into<String>>(mut self, names: Vec<S>) -> Result<Self> {
        if names.len() != self.columns.len() {
            return Err(DataError::Shape(format!(
                "{} names for {} features",
                names.len(),
                self.columns.len()
            )));
        }
        self.names = names.into_iter().map(Into::into).collect();
        Ok(self)
    }

    /// Number of rows (data points).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features (columns).
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Feature names.
    #[must_use]
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// A whole column.
    ///
    /// # Panics
    /// Panics when `feature` is out of bounds.
    #[must_use]
    pub fn column(&self, feature: usize) -> &[f64] {
        &self.columns[feature]
    }

    /// One cell value.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[must_use]
    pub fn value(&self, row: usize, feature: usize) -> f64 {
        self.columns[feature][row]
    }

    /// Gathers one row into a fresh vector (row-major callers only;
    /// hot paths should use [`Dataset::project`]).
    #[must_use]
    pub fn row(&self, row: usize) -> Vec<f64> {
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// Materializes the projection of every row onto `subspace` as a
    /// row-major matrix — the input format of every detector.
    ///
    /// # Panics
    /// Panics when the subspace references a feature out of bounds.
    #[must_use]
    pub fn project(&self, subspace: &Subspace) -> ProjectedMatrix {
        let k = subspace.dim();
        assert!(k > 0, "cannot project onto an empty subspace");
        let mut data = vec![0.0; self.n_rows * k];
        for (j, feature) in subspace.iter().enumerate() {
            assert!(
                feature < self.columns.len(),
                "feature {feature} out of bounds for {} features",
                self.columns.len()
            );
            let col = &self.columns[feature];
            for (i, &v) in col.iter().enumerate() {
                data[i * k + j] = v;
            }
        }
        ProjectedMatrix::new(data, self.n_rows, k)
    }

    /// Materializes the full feature space (`project` onto all features).
    #[must_use]
    pub fn full_matrix(&self) -> ProjectedMatrix {
        self.project(&Subspace::full(self.n_features()))
    }

    /// Returns a copy with every feature min-max scaled into `[0, 1]`
    /// (constant features become 0.5). Standard preprocessing so that
    /// distance-based detectors weigh features comparably.
    #[must_use]
    pub fn min_max_scaled(&self) -> Dataset {
        let mut columns = self.columns.clone();
        for c in &mut columns {
            descriptive::min_max_scale(c);
        }
        Dataset {
            columns,
            names: self.names.clone(),
            n_rows: self.n_rows,
        }
    }

    /// Returns a copy with every feature standardized to zero mean and
    /// unit variance (constant features become all-zero).
    #[must_use]
    pub fn standardized(&self) -> Dataset {
        let mut columns = self.columns.clone();
        for c in &mut columns {
            descriptive::standardize(c);
        }
        Dataset {
            columns,
            names: self.names.clone(),
            n_rows: self.n_rows,
        }
    }

    /// Pearson correlation between two features (0 when either is constant).
    ///
    /// # Panics
    /// Panics when a feature index is out of bounds.
    #[must_use]
    pub fn correlation(&self, fa: usize, fb: usize) -> f64 {
        let a = &self.columns[fa];
        let b = &self.columns[fb];
        let ma = descriptive::mean(a);
        let mb = descriptive::mean(b);
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for i in 0..self.n_rows {
            let da = a[i] - ma;
            let db = b[i] - mb;
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        if va == 0.0 || vb == 0.0 {
            0.0
        } else {
            cov / (va.sqrt() * vb.sqrt())
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows(vec![
            vec![1.0, 4.0, 7.0],
            vec![2.0, 5.0, 8.0],
            vec![3.0, 6.0, 9.0],
        ])
        .unwrap()
    }

    #[test]
    fn construction_round_trips() {
        let ds = toy();
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.n_features(), 3);
        assert_eq!(ds.row(1), vec![2.0, 5.0, 8.0]);
        assert_eq!(ds.column(2), &[7.0, 8.0, 9.0]);
        assert_eq!(ds.value(0, 1), 4.0);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Dataset::from_rows(vec![]).is_err());
        assert!(Dataset::from_rows(vec![vec![]]).is_err());
        assert!(Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Dataset::from_columns(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Dataset::from_rows(vec![vec![f64::NAN]]).is_err());
    }

    #[test]
    fn names() {
        let ds = toy().with_names(vec!["a", "b", "c"]).unwrap();
        assert_eq!(ds.feature_names(), &["a", "b", "c"]);
        assert!(toy().with_names(vec!["a"]).is_err());
        assert_eq!(toy().feature_names()[0], "F0");
    }

    #[test]
    fn projection_gathers_columns() {
        let ds = toy();
        let p = ds.project(&Subspace::new([2usize, 0]));
        assert_eq!(p.n_rows(), 3);
        assert_eq!(p.dim(), 2);
        // Canonical subspace order is [0, 2].
        assert_eq!(p.row(0), &[1.0, 7.0]);
        assert_eq!(p.row(2), &[3.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn projection_checks_bounds() {
        let _ = toy().project(&Subspace::new([5usize]));
    }

    #[test]
    fn min_max_scaling() {
        let ds = toy().min_max_scaled();
        assert_eq!(ds.column(0), &[0.0, 0.5, 1.0]);
        assert_eq!(ds.column(2), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn standardization() {
        let ds = toy().standardized();
        for f in 0..3 {
            let c = ds.column(f);
            let mean: f64 = c.iter().sum::<f64>() / c.len() as f64;
            assert!(mean.abs() < 1e-12);
        }
    }

    #[test]
    fn correlation_of_identical_columns_is_one() {
        let ds = toy();
        assert!((ds.correlation(0, 1) - 1.0).abs() < 1e-12); // both increasing linearly
        let anti = Dataset::from_columns(vec![vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]]).unwrap();
        assert!((anti.correlation(0, 1) + 1.0).abs() < 1e-12);
        let constant = Dataset::from_columns(vec![vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        assert_eq!(constant.correlation(0, 1), 0.0);
    }
}
