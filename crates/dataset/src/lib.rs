//! # anomex-dataset
//!
//! Data substrate for the `anomex` workspace: columnar numeric datasets,
//! feature [`Subspace`]s and zero-copy projections, a dependency-free CSV
//! codec, ground-truth bookkeeping, and the synthetic generators that
//! reproduce the testbed of Myrtakis et al. (EDBT 2021):
//!
//! * [`gen::hics`] — the *HiCS family* of subspace-outlier datasets
//!   (14d/23d/39d/70d/100d, 1000 points, disjoint correlated blocks with
//!   five planted outliers each — paper §3.2, Table 1, Figure 8);
//! * [`gen::fullspace`] — the *full-space-outlier family* standing in for
//!   the paper's three real datasets (Breast, Breast Diagnostic,
//!   Electricity), with identical shapes and contamination.
//!
//! ## Example
//!
//! ```
//! use anomex_dataset::gen::hics::{HicsPreset, generate_hics};
//!
//! let gen = generate_hics(HicsPreset::D14, 42);
//! assert_eq!(gen.dataset.n_features(), 14);
//! assert_eq!(gen.dataset.n_rows(), 1000);
//! assert_eq!(gen.ground_truth.relevant_subspaces().len(), 4);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod csv;
pub mod dataset;
pub mod distances;
pub mod gen;
pub mod ground_truth;
pub mod subspace;
pub mod view;

pub use dataset::Dataset;
pub use distances::{IncrementalDistances, SqDistMatrix};
pub use ground_truth::GroundTruth;
pub use subspace::Subspace;
pub use view::ProjectedMatrix;

/// Error type for dataset construction and I/O.
#[derive(Debug)]
pub enum DataError {
    /// Shape mismatch (ragged rows, feature-count disagreement, ...).
    Shape(String),
    /// A feature index was out of bounds for the dataset.
    FeatureOutOfBounds {
        /// Offending feature index.
        feature: usize,
        /// Number of features in the dataset.
        n_features: usize,
    },
    /// A row index was out of bounds for the dataset.
    RowOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Number of rows in the dataset.
        n_rows: usize,
    },
    /// CSV parse failure.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the failure.
        detail: String,
    },
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Shape(s) => write!(f, "shape error: {s}"),
            DataError::FeatureOutOfBounds {
                feature,
                n_features,
            } => {
                write!(
                    f,
                    "feature {feature} out of bounds for {n_features} features"
                )
            }
            DataError::RowOutOfBounds { row, n_rows } => {
                write!(f, "row {row} out of bounds for {n_rows} rows")
            }
            DataError::Parse { line, detail } => {
                write!(f, "csv parse error at line {line}: {detail}")
            }
            DataError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, DataError>;
