//! Row-major projected matrices — the working representation every
//! detector scores.
//!
//! A [`ProjectedMatrix`] owns a dense row-major buffer so that the O(N²)
//! distance scans of LOF/ABOD walk contiguous memory regardless of which
//! feature subset was projected.

/// A dense row-major `n_rows × dim` matrix of finite `f64`s, produced by
/// [`crate::Dataset::project`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectedMatrix {
    data: Vec<f64>,
    n_rows: usize,
    dim: usize,
}

impl ProjectedMatrix {
    /// Wraps a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n_rows * dim`.
    #[must_use]
    pub fn new(data: Vec<f64>, n_rows: usize, dim: usize) -> Self {
        assert_eq!(
            data.len(),
            n_rows * dim,
            "buffer length {} does not match {n_rows}x{dim}",
            data.len()
        );
        ProjectedMatrix { data, n_rows, dim }
    }

    /// Number of rows (points).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of projected features.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One row as a slice.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// Squared Euclidean distance between rows `i` and `j`.
    #[must_use]
    pub fn sq_dist(&self, i: usize, j: usize) -> f64 {
        sq_dist(self.row(i), self.row(j))
    }

    /// The raw row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// A new matrix with `other`'s rows appended below `self`'s — the
    /// substrate of incremental ingestion (fitted-model `append_rows`).
    ///
    /// # Panics
    /// Panics when the dimensionalities differ.
    #[must_use]
    pub fn concat(&self, other: &ProjectedMatrix) -> ProjectedMatrix {
        assert_eq!(
            self.dim, other.dim,
            "cannot concatenate matrices of different dimensionality"
        );
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        ProjectedMatrix::new(data, self.n_rows + other.n_rows, self.dim)
    }

    /// Gathers the matrix into `out` in **column-major** order
    /// (`out[t * n_rows + i]` = row `i`, feature `t`), reusing `out`'s
    /// allocation. Distance kernels iterate one feature over *all* rows
    /// at a time; the gathered layout makes that inner loop contiguous.
    pub fn gather_columns_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.n_rows * self.dim, 0.0);
        for (i, row) in self.rows().enumerate() {
            for (t, &v) in row.iter().enumerate() {
                out[t * self.n_rows + i] = v;
            }
        }
    }

    /// The squared Euclidean norm of every row, written into `sq_norms`
    /// (reusing its allocation). Together with a pairwise dot product
    /// this yields squared distances via the norm trick
    /// `‖a − b‖² = ‖a‖² + ‖b‖² − 2⟨a, b⟩`.
    pub fn sq_norms_into(&self, sq_norms: &mut Vec<f64>) {
        sq_norms.clear();
        sq_norms.extend(self.rows().map(|r| dot(r, r)));
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Debug-asserts equal lengths.
#[must_use]
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Dot product of two equal-length slices.
#[must_use]
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn rows_and_dims() {
        let m = ProjectedMatrix::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_mismatched_buffer() {
        let _ = ProjectedMatrix::new(vec![1.0; 5], 2, 3);
    }

    #[test]
    fn column_gather_and_norms() {
        let m = ProjectedMatrix::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let mut cols = vec![99.0]; // stale content must be discarded
        m.gather_columns_into(&mut cols);
        assert_eq!(cols, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        let mut norms = Vec::new();
        m.sq_norms_into(&mut norms);
        assert_eq!(norms, vec![5.0, 25.0, 61.0]);
    }

    #[test]
    fn concat_stacks_rows() {
        let a = ProjectedMatrix::new(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = ProjectedMatrix::new(vec![5.0, 6.0], 1, 2);
        let c = a.concat(&b);
        assert_eq!(c.n_rows(), 3);
        assert_eq!(c.row(0), &[1.0, 2.0]);
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "different dimensionality")]
    fn concat_rejects_dim_mismatch() {
        let a = ProjectedMatrix::new(vec![1.0, 2.0], 1, 2);
        let b = ProjectedMatrix::new(vec![5.0], 1, 1);
        let _ = a.concat(&b);
    }

    #[test]
    fn distances() {
        let m = ProjectedMatrix::new(vec![0.0, 0.0, 3.0, 4.0], 2, 2);
        assert_eq!(m.sq_dist(0, 1), 25.0);
        assert_eq!(m.sq_dist(0, 0), 0.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
